//! Convenience harness: run a distributed training job across rank threads
//! and collect the result.
//!
//! Two entry points:
//!
//! * [`run_data_parallel`] — the classic infallible harness. Any rank
//!   failure (there should be none without fault injection) panics with a
//!   structured report.
//! * [`try_run_data_parallel`] — the resilient harness. A [`ResilienceConfig`]
//!   supplies a deterministic [`FaultPlan`], a step-checkpoint cadence, a
//!   bounded collective timeout, and a restart budget. A rank that crashes
//!   (injected or a real panic in `compute`) poisons its groups so every
//!   peer surfaces `Err(RankLost)` within one timeout period; the harness
//!   then restarts the world from the last durable checkpoint, resuming
//!   **bit-identically** — the final parameters equal those of a run that
//!   never failed.

use crate::flat::FlatLayout;
use crate::health::HealthMonitor;
use crate::rank::{FsdpRank, StepError};
use crate::reshard::global_to_shard;
use crate::runtime::{
    self, CheckpointMw, Control, DrainMw, DrainPolicy, GuardMw, HealthMw, InjectMw, ProbeMw,
    RankMiddleware, RuntimeStack, StepCx,
};
use crate::sentinel::SentinelConfig;
use crate::strategy::{FsdpConfig, ShardingStrategy};
use geofm_collectives::{
    AdaptiveTimeout, AdaptiveTimeoutConfig, ConsensusError, HierarchyLayout,
    ProcessGroups, SurvivorConsensus, TrafficCounter, TrafficSnapshot,
};
use geofm_nn::{AdamWState, Module};
use geofm_data::stream::{Batch, IngestPlane};
use geofm_resilience::{
    DataReport, DegradedReport, ElasticCheckpoint, FailureReport, FaultPlan, GuardReport,
    RankFailure, RankSlot, ReshardSummary, StepCheckpoint,
};
use geofm_telemetry::Telemetry;
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Failure cause recorded by a rank that departs permanently
/// ([`geofm_resilience::FaultKind::RankLeave`]) — the elastic restart loop
/// keys its shrink decision off this exact string.
pub(crate) const CAUSE_LEAVE: &str = "rank left permanently";
/// Failure cause recorded by the rank that observes a spare arriving
/// ([`geofm_resilience::FaultKind::SpareRejoin`]) — keys the grow decision.
pub(crate) const CAUSE_REJOIN: &str = "spare rank rejoined";

/// The outcome of a distributed run.
#[derive(Debug, Clone)]
pub struct DistReport {
    /// Final (materialised) flat parameters, identical on every rank.
    pub final_params: Vec<f32>,
    /// Mean local loss per step, averaged across ranks. Skipped steps
    /// hold the canonical `f32::NAN` placeholder.
    pub mean_losses: Vec<f32>,
    /// Total communication traffic across all ranks and steps.
    pub traffic: TrafficSnapshot,
    /// How many elastic restarts the run needed (0 without faults).
    pub restarts: usize,
    /// Gray-degradation summary from the health monitor: `Some` when at
    /// least one rank ran persistently slower than the healthy median.
    /// A degraded world still completes (bit-identically) — it just
    /// completes slower, and this says by how much and whose fault it was.
    pub degraded: Option<DegradedReport>,
    /// Integrity-guard summary: `Some` whenever the guard was enabled
    /// (zero trips included — a clean guarded run is worth knowing).
    pub guard: Option<GuardReport>,
    /// Elastic world transitions the run performed (empty without
    /// [`ResilienceConfig::elastic`] or without rank-leave/rejoin faults).
    pub reshard: ReshardReport,
    /// Ingest-plane accounting — `Some` only for [`try_run_streaming`]
    /// runs. Distinguishes input-bound steps (high `wait_ns_max`, shallow
    /// queue) from compute stragglers, and records what was quarantined.
    pub data: Option<DataReport>,
}

/// Which way an elastic world transition went.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReshardKind {
    /// Survivors re-partitioned onto a smaller world after permanent loss.
    Shrink,
    /// A spare rejoined and shards redistributed back onto a larger world.
    Grow,
}

/// One elastic world transition, with the full payload the new world
/// resumed from — enough to independently launch a reference run at the
/// new size from the identical state (the bit-identity acceptance check).
#[derive(Debug, Clone)]
pub struct ReshardEvent {
    /// Shrink or grow.
    pub kind: ReshardKind,
    /// Step the new world resumed from (0 = resharded from scratch).
    pub step: u64,
    /// World size before the transition.
    pub from_world: usize,
    /// World size after the transition.
    pub to_world: usize,
    /// Ranks (old-world ids) that departed; empty on grow.
    pub departed: Vec<usize>,
    /// Strategy in force after the transition (`HYBRID(k)` remapped via
    /// [`ShardingStrategy::remap_for_world`]; everything else unchanged).
    pub strategy: ShardingStrategy,
    /// The world-size-independent state the new world resumed from. An
    /// **empty** checkpoint (no units) means no snapshot existed yet and
    /// the new world restarted from scratch.
    pub ckpt: ElasticCheckpoint,
}

/// All elastic transitions of one run, in order.
#[derive(Debug, Clone, Default)]
pub struct ReshardReport {
    /// The transitions, oldest first.
    pub events: Vec<ReshardEvent>,
}

impl ReshardReport {
    /// Number of shrink transitions.
    pub fn shrinks(&self) -> usize {
        self.events.iter().filter(|e| e.kind == ReshardKind::Shrink).count()
    }

    /// Number of grow transitions.
    pub fn grows(&self) -> usize {
        self.events.iter().filter(|e| e.kind == ReshardKind::Grow).count()
    }
}

/// Elastic-resharding policy: what [`try_run_elastic`] does when a rank
/// departs permanently or a spare rejoins.
#[derive(Debug, Clone)]
pub struct ElasticConfig {
    /// Never shrink below this many ranks; a departure that would is a
    /// hard failure (the structured report names the limit).
    pub min_world: usize,
    /// Where the world-size-independent GEOFMCK3 checkpoint lives. When
    /// set, every checkpoint cadence also writes the elastic image
    /// (crash-safely) and a cold start resumes from it at **any** world
    /// size. `None` keeps the elastic image in memory only — shrink/grow
    /// still reshard live from the last in-memory snapshot.
    pub checkpoint_path: Option<PathBuf>,
    /// Bound on each phase of the survivor-consensus round run between
    /// drain and reshard (see [`SurvivorConsensus`]).
    pub consensus_timeout: Duration,
}

impl Default for ElasticConfig {
    fn default() -> Self {
        Self {
            min_world: 1,
            checkpoint_path: None,
            consensus_timeout: Duration::from_secs(10),
        }
    }
}

/// Policy for the silent-data-corruption / loss-spike guard in
/// [`try_run_data_parallel`]. `Some(GuardConfig)` on
/// [`ResilienceConfig::guard`] turns on (a) checksum verification in every
/// reduce collective, (b) a per-step guard exchange (world all-reduce of
/// `[local loss, corruption flag]`) whose result is identical on every
/// rank, (c) [`Sentinel`] screening of that agreed mean loss and the
/// global grad norm, and (d) deterministic rollback-and-skip on any trip.
#[derive(Debug, Clone)]
pub struct GuardConfig {
    /// Sentinel thresholds (NaN/Inf guard + robust z-score spike
    /// detectors).
    pub sentinel: SentinelConfig,
    /// Take an in-memory rollback snapshot every this many completed
    /// steps (≥ 1). Smaller = less re-executed work per rollback, more
    /// snapshot copies.
    pub snapshot_every: usize,
    /// How many rollback-and-skip recoveries the run may perform before
    /// a trip becomes a hard failure (a stream of trips means the fault
    /// is not transient).
    pub max_rollbacks: usize,
    /// Steps to skip unconditionally (canonical NaN loss, no collectives,
    /// no update). This is how a *clean* comparator run reproduces the
    /// exact step schedule of a faulted run that skipped these steps —
    /// the bit-identical-recovery acceptance test.
    pub skip_steps: BTreeSet<usize>,
}

impl Default for GuardConfig {
    fn default() -> Self {
        Self {
            sentinel: SentinelConfig::default(),
            snapshot_every: 2,
            max_rollbacks: 8,
            skip_steps: BTreeSet::new(),
        }
    }
}

/// Fault-tolerance policy for [`try_run_data_parallel`].
#[derive(Debug, Clone)]
pub struct ResilienceConfig {
    /// Deterministic fault schedule shared by all rank threads. Crash-type
    /// events are one-shot: they fire on the first attempt only, so the
    /// post-restart re-execution runs through.
    pub fault_plan: Arc<FaultPlan>,
    /// Take a step checkpoint every this many completed steps (0 = never).
    /// Requires `checkpoint_path`.
    pub checkpoint_every: usize,
    /// Where the checkpoint lives. Written crash-safely (tmp + fsync +
    /// rename, CRC32 footer); a restart resumes from it if present & valid.
    pub checkpoint_path: Option<PathBuf>,
    /// Bound on every barrier wait inside collectives. A rank that dies
    /// without poisoning its groups (hard kill) still unblocks its peers
    /// within this bound. `None` waits forever (poisoning still observed).
    pub collective_timeout: Option<Duration>,
    /// How many times the harness may restart the world after a failed
    /// attempt before giving up and returning the failure report.
    pub max_restarts: usize,
    /// Adaptive collective timeout: each rank tracks an EWMA of observed
    /// collective latency and times out at `multiplier × EWMA` (clamped to
    /// the config's floor), *tightening* `collective_timeout` once warmed
    /// up. This is how a hang is detected relative to real step time
    /// instead of a pessimistic fixed bound.
    pub adaptive_timeout: Option<AdaptiveTimeoutConfig>,
    /// A rank is flagged as a straggler once its local-work EWMA exceeds
    /// this multiple of the healthy median (see [`HealthMonitor`]).
    pub straggler_threshold: f64,
    /// Silent-data-corruption / loss-spike defense. `Some` enables
    /// checksummed reduce collectives, the per-step guard exchange,
    /// [`Sentinel`] screening and deterministic rollback-and-skip (see
    /// [`GuardConfig`]). `None` runs unguarded — injected corruption
    /// propagates silently, exactly like un-checksummed hardware.
    pub guard: Option<GuardConfig>,
    /// Elastic resharding: `Some` lets the harness shrink the world and
    /// continue after a permanent rank departure (and re-grow on a spare
    /// rejoin) instead of burning restarts at a world size that can no
    /// longer assemble. `None` treats departures like ordinary crashes.
    pub elastic: Option<ElasticConfig>,
}

impl ResilienceConfig {
    /// No faults, no checkpoints, no restarts — but still a bounded (60 s)
    /// collective wait, so a genuine deadlock fails loudly instead of
    /// hanging the process. This is what the infallible harness uses.
    pub fn disabled() -> Self {
        Self {
            fault_plan: Arc::new(FaultPlan::none()),
            checkpoint_every: 0,
            checkpoint_path: None,
            collective_timeout: Some(Duration::from_secs(60)),
            max_restarts: 0,
            adaptive_timeout: None,
            straggler_threshold: 2.5,
            guard: None,
            elastic: None,
        }
    }
}

/// Where an attempt's initial state comes from.
enum ResumeSource {
    /// No prior state: start at step 0 from the seeded model.
    Fresh,
    /// The legacy world-size-locked step checkpoint (GEOFMSC1).
    Legacy(StepCheckpoint),
    /// A world-size-independent elastic checkpoint (GEOFMCK3): shards are
    /// re-derived from the global image under the attempt's own layout.
    Elastic(ElasticCheckpoint),
}

impl ResumeSource {
    fn start_step(&self) -> usize {
        match self {
            Self::Fresh => 0,
            Self::Legacy(ck) => ck.step as usize,
            Self::Elastic(ck) => ck.step as usize,
        }
    }
}

/// Lock a mutex, recovering the guard if a peer panicked while holding it.
/// Rank threads die by design under fault injection; their poison must not
/// cascade into the harness bookkeeping.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

/// Run `steps` collective training steps across `world` rank threads.
///
/// * `make_model(rank)` must construct identically initialised models (use
///   the same seed) and return the model together with its FSDP unit sizes.
/// * `compute(model, rank, step)` performs zero-grad + forward + backward on
///   rank `rank`'s microbatch for `step` and returns the local loss. For
///   correct data-parallel semantics the local loss must be a **mean** over
///   the rank's samples and microbatches must partition the global batch.
/// * `lr_at(step)` supplies the learning rate.
pub fn run_data_parallel<M, FM, FC, FL>(
    config: FsdpConfig,
    world: usize,
    weight_decay: f32,
    steps: usize,
    make_model: FM,
    compute: FC,
    lr_at: FL,
) -> DistReport
where
    M: Module + Send,
    FM: Fn(usize) -> (M, Vec<usize>) + Sync,
    FC: Fn(&mut M, usize, usize) -> f32 + Sync,
    FL: Fn(usize) -> f32 + Sync,
{
    run_data_parallel_with_telemetry(config, world, weight_decay, steps, make_model, compute, lr_at, None)
}

/// [`run_data_parallel`] with an optional shared [`Telemetry`] bundle.
///
/// When supplied, collective traffic is recorded into the bundle's registry
/// (`comm.<kind>.bytes` / `comm.<kind>.calls`), every rank times its step
/// phases (`fsdp.<phase>.ns` histograms + trace spans per rank track), and
/// `fsdp.steps` counts rank-steps.
#[allow(clippy::too_many_arguments)]
pub fn run_data_parallel_with_telemetry<M, FM, FC, FL>(
    config: FsdpConfig,
    world: usize,
    weight_decay: f32,
    steps: usize,
    make_model: FM,
    compute: FC,
    lr_at: FL,
    telemetry: Option<Arc<Telemetry>>,
) -> DistReport
where
    M: Module + Send,
    FM: Fn(usize) -> (M, Vec<usize>) + Sync,
    FC: Fn(&mut M, usize, usize) -> f32 + Sync,
    FL: Fn(usize) -> f32 + Sync,
{
    try_run_data_parallel(
        config,
        world,
        weight_decay,
        steps,
        make_model,
        compute,
        lr_at,
        telemetry,
        ResilienceConfig::disabled(),
    )
    .unwrap_or_else(|report| panic!("distributed run failed: {report}"))
}

/// Fault-tolerant [`run_data_parallel`]: injects the faults scheduled in
/// `resilience.fault_plan`, checkpoints at the configured cadence, and
/// restarts the world from the last durable checkpoint after a failed
/// attempt (up to `max_restarts` times). Returns the structured
/// [`FailureReport`] when the restart budget is exhausted.
///
/// Recovery is **bit-identical**: a run that crashes and resumes produces
/// exactly the final parameters and per-step losses of an uninterrupted
/// run, because the checkpoint captures exact f32 shards + AdamW moments
/// and the collectives reduce in deterministic rank order.
#[allow(clippy::too_many_arguments)]
pub fn try_run_data_parallel<M, FM, FC, FL>(
    config: FsdpConfig,
    world: usize,
    weight_decay: f32,
    steps: usize,
    make_model: FM,
    compute: FC,
    lr_at: FL,
    telemetry: Option<Arc<Telemetry>>,
    resilience: ResilienceConfig,
) -> Result<DistReport, FailureReport>
where
    M: Module + Send,
    FM: Fn(usize) -> (M, Vec<usize>) + Sync,
    FC: Fn(&mut M, usize, usize) -> f32 + Sync,
    FL: Fn(usize) -> f32 + Sync,
{
    try_run_elastic(
        config,
        world,
        weight_decay,
        steps,
        make_model,
        move |m: &mut M, rank: usize, _world: usize, step: usize| compute(m, rank, step),
        lr_at,
        telemetry,
        resilience,
    )
}

/// The streaming harness: [`try_run_elastic`] fed by a fault-tolerant
/// [`IngestPlane`] instead of closure-synthesised batches.
///
/// Each rank pulls its slice of every step's global batch through the
/// plane's defended, prefetched path — CRC-verified, hedged against
/// stragglers, quarantine-and-skip on unrecoverable records — and hands
/// it to `compute(model, batch, rank, world, step)`.
///
/// Failure semantics compose with the elastic harness:
///
/// * An [`geofm_data::stream::IngestError`] (a rank's whole batch slice
///   quarantined) panics the rank thread, which the existing unwind
///   boundary converts into a structured [`RankFailure`] — ingest faults
///   **never hang the world**, they surface like any other rank failure
///   and consume a restart.
/// * The plane's [`DataReport`] is attached to the outcome either way:
///   [`DistReport::data`] on success, [`FailureReport::data`] on failure,
///   so quarantined records are visible to the recovery run that must
///   replay them (supply them via `StreamConfig.quarantine` for a
///   bit-identical reproduction).
#[allow(clippy::too_many_arguments)]
pub fn try_run_streaming<M, FM, FC, FL>(
    config: FsdpConfig,
    world: usize,
    weight_decay: f32,
    steps: usize,
    make_model: FM,
    plane: Arc<IngestPlane>,
    compute: FC,
    lr_at: FL,
    telemetry: Option<Arc<Telemetry>>,
    resilience: ResilienceConfig,
) -> Result<DistReport, FailureReport>
where
    M: Module + Send,
    FM: Fn(usize) -> (M, Vec<usize>) + Sync,
    FC: Fn(&mut M, &Batch, usize, usize, usize) -> f32 + Sync,
    FL: Fn(usize) -> f32 + Sync,
{
    let feed = Arc::clone(&plane);
    let result = try_run_elastic(
        config,
        world,
        weight_decay,
        steps,
        make_model,
        move |m: &mut M, rank: usize, world: usize, step: usize| {
            match feed.next_batch(step, rank, world) {
                Ok(batch) => compute(m, &batch, rank, world, step),
                // surfaces as a structured RankFailure via the rank
                // thread's unwind boundary — never a hang
                Err(e) => panic!("{e}"),
            }
        },
        lr_at,
        telemetry,
        resilience,
    );
    match result {
        Ok(mut report) => {
            report.data = Some(plane.report());
            Ok(report)
        }
        Err(mut failure) => {
            failure.data = Some(Box::new(plane.report()));
            Err(failure)
        }
    }
}

/// The elastic harness: [`try_run_data_parallel`] generalised to a compute
/// closure that receives the **current** world size — `compute(model, rank,
/// world, step)` — so microbatch partitioning can follow the world as it
/// shrinks and grows.
///
/// With [`ResilienceConfig::elastic`] set, a permanent rank departure
/// ([`geofm_resilience::FaultKind::RankLeave`]) triggers the shrink
/// protocol instead of a same-size restart:
///
/// 1. **Drain.** The departing rank quiesces its in-flight nonblocking
///    collectives; poisoned groups unblock every survivor within one
///    timeout, and joining the attempt scope drains their comm threads.
/// 2. **Consensus.** Survivors run a fallible [`SurvivorConsensus`] round
///    and must unanimously agree on the survivor set; any timeout or split
///    aborts the reshard with a structured failure (never a minority
///    world).
/// 3. **Reshard.** The world restarts at `world - departed` ranks — the
///    strategy remapped via [`ShardingStrategy::remap_for_world`] — and
///    every rank re-derives its shards from the last world-size-independent
///    snapshot (in-memory, or the GEOFMCK3 file when
///    [`ElasticConfig::checkpoint_path`] is set). Training continues
///    **bit-identically** to a fresh run launched at the smaller world from
///    that same state.
///
/// A [`geofm_resilience::FaultKind::SpareRejoin`] reverses the process:
/// the world re-grows by one rank (never past the original size) and
/// shards redistribute back. Every transition is recorded as a
/// [`ReshardEvent`] on [`DistReport::reshard`].
#[allow(clippy::too_many_arguments)]
pub fn try_run_elastic<M, FM, FC, FL>(
    config: FsdpConfig,
    world: usize,
    weight_decay: f32,
    steps: usize,
    make_model: FM,
    compute: FC,
    lr_at: FL,
    telemetry: Option<Arc<Telemetry>>,
    resilience: ResilienceConfig,
) -> Result<DistReport, FailureReport>
where
    M: Module + Send,
    FM: Fn(usize) -> (M, Vec<usize>) + Sync,
    FC: Fn(&mut M, usize, usize, usize) -> f32 + Sync,
    FL: Fn(usize) -> f32 + Sync,
{
    let mut failure = FailureReport {
        restarts_used: 0,
        resumed_from_step: None,
        failures: Vec::new(),
        degraded: None,
        guard: None,
        reshards: Vec::new(),
        data: None,
    };
    // per-attempt deposit slot for the guard report (every rank computes an
    // identical report; rank 0 — or the rank that exhausts the rollback
    // budget — deposits it)
    let guard_slot: Mutex<Option<GuardReport>> = Mutex::new(None);

    // one monitor and one adaptive tracker per rank for the WHOLE run,
    // reset at every attempt boundary: statistics learned in the old world
    // (inflated by a dying or degraded peer) must never flag healthy ranks
    // or time out healthy collectives in the new one.
    let health = HealthMonitor::new(world, resilience.straggler_threshold)
        .with_telemetry(telemetry.clone());
    let trackers: Option<Vec<Arc<AdaptiveTimeout>>> = resilience.adaptive_timeout.map(|cfg| {
        (0..world)
            .map(|_| {
                let mut t = AdaptiveTimeout::new(cfg);
                if let Some(tel) = telemetry.as_deref() {
                    t = t.with_metrics(tel.metrics.clone());
                }
                Arc::new(t)
            })
            .collect()
    });

    // the latest world-size-independent snapshot; a cold start picks up the
    // durable GEOFMCK3 image if the elastic config points at one
    let elastic_snapshot: Mutex<Option<ElasticCheckpoint>> = Mutex::new(
        resilience
            .elastic
            .as_ref()
            .and_then(|e| e.checkpoint_path.as_deref())
            .and_then(|p| ElasticCheckpoint::load(p).ok())
            .filter(|ck| (ck.step as usize) <= steps),
    );

    let mut cur_world = world;
    let mut cur_config = config;
    let mut reshard_events: Vec<ReshardEvent> = Vec::new();

    loop {
        *lock(&guard_slot) = None;
        health.reset();
        if let Some(trs) = &trackers {
            for t in trs {
                t.reset();
            }
        }
        // resume priority: elastic snapshot (world-independent, usable at
        // any size) > legacy step checkpoint (must match the world) > fresh
        let resume = match lock(&elastic_snapshot).clone() {
            Some(ck) if resilience.elastic.is_some() => ResumeSource::Elastic(ck),
            _ => match resilience
                .checkpoint_path
                .as_deref()
                .and_then(StepCheckpoint::load)
                .filter(|ck| ck.ranks.len() == cur_world && (ck.step as usize) <= steps)
            {
                Some(ck) => ResumeSource::Legacy(ck),
                None => ResumeSource::Fresh,
            },
        };
        if failure.restarts_used > 0 {
            failure.resumed_from_step = Some(resume.start_step() as u64);
        }
        if let (Some(t), Some(_)) = (telemetry.as_deref(), resilience.elastic.as_ref()) {
            t.metrics.gauge("reshard.world").set(cur_world as i64);
        }
        let recovery_span = (failure.restarts_used > 0)
            .then(|| telemetry.as_deref().map(|t| t.phase("fault.recovery", cur_world as u64)));
        let elastic = ElasticRuntime {
            on: resilience.elastic.is_some(),
            can_grow: cur_world < world,
            snapshot: &elastic_snapshot,
            disk: resilience.elastic.as_ref().and_then(|e| e.checkpoint_path.as_deref()),
            trackers: trackers.as_deref(),
        };
        let outcome = run_attempt(
            cur_config,
            cur_world,
            weight_decay,
            steps,
            &make_model,
            &compute,
            &lr_at,
            telemetry.as_ref(),
            &resilience,
            resume,
            &health,
            &guard_slot,
            &elastic,
        );
        drop(recovery_span);
        match outcome {
            Ok(mut report) => {
                report.restarts = failure.restarts_used;
                report.degraded = health.report();
                report.guard = lock(&guard_slot).take();
                report.reshard = ReshardReport { events: std::mem::take(&mut reshard_events) };
                return Ok(report);
            }
            Err(mut fails) => {
                let mut departed: Vec<usize> = fails
                    .iter()
                    .filter(|f| f.cause == CAUSE_LEAVE)
                    .map(|f| f.rank)
                    .collect();
                departed.sort_unstable();
                departed.dedup();
                let rejoined = fails.iter().any(|f| f.cause == CAUSE_REJOIN);
                failure.failures.append(&mut fails);
                if let Some(gr) = lock(&guard_slot).take() {
                    failure.guard = Some(Box::new(gr));
                }
                if failure.restarts_used >= resilience.max_restarts {
                    failure.degraded = health.report().map(Box::new);
                    return Err(failure);
                }
                failure.restarts_used += 1;
                if let Some(t) = telemetry.as_deref() {
                    t.metrics.counter("fault.restarts").inc(1);
                }

                let Some(ecfg) = resilience.elastic.as_ref() else { continue };
                if !departed.is_empty() {
                    // ---- shrink: drain happened on the way down (the scope
                    // join drained every comm thread); agree, then reshard ----
                    let target = cur_world - departed.len();
                    if target < ecfg.min_world.max(1) {
                        failure.degraded = health.report().map(Box::new);
                        failure.failures.push(RankFailure {
                            rank: departed[0],
                            step: resume_step_of(&elastic_snapshot),
                            cause: format!(
                                "cannot shrink to {target} ranks: below min_world {}",
                                ecfg.min_world.max(1)
                            ),
                        });
                        return Err(failure);
                    }
                    if let Err(e) = survivor_consensus(
                        cur_world,
                        &departed,
                        ecfg.consensus_timeout,
                        telemetry.as_deref(),
                    ) {
                        failure.degraded = health.report().map(Box::new);
                        failure.failures.push(RankFailure {
                            rank: 0,
                            step: resume_step_of(&elastic_snapshot),
                            cause: format!("survivor consensus failed: {e}"),
                        });
                        return Err(failure);
                    }
                    let from_world = cur_world;
                    cur_world = target;
                    cur_config.strategy = config.strategy.remap_for_world(cur_world);
                    let ckpt = lock(&elastic_snapshot).clone().unwrap_or_default();
                    failure.reshards.push(ReshardSummary {
                        step: ckpt.step,
                        from_world,
                        to_world: cur_world,
                    });
                    if let Some(t) = telemetry.as_deref() {
                        t.metrics.counter("reshard.shrinks").inc(1);
                    }
                    reshard_events.push(ReshardEvent {
                        kind: ReshardKind::Shrink,
                        step: ckpt.step,
                        from_world,
                        to_world: cur_world,
                        departed,
                        strategy: cur_config.strategy,
                        ckpt,
                    });
                } else if rejoined && cur_world < world {
                    // ---- grow: the spare takes the next rank slot and
                    // shards redistribute back over the larger world ----
                    let from_world = cur_world;
                    cur_world += 1;
                    cur_config.strategy = config.strategy.remap_for_world(cur_world);
                    let ckpt = lock(&elastic_snapshot).clone().unwrap_or_default();
                    failure.reshards.push(ReshardSummary {
                        step: ckpt.step,
                        from_world,
                        to_world: cur_world,
                    });
                    if let Some(t) = telemetry.as_deref() {
                        t.metrics.counter("reshard.grows").inc(1);
                    }
                    reshard_events.push(ReshardEvent {
                        kind: ReshardKind::Grow,
                        step: ckpt.step,
                        from_world,
                        to_world: cur_world,
                        departed: Vec::new(),
                        strategy: cur_config.strategy,
                        ckpt,
                    });
                }
            }
        }
    }
}

/// Step the next attempt will resume from, for failure bookkeeping.
fn resume_step_of(snapshot: &Mutex<Option<ElasticCheckpoint>>) -> usize {
    lock(snapshot).as_ref().map(|ck| ck.step as usize).unwrap_or(0)
}

/// Run the survivor-agreement round of the shrink protocol: every survivor
/// proposes the same observed view (the old world minus the departed) and
/// the round must return that exact set, unanimously. Any timeout, split
/// or exclusion aborts the reshard.
fn survivor_consensus(
    world: usize,
    departed: &[usize],
    timeout: Duration,
    telemetry: Option<&Telemetry>,
) -> Result<u64, ConsensusError> {
    let mut view = SurvivorConsensus::full_mask(world);
    for &d in departed {
        view &= !(1u64 << d);
    }
    let round = SurvivorConsensus::new(world, timeout);
    let t0 = Instant::now();
    let results: Vec<Result<u64, ConsensusError>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..world)
            .filter(|r| !departed.contains(r))
            .map(|r| {
                let round = &round;
                s.spawn(move || round.propose(r, view))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join().unwrap_or(Err(ConsensusError::Timeout { rank: world, waiting_on: world }))
            })
            .collect()
    });
    if let Some(t) = telemetry {
        t.metrics.counter("reshard.consensus.rounds").inc(1);
        t.metrics.histogram("reshard.consensus.ns").record(t0.elapsed().as_nanos() as u64);
    }
    for r in results {
        let agreed = r?;
        debug_assert_eq!(agreed, view, "unanimous proposals can only agree on the view");
    }
    Ok(view)
}

/// Elastic context one attempt runs under.
struct ElasticRuntime<'a> {
    /// Elastic resharding enabled.
    on: bool,
    /// A spare may rejoin (the world is below its original size).
    can_grow: bool,
    /// Latest in-memory world-size-independent snapshot.
    snapshot: &'a Mutex<Option<ElasticCheckpoint>>,
    /// Durable GEOFMCK3 location, if configured.
    disk: Option<&'a Path>,
    /// Per-rank adaptive-timeout trackers shared across attempts (reset by
    /// the restart loop), indexed by global rank.
    trackers: Option<&'a [Arc<AdaptiveTimeout>]>,
}

/// One attempt: fresh process groups, all ranks run `start_step..steps`.
/// `Err` carries every rank failure observed this attempt (the root cause
/// plus the cascading `RankLost` of its peers).
#[allow(clippy::too_many_arguments)]
fn run_attempt<M, FM, FC, FL>(
    config: FsdpConfig,
    world: usize,
    weight_decay: f32,
    steps: usize,
    make_model: &FM,
    compute: &FC,
    lr_at: &FL,
    telemetry: Option<&Arc<Telemetry>>,
    resilience: &ResilienceConfig,
    resume: ResumeSource,
    health: &HealthMonitor,
    guard_slot: &Mutex<Option<GuardReport>>,
    elastic: &ElasticRuntime<'_>,
) -> Result<DistReport, Vec<RankFailure>>
where
    M: Module + Send,
    FM: Fn(usize) -> (M, Vec<usize>) + Sync,
    FC: Fn(&mut M, usize, usize, usize) -> f32 + Sync,
    FL: Fn(usize) -> f32 + Sync,
{
    let shard_size = config.strategy.shard_group_size(world);
    let layout = HierarchyLayout { world, shard_size };
    let groups = match telemetry {
        Some(tel) => ProcessGroups::hierarchy_with_traffic(
            layout,
            Arc::new(TrafficCounter::with_registry(tel.metrics.clone())),
        ),
        None => ProcessGroups::hierarchy(layout),
    };
    let traffic = groups[0].world.traffic();
    if let Some(tel) = telemetry {
        // surface the overlap knobs next to the per-step overlap.* rows the
        // ranks record, so a trace is self-describing
        tel.metrics.gauge("overlap.enabled").set(i64::from(config.overlap.enabled));
        tel.metrics.gauge("overlap.prefetch.depth").set(config.overlap.prefetch_depth as i64);
    }
    let start_step = resume.start_step();
    // an elastic resume re-derives shards from the global image, so the
    // per-rank loss series covers only `start_step..steps`; the world-mean
    // prefix for the earlier steps comes from the checkpoint itself
    let loss_prefix: Vec<f32> = match &resume {
        ResumeSource::Elastic(ck) => ck.mean_losses.clone(),
        _ => Vec::new(),
    };

    let params_out: Mutex<Option<Vec<f32>>> = Mutex::new(None);
    let losses: Vec<Mutex<Vec<f32>>> = (0..world).map(|_| Mutex::new(Vec::new())).collect();
    // per-rank deposit slots for the two-barrier checkpoint protocol
    let slots: Vec<Mutex<Option<RankSlot>>> = (0..world).map(|_| Mutex::new(None)).collect();
    let failures: Mutex<Vec<RankFailure>> = Mutex::new(Vec::new());

    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(world);
        for g in groups {
            let resume = &resume;
            let loss_prefix = &loss_prefix;
            let params_out = &params_out;
            let losses = &losses;
            let slots = &slots;
            let plan = Arc::clone(&resilience.fault_plan);
            let telemetry = telemetry.cloned();
            let handle = s.spawn(move || -> Result<(), RankFailure> {
                let rank = g.rank;
                let mut g = g.with_timeout(resilience.collective_timeout);
                if let Some(trackers) = elastic.trackers {
                    // run-lifetime trackers, reset by the restart loop after
                    // every recovery/reshard (the stale-straggler defense)
                    g = g.with_adaptive_tracker(Arc::clone(&trackers[rank]));
                }
                if resilience.guard.is_some() {
                    g = g.with_checksums(true);
                }
                // kept outside the unwind boundary so a panicking rank can
                // still unblock its peers
                let guard = g.clone();
                let count = |name: &str| {
                    if let Some(t) = telemetry.as_deref() {
                        t.metrics.counter(name).inc(1);
                    }
                };
                let fail = |step: usize, cause: String| RankFailure { rank, step, cause };
                let current_step = AtomicUsize::new(start_step);

                let body = catch_unwind(AssertUnwindSafe(|| -> Result<(), RankFailure> {
                    let (model, units) = make_model(rank);
                    let mut fr = FsdpRank::new(model, &units, config, g, weight_decay);
                    if let Some(tel) = telemetry.as_ref() {
                        fr = fr.with_telemetry(Arc::clone(tel));
                    }
                    let mut local_losses: Vec<f32> = Vec::with_capacity(steps);
                    match resume {
                        ResumeSource::Fresh => {}
                        ResumeSource::Legacy(ck) => {
                            let slot = &ck.ranks[rank];
                            fr.restore_state(
                                &slot.params,
                                AdamWState {
                                    m: slot.adam_m.clone(),
                                    v: slot.adam_v.clone(),
                                    t: slot.adam_t,
                                },
                            );
                            local_losses.extend_from_slice(&slot.losses);
                        }
                        ResumeSource::Elastic(ck) => {
                            // world-size-independent resume: carve this
                            // rank's shards out of the global image under
                            // the attempt's own layout
                            if let Err(e) = ck.validate_units(&units) {
                                fr.poison_groups();
                                return Err(fail(
                                    start_step,
                                    format!("elastic checkpoint rejected: {e}"),
                                ));
                            }
                            let layout = FlatLayout::new(&units, shard_size);
                            let sr = fr.shard_rank();
                            let params = global_to_shard(&layout, &ck.params, sr);
                            let m = global_to_shard(&layout, &ck.adam_m, sr);
                            let v = global_to_shard(&layout, &ck.adam_v, sr);
                            fr.restore_state(&params, AdamWState { m, v, t: ck.adam_t });
                        }
                    }

                    // ---- middleware stack (built post-restore so the
                    // guard's first rollback snapshot captures the
                    // restored state; see runtime.rs for the ordering
                    // contract each policy rides on) ----
                    let guard_on = resilience.guard.is_some();
                    let probe = runtime::probe();
                    let mut mws: Vec<Box<dyn RankMiddleware<M> + '_>> = Vec::new();
                    macro_rules! observe {
                        () => {
                            if let Some(p) = &probe {
                                mws.push(Box::new(ProbeMw::new(Arc::clone(p))));
                            }
                        };
                    }
                    observe!();
                    mws.push(Box::new(HealthMw::new(health)));
                    observe!();
                    if let Some(gc) = resilience.guard.as_ref() {
                        mws.push(Box::new(GuardMw::new(
                            gc,
                            &fr,
                            start_step,
                            local_losses.len(),
                            guard_slot,
                            telemetry.clone(),
                        )));
                        observe!();
                    }
                    mws.push(Box::new(InjectMw::new(
                        &plan,
                        guard.clone(),
                        resilience.collective_timeout,
                        elastic.on,
                        elastic.can_grow,
                        telemetry.clone(),
                    )));
                    observe!();
                    mws.push(Box::new(CheckpointMw::new(
                        resilience,
                        elastic.on,
                        elastic.disk,
                        elastic.snapshot,
                        slots,
                        loss_prefix,
                        units.clone(),
                        shard_size,
                        telemetry.clone(),
                    )));
                    observe!();
                    mws.push(Box::new(DrainMw::new(elastic.on)));
                    observe!();
                    let mut stack = RuntimeStack::new(mws)
                        .expect("the canonical middleware stack is well-ordered");

                    let mut step = start_step;
                    while step < steps {
                        current_step.store(step, Ordering::Relaxed);
                        let mut cx = StepCx {
                            rank,
                            world,
                            steps,
                            start_step,
                            step,
                            local_losses: &mut local_losses,
                            local_work: Duration::ZERO,
                            degraded: None,
                            poison_loss: false,
                            report: None,
                            corrupt: None,
                            drain: DrainPolicy::Never,
                        };
                        match stack.before_forward(&mut fr, &mut cx) {
                            Ok(Control::Continue) => {}
                            Ok(Control::SkipStep) => {
                                step += 1;
                                continue;
                            }
                            Ok(Control::Rollback { to_step }) => {
                                step = to_step;
                                continue;
                            }
                            Err(f) => {
                                stack.on_failure(&mut fr, &cx, &f);
                                return Err(f);
                            }
                        }
                        let (degraded, poison) = (cx.degraded, cx.poison_loss);
                        let mut compute_time = Duration::ZERO;
                        let outcome = {
                            let compute_time = &mut compute_time;
                            stack.around("step", || {
                                fr.try_step(lr_at(step), |m| {
                                    let t0 = Instant::now();
                                    let loss = compute(m, rank, world, step);
                                    // a degraded GCD takes `slowdown ×` as
                                    // long for the same (bit-identical) result
                                    if let Some(s) = degraded {
                                        std::thread::sleep(t0.elapsed().mul_f64(s - 1.0));
                                    }
                                    *compute_time += t0.elapsed();
                                    if poison { f32::NAN } else { loss }
                                })
                            })
                        };
                        cx.local_work += compute_time;
                        match outcome {
                            Ok(r) => cx.report = Some(r),
                            Err(StepError::Corrupt(c)) if guard_on => {
                                // the checksum layer flagged this step's
                                // reduce; the step completed its collective
                                // schedule (keeping all ranks aligned) but
                                // applied no update — the guard exchange
                                // spreads the verdict world-wide
                                cx.corrupt = Some(c);
                            }
                            Err(e) => {
                                count("fault.rank_lost");
                                fr.poison_groups();
                                // survivor half of the drain protocol: under
                                // elastic resharding the drain middleware
                                // empties the comm thread once groups are
                                // poisoned, so no queued job touches state
                                cx.drain = DrainPolicy::IfElastic;
                                let f = fail(step, e.to_string());
                                stack.on_failure(&mut fr, &cx, &f);
                                return Err(f);
                            }
                        }
                        match stack.after_backward(&mut fr, &mut cx) {
                            Ok(Control::Continue) => {}
                            Ok(Control::SkipStep) => {
                                step += 1;
                                continue;
                            }
                            Ok(Control::Rollback { to_step }) => {
                                step = to_step;
                                continue;
                            }
                            Err(f) => {
                                stack.on_failure(&mut fr, &cx, &f);
                                return Err(f);
                            }
                        }
                        let report = cx.report.expect("an accepted step always has a report");
                        cx.local_losses.push(report.loss);
                        if let Err(f) = stack.on_step(&mut fr, &mut cx) {
                            stack.on_failure(&mut fr, &cx, &f);
                            return Err(f);
                        }
                        step += 1;
                    }

                    let mut cx = StepCx {
                        rank,
                        world,
                        steps,
                        start_step,
                        step: steps,
                        local_losses: &mut local_losses,
                        local_work: Duration::ZERO,
                        degraded: None,
                        poison_loss: false,
                        report: None,
                        corrupt: None,
                        drain: DrainPolicy::Never,
                    };
                    if let Err(lost) = fr.try_materialize() {
                        count("fault.rank_lost");
                        fr.poison_groups();
                        let f = fail(steps, lost.to_string());
                        stack.on_failure(&mut fr, &cx, &f);
                        return Err(f);
                    }
                    stack.on_finish(&mut fr, &mut cx)?;
                    drop(stack);
                    *lock(&losses[rank]) = local_losses;
                    if rank == 0 {
                        *lock(params_out) = Some(fr.packed_params());
                    }
                    Ok(())
                }));
                match body {
                    Ok(result) => result,
                    Err(payload) => {
                        count("fault.rank_panic");
                        guard.poison_all();
                        Err(fail(
                            current_step.load(Ordering::Relaxed),
                            format!("rank thread panicked: {}", panic_message(&*payload)),
                        ))
                    }
                }
            });
            handles.push(handle);
        }
        for (rank, handle) in handles.into_iter().enumerate() {
            match handle.join() {
                Ok(Ok(())) => {}
                Ok(Err(f)) => lock(&failures).push(f),
                // a panic that escaped the unwind boundary (should not
                // happen; the boundary covers the whole body)
                Err(payload) => lock(&failures).push(RankFailure {
                    rank,
                    step: start_step,
                    cause: format!("rank thread aborted: {}", panic_message(&*payload)),
                }),
            }
        }
    });

    let fails = failures.into_inner().unwrap_or_else(PoisonError::into_inner);
    if !fails.is_empty() {
        return Err(fails);
    }

    let per_rank: Vec<Vec<f32>> = losses.iter().map(|m| lock(m).clone()).collect();
    // with an elastic resume the rank-local series covers start_step..steps
    // and the earlier world means come from the checkpoint prefix
    let local_steps = steps - loss_prefix.len();
    if per_rank.iter().any(|l| l.len() != local_steps) {
        return Err(vec![RankFailure {
            rank: 0,
            step: steps,
            cause: "incomplete loss series despite clean exit".into(),
        }]);
    }
    let mut mean_losses = loss_prefix;
    mean_losses.extend(
        (0..local_steps).map(|s| per_rank.iter().map(|l| l[s]).sum::<f32>() / world as f32),
    );

    let final_params = match lock(&params_out).take() {
        Some(p) => p,
        None => {
            return Err(vec![RankFailure {
                rank: 0,
                step: steps,
                cause: "rank 0 finished without publishing parameters".into(),
            }])
        }
    };
    Ok(DistReport {
        final_params,
        mean_losses,
        traffic: traffic.snapshot(),
        restarts: 0,
        degraded: None,
        guard: None,
        reshard: ReshardReport::default(),
        data: None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::ShardingStrategy;
    use geofm_tensor::{Tensor, TensorRng};
    use geofm_vit::{VitConfig, VitModel};

    fn tiny_vit() -> VitConfig {
        VitConfig {
            name: "dist".into(),
            width: 16,
            depth: 2,
            mlp: 32,
            heads: 4,
            patch: 4,
            img: 8,
            channels: 1,
        }
    }

    /// Deterministic global batch for a step: images + regression targets.
    fn batch(cfg: &VitConfig, step: usize, global: usize) -> (Tensor, Tensor) {
        let mut rng = TensorRng::seed_from(5000 + step as u64);
        let imgs = rng.randn(&[global, cfg.channels * cfg.img * cfg.img], 1.0);
        let tgt = rng.randn(&[global, cfg.tokens(), cfg.width], 0.5);
        (imgs, tgt)
    }

    fn vit_compute(cfg: &VitConfig, m: &mut VitModel, rank: usize, step: usize, world: usize) -> f32 {
        let global = 8;
        let per = global / world;
        let (imgs, tgt) = batch(cfg, step, global);
        let xl = imgs.rows(rank * per, (rank + 1) * per);
        // local target slab
        let tw = cfg.tokens() * cfg.width;
        let tl = Tensor::from_vec(
            &[per, cfg.tokens(), cfg.width],
            tgt.data()[rank * per * tw..(rank + 1) * per * tw].to_vec(),
        );
        m.zero_grad();
        let enc = m.forward(&xl);
        let diff = enc.sub(&tl);
        let n = diff.numel() as f32;
        let loss = diff.sum_sq() / n;
        m.backward(&diff.scale(2.0 / n));
        loss
    }

    fn run(strategy: ShardingStrategy, world: usize) -> DistReport {
        let cfg = tiny_vit();
        run_data_parallel(
            FsdpConfig::tuned(strategy),
            world,
            0.01,
            4,
            |_rank| {
                let mut rng = TensorRng::seed_from(99);
                let cfg = tiny_vit();
                let mut model = VitModel::new(&cfg, &mut rng);
                let units = model.unit_param_counts();
                (model, units)
            },
            |m, rank, step| vit_compute(&cfg, m, rank, step, world),
            |_step| 1e-3,
        )
    }

    fn run_resilient(
        strategy: ShardingStrategy,
        world: usize,
        steps: usize,
        resilience: ResilienceConfig,
    ) -> Result<DistReport, FailureReport> {
        let cfg = tiny_vit();
        try_run_data_parallel(
            FsdpConfig::tuned(strategy),
            world,
            0.01,
            steps,
            |_rank| {
                let mut rng = TensorRng::seed_from(99);
                let cfg = tiny_vit();
                let mut model = VitModel::new(&cfg, &mut rng);
                let units = model.unit_param_counts();
                (model, units)
            },
            |m, rank, step| vit_compute(&cfg, m, rank, step, world),
            |_step| 1e-3,
            None,
            resilience,
        )
    }

    fn ckpt_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("geofm-trainer-{tag}-{}", std::process::id()))
    }

    #[test]
    fn vit_training_is_strategy_invariant() {
        let baseline = run(ShardingStrategy::NoShard, 1);
        for strategy in [
            ShardingStrategy::FullShard,
            ShardingStrategy::ShardGradOp,
            ShardingStrategy::Hybrid { shard_size: 2 },
            ShardingStrategy::ddp_default(),
        ] {
            let result = run(strategy, 4);
            let max_diff = baseline
                .final_params
                .iter()
                .zip(&result.final_params)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(
                max_diff < 5e-4,
                "{}: max param diff vs single rank = {}",
                strategy.name(),
                max_diff
            );
            // step-0 losses must agree exactly in expectation (same global batch)
            assert!((result.mean_losses[0] - baseline.mean_losses[0]).abs() < 1e-3);
        }
    }

    #[test]
    fn losses_decrease_during_training() {
        // Each step draws a fresh random batch, so single-step losses are
        // noisy; train long enough that the trend dominates the noise and
        // compare first-half vs second-half means.
        let cfg = tiny_vit();
        let world = 2;
        let report = run_data_parallel(
            FsdpConfig::tuned(ShardingStrategy::FullShard),
            world,
            0.01,
            12,
            |_rank| {
                let mut rng = TensorRng::seed_from(99);
                let cfg = tiny_vit();
                let mut model = VitModel::new(&cfg, &mut rng);
                let units = model.unit_param_counts();
                (model, units)
            },
            |m, rank, step| vit_compute(&cfg, m, rank, step, world),
            |_step| 1e-3,
        );
        let losses = &report.mean_losses;
        let half = losses.len() / 2;
        let mean = |s: &[f32]| s.iter().sum::<f32>() / s.len() as f32;
        assert!(
            mean(&losses[half..]) < mean(&losses[..half]),
            "losses did not trend down: {losses:?}"
        );
    }

    #[test]
    fn traffic_grows_with_world_size() {
        let t2 = run(ShardingStrategy::NoShard, 2).traffic;
        let t4 = run(ShardingStrategy::NoShard, 4).traffic;
        assert!(t4.total() > t2.total());
    }

    #[test]
    fn injected_crash_without_restart_budget_reports_failure() {
        let resilience = ResilienceConfig {
            fault_plan: Arc::new(FaultPlan::none().with_rank_crash(1, 2)),
            collective_timeout: Some(Duration::from_secs(5)),
            ..ResilienceConfig::disabled()
        };
        let start = std::time::Instant::now();
        let err = run_resilient(ShardingStrategy::FullShard, 4, 4, resilience)
            .expect_err("crash without restarts must fail");
        assert_eq!(err.restarts_used, 0);
        assert!(
            err.failures.iter().any(|f| f.rank == 1 && f.step == 2),
            "report must contain the root cause: {err}"
        );
        // every survivor must have aborted, not deadlocked
        assert!(start.elapsed() < Duration::from_secs(30));
    }

    #[test]
    fn crash_recovery_from_checkpoint_is_bit_identical() {
        let dir = ckpt_dir("bitident");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("latest.ckpt");
        let steps = 6;

        let clean = run_resilient(
            ShardingStrategy::FullShard,
            2,
            steps,
            ResilienceConfig::disabled(),
        )
        .expect("clean run");

        let resilience = ResilienceConfig {
            fault_plan: Arc::new(FaultPlan::none().with_rank_crash(1, 4)),
            checkpoint_every: 2,
            checkpoint_path: Some(path.clone()),
            collective_timeout: Some(Duration::from_secs(5)),
            max_restarts: 1,
            ..ResilienceConfig::disabled()
        };
        let recovered = run_resilient(ShardingStrategy::FullShard, 2, steps, resilience)
            .expect("run must recover via restart");
        assert_eq!(recovered.restarts, 1);
        assert_eq!(
            clean.final_params, recovered.final_params,
            "recovered run must be bit-identical to the uninterrupted run"
        );
        assert_eq!(clean.mean_losses, recovered.mean_losses);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_checkpoint_write_leaves_previous_durable() {
        let dir = ckpt_dir("torn");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("latest.ckpt");
        let steps = 6;
        // checkpoint after steps 2 and 4; the step-4 write is torn mid-buffer
        // (and the writer dies), so recovery resumes from step 2
        let resilience = ResilienceConfig {
            fault_plan: Arc::new(FaultPlan::none().with_checkpoint_crash(3)),
            checkpoint_every: 2,
            checkpoint_path: Some(path.clone()),
            collective_timeout: Some(Duration::from_secs(5)),
            max_restarts: 1,
            ..ResilienceConfig::disabled()
        };
        let clean = run_resilient(
            ShardingStrategy::ShardGradOp,
            2,
            steps,
            ResilienceConfig::disabled(),
        )
        .expect("clean run");
        let recovered = run_resilient(ShardingStrategy::ShardGradOp, 2, steps, resilience)
            .expect("must recover from the pre-torn checkpoint");
        assert_eq!(recovered.restarts, 1);
        assert_eq!(clean.final_params, recovered.final_params);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn straggler_delays_but_does_not_change_results() {
        let resilience = ResilienceConfig {
            fault_plan: Arc::new(
                FaultPlan::none().with_slow_rank(1, 1, Duration::from_millis(30)),
            ),
            ..ResilienceConfig::disabled()
        };
        let clean =
            run_resilient(ShardingStrategy::FullShard, 2, 3, ResilienceConfig::disabled())
                .expect("clean");
        let slowed = run_resilient(ShardingStrategy::FullShard, 2, 3, resilience)
            .expect("straggler must not fail the run");
        assert_eq!(slowed.restarts, 0);
        assert_eq!(clean.final_params, slowed.final_params);
    }

    #[test]
    fn hung_rank_is_detected_by_adaptive_timeout_and_recovered_elastically() {
        let dir = ckpt_dir("hang");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("latest.ckpt");
        let steps = 6;

        let clean = run_resilient(
            ShardingStrategy::FullShard,
            2,
            steps,
            ResilienceConfig::disabled(),
        )
        .expect("clean run");

        // Rank 1 hangs at step 3 (after the step-2 checkpoint). The static
        // timeout is a generous 30 s; detection must come from the adaptive
        // bound, so the whole test finishing quickly proves the EWMA path.
        let resilience = ResilienceConfig {
            fault_plan: Arc::new(FaultPlan::none().with_hang_rank(1, 3)),
            checkpoint_every: 2,
            checkpoint_path: Some(path.clone()),
            collective_timeout: Some(Duration::from_secs(30)),
            max_restarts: 1,
            adaptive_timeout: Some(geofm_collectives::AdaptiveTimeoutConfig {
                floor: Duration::from_millis(100),
                multiplier: 16.0,
                warmup: 8,
            }),
            ..ResilienceConfig::disabled()
        };
        let start = std::time::Instant::now();
        let recovered = run_resilient(ShardingStrategy::FullShard, 2, steps, resilience)
            .expect("world must recover from the hang via elastic restart");
        assert_eq!(recovered.restarts, 1, "exactly one restart");
        assert_eq!(
            clean.final_params, recovered.final_params,
            "post-hang recovery must be bit-identical to the uninterrupted run"
        );
        assert_eq!(clean.mean_losses, recovered.mean_losses);
        assert!(
            start.elapsed() < Duration::from_secs(20),
            "adaptive timeout must detect the hang well before the 30 s static bound \
             (took {:?})",
            start.elapsed()
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn degraded_rank_is_reported_but_run_stays_bit_identical() {
        let clean =
            run_resilient(ShardingStrategy::FullShard, 2, 6, ResilienceConfig::disabled())
                .expect("clean");
        assert!(clean.degraded.is_none(), "healthy run must not report degradation");

        let resilience = ResilienceConfig {
            // rank 1's compute runs 8× slower from step 1 onward
            fault_plan: Arc::new(FaultPlan::none().with_degraded_rank(1, 1, 8.0)),
            ..ResilienceConfig::disabled()
        };
        let degraded = run_resilient(ShardingStrategy::FullShard, 2, 6, resilience)
            .expect("a degraded world completes — slowly");
        assert_eq!(degraded.restarts, 0, "degradation must not trigger restarts");
        assert_eq!(
            clean.final_params, degraded.final_params,
            "slow hardware must not change the math"
        );
        let report = degraded.degraded.expect("health monitor must flag the degraded rank");
        assert_eq!(report.stragglers[0].rank, 1, "{report}");
        assert!(report.stragglers[0].slowdown > 2.5, "{report}");
        assert!(report.goodput_lost > 0.3, "{report}");
    }

    #[test]
    fn degraded_link_slows_collectives_but_preserves_results() {
        let clean =
            run_resilient(ShardingStrategy::ShardGradOp, 2, 4, ResilienceConfig::disabled())
                .expect("clean");
        let resilience = ResilienceConfig {
            fault_plan: Arc::new(FaultPlan::none().with_degraded_link(0, 1, 4.0)),
            ..ResilienceConfig::disabled()
        };
        let degraded = run_resilient(ShardingStrategy::ShardGradOp, 2, 4, resilience)
            .expect("a degraded link completes");
        assert_eq!(clean.final_params, degraded.final_params);
        assert_eq!(clean.mean_losses, degraded.mean_losses);
    }

    /// f32 equality that treats the canonical NaN skip placeholder as equal
    /// to itself (NaN != NaN under IEEE compare).
    fn bitwise_eq(a: &[f32], b: &[f32]) -> bool {
        a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
    }

    #[test]
    fn guarded_run_without_faults_is_bit_identical_to_unguarded() {
        let clean = run_resilient(ShardingStrategy::FullShard, 2, 6, ResilienceConfig::disabled())
            .expect("clean");
        assert!(clean.guard.is_none(), "guard off must not report");

        let guarded = run_resilient(
            ShardingStrategy::FullShard,
            2,
            6,
            ResilienceConfig {
                guard: Some(GuardConfig::default()),
                ..ResilienceConfig::disabled()
            },
        )
        .expect("guarded clean run");
        let gr = guarded.guard.expect("guard on must always report");
        assert_eq!(gr.trips, 0, "{gr}");
        assert_eq!(gr.rollbacks, 0);
        // checksums + guard exchange + snapshots must not change the math
        assert_eq!(clean.final_params, guarded.final_params);
        assert_eq!(clean.mean_losses, guarded.mean_losses);
    }

    #[test]
    fn bitflip_is_detected_rolled_back_and_bit_identical_to_clean_skip() {
        // comparator: a clean guarded run told to skip step 3 outright
        let comparator = run_resilient(
            ShardingStrategy::Hybrid { shard_size: 2 },
            4,
            6,
            ResilienceConfig {
                guard: Some(GuardConfig {
                    skip_steps: BTreeSet::from([3]),
                    ..GuardConfig::default()
                }),
                ..ResilienceConfig::disabled()
            },
        )
        .expect("comparator run");

        // faulted: rank 2 flips a gradient bit in its step-3 reduce
        let faulted = run_resilient(
            ShardingStrategy::Hybrid { shard_size: 2 },
            4,
            6,
            ResilienceConfig {
                fault_plan: Arc::new(FaultPlan::none().with_bitflip_grad(2, 3, 17)),
                guard: Some(GuardConfig::default()),
                ..ResilienceConfig::disabled()
            },
        )
        .expect("guard must recover from the bit flip without a restart");
        assert_eq!(faulted.restarts, 0, "SDC recovery must not burn a restart");
        let gr = faulted.guard.expect("guard report");
        assert_eq!(gr.trips, 1, "{gr}");
        assert_eq!(gr.checksum_trips, 1, "{gr}");
        assert_eq!(gr.sentinel_trips, 0, "{gr}");
        assert_eq!(gr.rollbacks, 1, "{gr}");
        assert_eq!(gr.skipped_steps, vec![3], "{gr}");
        assert_eq!(
            comparator.final_params, faulted.final_params,
            "rollback-and-skip must be bit-identical to a clean run with the same skips"
        );
        assert!(bitwise_eq(&comparator.mean_losses, &faulted.mean_losses));
        assert!(faulted.mean_losses[3].is_nan(), "the skipped step holds the NaN placeholder");
    }

    #[test]
    fn poisoned_loss_trips_the_sentinel_and_recovers() {
        let comparator = run_resilient(
            ShardingStrategy::FullShard,
            2,
            5,
            ResilienceConfig {
                guard: Some(GuardConfig {
                    skip_steps: BTreeSet::from([2]),
                    ..GuardConfig::default()
                }),
                ..ResilienceConfig::disabled()
            },
        )
        .expect("comparator run");

        let faulted = run_resilient(
            ShardingStrategy::FullShard,
            2,
            5,
            ResilienceConfig {
                fault_plan: Arc::new(FaultPlan::none().with_poison_loss(1, 2)),
                guard: Some(GuardConfig::default()),
                ..ResilienceConfig::disabled()
            },
        )
        .expect("guard must recover from the poisoned loss");
        let gr = faulted.guard.expect("guard report");
        assert_eq!(gr.sentinel_trips, 1, "NaN loss is the sentinel's job: {gr}");
        assert_eq!(gr.checksum_trips, 0, "{gr}");
        assert_eq!(gr.skipped_steps, vec![2], "{gr}");
        assert_eq!(comparator.final_params, faulted.final_params);
        assert!(bitwise_eq(&comparator.mean_losses, &faulted.mean_losses));
    }

    #[test]
    fn unguarded_bitflip_corrupts_silently() {
        // the negative control: without the guard the same fault completes
        // "successfully" — and produces different weights. This is exactly
        // the failure mode the checksum layer exists to catch.
        let clean = run_resilient(ShardingStrategy::FullShard, 2, 4, ResilienceConfig::disabled())
            .expect("clean");
        let corrupted = run_resilient(
            ShardingStrategy::FullShard,
            2,
            4,
            ResilienceConfig {
                fault_plan: Arc::new(FaultPlan::none().with_bitflip_grad(1, 1, 24)),
                ..ResilienceConfig::disabled()
            },
        )
        .expect("unguarded corruption sails through");
        assert!(corrupted.guard.is_none());
        assert_ne!(
            clean.final_params, corrupted.final_params,
            "a high exponent-bit flip must actually perturb the weights"
        );
    }

    #[test]
    fn rollback_budget_exhaustion_fails_with_guard_report() {
        // poison the loss on every early step: each recovery re-trips until
        // the budget runs out, and the failure carries the guard report
        let mut plan = FaultPlan::none();
        for step in 0..3 {
            plan = plan.with_poison_loss(0, step);
        }
        let err = run_resilient(
            ShardingStrategy::FullShard,
            2,
            6,
            ResilienceConfig {
                fault_plan: Arc::new(plan),
                guard: Some(GuardConfig { max_rollbacks: 2, ..GuardConfig::default() }),
                collective_timeout: Some(Duration::from_secs(5)),
                ..ResilienceConfig::disabled()
            },
        )
        .expect_err("three poisons against a budget of two must fail");
        let gr = err.guard.as_ref().expect("failure must carry the guard report");
        assert_eq!(gr.rollbacks, 2, "{gr}");
        assert_eq!(gr.trips, 3, "{gr}");
        assert!(
            err.failures.iter().any(|f| f.cause.contains("rollback budget exhausted")),
            "{err}"
        );
    }

    #[test]
    fn compute_panic_is_captured_as_rank_failure() {
        let cfg = tiny_vit();
        let world = 2;
        let err = try_run_data_parallel(
            FsdpConfig::tuned(ShardingStrategy::FullShard),
            world,
            0.01,
            3,
            |_rank| {
                let mut rng = TensorRng::seed_from(99);
                let cfg = tiny_vit();
                let mut model = VitModel::new(&cfg, &mut rng);
                let units = model.unit_param_counts();
                (model, units)
            },
            |m, rank, step| {
                if rank == 1 && step == 1 {
                    panic!("simulated OOM on rank 1");
                }
                vit_compute(&cfg, m, rank, step, world)
            },
            |_step| 1e-3,
            None,
            ResilienceConfig {
                collective_timeout: Some(Duration::from_secs(5)),
                ..ResilienceConfig::disabled()
            },
        )
        .expect_err("panicking compute must surface as a failure report");
        assert!(
            err.failures.iter().any(|f| f.cause.contains("simulated OOM")),
            "panic message must be preserved: {err}"
        );
    }

    // ---- elastic resharding ----

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// World-aware compute for the elastic harness: global batch 12 divides
    /// every world size the shrink/grow schedules visit (1..=4).
    fn vit_compute_elastic(
        cfg: &VitConfig,
        m: &mut VitModel,
        rank: usize,
        world: usize,
        step: usize,
    ) -> f32 {
        let global = 12;
        let per = global / world;
        let (imgs, tgt) = batch(cfg, step, global);
        let xl = imgs.rows(rank * per, (rank + 1) * per);
        let tw = cfg.tokens() * cfg.width;
        let tl = Tensor::from_vec(
            &[per, cfg.tokens(), cfg.width],
            tgt.data()[rank * per * tw..(rank + 1) * per * tw].to_vec(),
        );
        m.zero_grad();
        let enc = m.forward(&xl);
        let diff = enc.sub(&tl);
        let n = diff.numel() as f32;
        let loss = diff.sum_sq() / n;
        m.backward(&diff.scale(2.0 / n));
        loss
    }

    fn run_elastic(
        strategy: ShardingStrategy,
        world: usize,
        steps: usize,
        resilience: ResilienceConfig,
    ) -> Result<DistReport, FailureReport> {
        let cfg = tiny_vit();
        try_run_elastic(
            FsdpConfig::tuned(strategy),
            world,
            0.01,
            steps,
            |_rank| {
                let mut rng = TensorRng::seed_from(99);
                let cfg = tiny_vit();
                let mut model = VitModel::new(&cfg, &mut rng);
                let units = model.unit_param_counts();
                (model, units)
            },
            |m, rank, world, step| vit_compute_elastic(&cfg, m, rank, world, step),
            |_step| 1e-3,
            None,
            resilience,
        )
    }

    /// The acceptance invariant: a reference run launched at `world` from
    /// the event's recorded checkpoint (via the durable GEOFMCK3 path) —
    /// with the event's remapped strategy and no faults.
    fn reference_from_event(ev: &ReshardEvent, steps: usize, tag: &str) -> DistReport {
        let dir = ckpt_dir(tag);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("elastic.ck3");
        ev.ckpt.save(&path).expect("event checkpoint must serialise");
        let report = run_elastic(
            ev.strategy,
            ev.to_world,
            steps,
            ResilienceConfig {
                collective_timeout: Some(Duration::from_secs(5)),
                elastic: Some(ElasticConfig {
                    checkpoint_path: Some(path),
                    ..ElasticConfig::default()
                }),
                ..ResilienceConfig::disabled()
            },
        )
        .expect("reference run must succeed");
        let _ = std::fs::remove_dir_all(&dir);
        report
    }

    #[test]
    fn shrink_continues_bit_identical_to_fresh_run_at_smaller_world() {
        let dir = ckpt_dir("elastic-shrink");
        let _ = std::fs::remove_dir_all(&dir);
        let resilience = ResilienceConfig {
            fault_plan: Arc::new(FaultPlan::none().with_rank_leave(2, 3)),
            checkpoint_every: 2,
            collective_timeout: Some(Duration::from_secs(5)),
            max_restarts: 2,
            elastic: Some(ElasticConfig {
                checkpoint_path: Some(dir.join("elastic.ck3")),
                ..ElasticConfig::default()
            }),
            ..ResilienceConfig::disabled()
        };
        let report = run_elastic(ShardingStrategy::FullShard, 3, 6, resilience)
            .expect("losing a rank permanently must shrink and continue");
        assert_eq!(report.reshard.events.len(), 1, "exactly one transition");
        let ev = &report.reshard.events[0];
        assert_eq!(ev.kind, ReshardKind::Shrink);
        assert_eq!((ev.from_world, ev.to_world), (3, 2));
        assert_eq!(ev.departed, vec![2]);
        assert_eq!(ev.step, 2, "the leave at step 3 resumes from the step-2 snapshot");
        assert_eq!(report.mean_losses.len(), 6);

        let reference = reference_from_event(ev, 6, "elastic-shrink-ref");
        assert_eq!(
            bits(&report.final_params),
            bits(&reference.final_params),
            "post-shrink training must be bit-identical to a fresh run at \
             the smaller world from the same resharded state"
        );
        assert_eq!(bits(&report.mean_losses), bits(&reference.mean_losses));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn hybrid_shard_group_remaps_on_shrink() {
        // HYBRID(2) at world 4 loses a rank: 2 no longer divides 3, so the
        // shrink remaps to HYBRID(1) — and stays bit-identical.
        let resilience = ResilienceConfig {
            fault_plan: Arc::new(FaultPlan::none().with_rank_leave(3, 3)),
            checkpoint_every: 2,
            collective_timeout: Some(Duration::from_secs(5)),
            max_restarts: 2,
            elastic: Some(ElasticConfig::default()),
            ..ResilienceConfig::disabled()
        };
        let report = run_elastic(ShardingStrategy::Hybrid { shard_size: 2 }, 4, 6, resilience)
            .expect("hybrid shrink must remap the shard group and continue");
        let ev = &report.reshard.events[0];
        assert_eq!((ev.from_world, ev.to_world), (4, 3));
        assert_eq!(ev.strategy, ShardingStrategy::Hybrid { shard_size: 1 });

        let reference = reference_from_event(ev, 6, "elastic-hybrid-ref");
        assert_eq!(bits(&report.final_params), bits(&reference.final_params));
    }

    #[test]
    fn spare_rejoin_grows_the_world_back() {
        let resilience = ResilienceConfig {
            fault_plan: Arc::new(
                FaultPlan::none().with_rank_leave(1, 2).with_spare_rejoin(4),
            ),
            checkpoint_every: 1,
            collective_timeout: Some(Duration::from_secs(5)),
            max_restarts: 2,
            elastic: Some(ElasticConfig::default()),
            ..ResilienceConfig::disabled()
        };
        let report = run_elastic(ShardingStrategy::FullShard, 3, 6, resilience)
            .expect("shrink then grow must complete");
        assert_eq!(report.reshard.shrinks(), 1);
        assert_eq!(report.reshard.grows(), 1);
        let shrink = &report.reshard.events[0];
        let grow = &report.reshard.events[1];
        assert_eq!((shrink.from_world, shrink.to_world), (3, 2));
        assert_eq!((grow.from_world, grow.to_world), (2, 3));
        assert!(grow.step >= shrink.step, "the world only moves forward");
        assert_eq!(report.mean_losses.len(), 6);

        // the re-grown world is bit-identical to a fresh world-3 run from
        // the grow event's snapshot
        let reference = reference_from_event(grow, 6, "elastic-grow-ref");
        assert_eq!(bits(&report.final_params), bits(&reference.final_params));
        assert_eq!(bits(&report.mean_losses), bits(&reference.mean_losses));
    }

    #[test]
    fn leave_before_any_snapshot_reshards_from_scratch() {
        // no checkpoint cadence → no snapshot exists when rank 0 leaves;
        // the shrunken world restarts from step 0 (event records an empty
        // checkpoint) and matches a fresh small-world run exactly.
        let resilience = ResilienceConfig {
            fault_plan: Arc::new(FaultPlan::none().with_rank_leave(0, 1)),
            collective_timeout: Some(Duration::from_secs(5)),
            max_restarts: 1,
            elastic: Some(ElasticConfig::default()),
            ..ResilienceConfig::disabled()
        };
        let report = run_elastic(ShardingStrategy::ShardGradOp, 3, 4, resilience)
            .expect("shrink without a snapshot restarts from scratch");
        let ev = &report.reshard.events[0];
        assert_eq!(ev.step, 0);
        assert!(ev.ckpt.unit_sizes.is_empty(), "no snapshot existed");

        let fresh = run_elastic(
            ShardingStrategy::ShardGradOp,
            2,
            4,
            ResilienceConfig {
                collective_timeout: Some(Duration::from_secs(5)),
                ..ResilienceConfig::disabled()
            },
        )
        .expect("fresh small-world run");
        assert_eq!(bits(&report.final_params), bits(&fresh.final_params));
    }

    #[test]
    fn shrink_below_min_world_is_a_structured_failure() {
        let resilience = ResilienceConfig {
            fault_plan: Arc::new(FaultPlan::none().with_rank_leave(1, 1)),
            checkpoint_every: 1,
            collective_timeout: Some(Duration::from_secs(5)),
            max_restarts: 3,
            elastic: Some(ElasticConfig { min_world: 2, ..ElasticConfig::default() }),
            ..ResilienceConfig::disabled()
        };
        let err = run_elastic(ShardingStrategy::FullShard, 2, 4, resilience)
            .expect_err("shrinking 2 -> 1 under min_world 2 must fail");
        assert!(
            err.failures.iter().any(|f| f.cause.contains("below min_world")),
            "failure must name the limit: {err}"
        );
        assert!(!err.reshards.is_empty() || err.failures.iter().any(|f| f.cause == CAUSE_LEAVE));
    }

    #[test]
    fn leave_without_elastic_config_restarts_at_full_world() {
        // elastic off: a departure is just a crash — the world restarts at
        // the same size and (the leave being one-shot) runs through.
        let dir = ckpt_dir("leave-inelastic");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let resilience = ResilienceConfig {
            fault_plan: Arc::new(FaultPlan::none().with_rank_leave(1, 2)),
            checkpoint_every: 2,
            checkpoint_path: Some(dir.join("step.ck")),
            collective_timeout: Some(Duration::from_secs(5)),
            max_restarts: 1,
            ..ResilienceConfig::disabled()
        };
        let report = run_resilient(ShardingStrategy::FullShard, 4, 4, resilience)
            .expect("one-shot leave with restart budget must recover");
        assert_eq!(report.restarts, 1);
        assert!(report.reshard.events.is_empty(), "no elastic config, no reshard");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
