//! Convenience harness: run a distributed training job across rank threads
//! and collect the result.

use crate::rank::FsdpRank;
use crate::strategy::FsdpConfig;
use geofm_collectives::{HierarchyLayout, ProcessGroups, TrafficCounter, TrafficSnapshot};
use geofm_nn::Module;
use geofm_telemetry::Telemetry;
use std::sync::{Arc, Mutex};

/// The outcome of a distributed run.
#[derive(Debug, Clone)]
pub struct DistReport {
    /// Final (materialised) flat parameters, identical on every rank.
    pub final_params: Vec<f32>,
    /// Mean local loss per step, averaged across ranks.
    pub mean_losses: Vec<f32>,
    /// Total communication traffic across all ranks and steps.
    pub traffic: TrafficSnapshot,
}

/// Run `steps` collective training steps across `world` rank threads.
///
/// * `make_model(rank)` must construct identically initialised models (use
///   the same seed) and return the model together with its FSDP unit sizes.
/// * `compute(model, rank, step)` performs zero-grad + forward + backward on
///   rank `rank`'s microbatch for `step` and returns the local loss. For
///   correct data-parallel semantics the local loss must be a **mean** over
///   the rank's samples and microbatches must partition the global batch.
/// * `lr_at(step)` supplies the learning rate.
pub fn run_data_parallel<M, FM, FC, FL>(
    config: FsdpConfig,
    world: usize,
    weight_decay: f32,
    steps: usize,
    make_model: FM,
    compute: FC,
    lr_at: FL,
) -> DistReport
where
    M: Module + Send,
    FM: Fn(usize) -> (M, Vec<usize>) + Sync,
    FC: Fn(&mut M, usize, usize) -> f32 + Sync,
    FL: Fn(usize) -> f32 + Sync,
{
    run_data_parallel_with_telemetry(config, world, weight_decay, steps, make_model, compute, lr_at, None)
}

/// [`run_data_parallel`] with an optional shared [`Telemetry`] bundle.
///
/// When supplied, collective traffic is recorded into the bundle's registry
/// (`comm.<kind>.bytes` / `comm.<kind>.calls`), every rank times its step
/// phases (`fsdp.<phase>.ns` histograms + trace spans per rank track), and
/// `fsdp.steps` counts rank-steps.
#[allow(clippy::too_many_arguments)]
pub fn run_data_parallel_with_telemetry<M, FM, FC, FL>(
    config: FsdpConfig,
    world: usize,
    weight_decay: f32,
    steps: usize,
    make_model: FM,
    compute: FC,
    lr_at: FL,
    telemetry: Option<Arc<Telemetry>>,
) -> DistReport
where
    M: Module + Send,
    FM: Fn(usize) -> (M, Vec<usize>) + Sync,
    FC: Fn(&mut M, usize, usize) -> f32 + Sync,
    FL: Fn(usize) -> f32 + Sync,
{
    let shard_size = config.strategy.shard_group_size(world);
    let layout = HierarchyLayout { world, shard_size };
    let groups = match &telemetry {
        Some(tel) => ProcessGroups::hierarchy_with_traffic(
            layout,
            Arc::new(TrafficCounter::with_registry(tel.metrics.clone())),
        ),
        None => ProcessGroups::hierarchy(layout),
    };
    let traffic = groups[0].world.traffic();
    let params_out: Mutex<Option<Vec<f32>>> = Mutex::new(None);
    let losses: Vec<Mutex<Vec<f32>>> = (0..world).map(|_| Mutex::new(Vec::new())).collect();

    std::thread::scope(|s| {
        for g in groups {
            let make_model = &make_model;
            let compute = &compute;
            let lr_at = &lr_at;
            let params_out = &params_out;
            let losses = &losses;
            let telemetry = telemetry.clone();
            s.spawn(move || {
                let rank = g.rank;
                let (model, units) = make_model(rank);
                let mut fr = FsdpRank::new(model, &units, config, g, weight_decay);
                if let Some(tel) = telemetry {
                    fr = fr.with_telemetry(tel);
                }
                let mut local_losses = Vec::with_capacity(steps);
                for step in 0..steps {
                    let report = fr.step(lr_at(step), |m| compute(m, rank, step));
                    local_losses.push(report.loss);
                }
                fr.materialize();
                *losses[rank].lock().unwrap() = local_losses;
                if rank == 0 {
                    *params_out.lock().unwrap() = Some(fr.packed_params());
                }
            });
        }
    });

    let per_rank: Vec<Vec<f32>> =
        losses.iter().map(|m| m.lock().unwrap().clone()).collect();
    let mean_losses = (0..steps)
        .map(|s| per_rank.iter().map(|l| l[s]).sum::<f32>() / world as f32)
        .collect();

    let final_params = params_out.lock().unwrap().take().expect("rank 0 must finish");
    DistReport { final_params, mean_losses, traffic: traffic.snapshot() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::ShardingStrategy;
    use geofm_tensor::{Tensor, TensorRng};
    use geofm_vit::{VitConfig, VitModel};

    fn tiny_vit() -> VitConfig {
        VitConfig {
            name: "dist".into(),
            width: 16,
            depth: 2,
            mlp: 32,
            heads: 4,
            patch: 4,
            img: 8,
            channels: 1,
        }
    }

    /// Deterministic global batch for a step: images + regression targets.
    fn batch(cfg: &VitConfig, step: usize, global: usize) -> (Tensor, Tensor) {
        let mut rng = TensorRng::seed_from(5000 + step as u64);
        let imgs = rng.randn(&[global, cfg.channels * cfg.img * cfg.img], 1.0);
        let tgt = rng.randn(&[global, cfg.tokens(), cfg.width], 0.5);
        (imgs, tgt)
    }

    fn vit_compute(cfg: &VitConfig, m: &mut VitModel, rank: usize, step: usize, world: usize) -> f32 {
        let global = 8;
        let per = global / world;
        let (imgs, tgt) = batch(cfg, step, global);
        let xl = imgs.rows(rank * per, (rank + 1) * per);
        // local target slab
        let tw = cfg.tokens() * cfg.width;
        let tl = Tensor::from_vec(
            &[per, cfg.tokens(), cfg.width],
            tgt.data()[rank * per * tw..(rank + 1) * per * tw].to_vec(),
        );
        m.zero_grad();
        let enc = m.forward(&xl);
        let diff = enc.sub(&tl);
        let n = diff.numel() as f32;
        let loss = diff.sum_sq() / n;
        m.backward(&diff.scale(2.0 / n));
        loss
    }

    fn run(strategy: ShardingStrategy, world: usize) -> DistReport {
        let cfg = tiny_vit();
        run_data_parallel(
            FsdpConfig::tuned(strategy),
            world,
            0.01,
            4,
            |_rank| {
                let mut rng = TensorRng::seed_from(99);
                let cfg = tiny_vit();
                let mut model = VitModel::new(&cfg, &mut rng);
                let units = model.unit_param_counts();
                (model, units)
            },
            |m, rank, step| vit_compute(&cfg, m, rank, step, world),
            |_step| 1e-3,
        )
    }

    #[test]
    fn vit_training_is_strategy_invariant() {
        let baseline = run(ShardingStrategy::NoShard, 1);
        for strategy in [
            ShardingStrategy::FullShard,
            ShardingStrategy::ShardGradOp,
            ShardingStrategy::Hybrid { shard_size: 2 },
            ShardingStrategy::ddp_default(),
        ] {
            let result = run(strategy, 4);
            let max_diff = baseline
                .final_params
                .iter()
                .zip(&result.final_params)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(
                max_diff < 5e-4,
                "{}: max param diff vs single rank = {}",
                strategy.name(),
                max_diff
            );
            // step-0 losses must agree exactly in expectation (same global batch)
            assert!((result.mean_losses[0] - baseline.mean_losses[0]).abs() < 1e-3);
        }
    }

    #[test]
    fn losses_decrease_during_training() {
        // Each step draws a fresh random batch, so single-step losses are
        // noisy; train long enough that the trend dominates the noise and
        // compare first-half vs second-half means.
        let cfg = tiny_vit();
        let world = 2;
        let report = run_data_parallel(
            FsdpConfig::tuned(ShardingStrategy::FullShard),
            world,
            0.01,
            12,
            |_rank| {
                let mut rng = TensorRng::seed_from(99);
                let cfg = tiny_vit();
                let mut model = VitModel::new(&cfg, &mut rng);
                let units = model.unit_param_counts();
                (model, units)
            },
            |m, rank, step| vit_compute(&cfg, m, rank, step, world),
            |_step| 1e-3,
        );
        let losses = &report.mean_losses;
        let half = losses.len() / 2;
        let mean = |s: &[f32]| s.iter().sum::<f32>() / s.len() as f32;
        assert!(
            mean(&losses[half..]) < mean(&losses[..half]),
            "losses did not trend down: {losses:?}"
        );
    }

    #[test]
    fn traffic_grows_with_world_size() {
        let t2 = run(ShardingStrategy::NoShard, 2).traffic;
        let t4 = run(ShardingStrategy::NoShard, 4).traffic;
        assert!(t4.total() > t2.total());
    }
}
