//! Numerical sentinel: the trainer-side half of the silent-data-corruption
//! defense.
//!
//! The checksum layer in `geofm-collectives` catches faults that change
//! the *bits in flight*; the sentinel catches faults that produce wrong
//! but well-formed numbers — a poisoned local loss, an exploding update,
//! the loss spikes that dominate long billion-parameter campaigns
//! (OReole-FM reports exactly these when scaling ORNL's geospatial ViTs).
//! It screens every completed step's globally-agreed statistics:
//!
//! 1. **NaN/Inf guard** — a non-finite mean loss or gradient norm trips
//!    immediately.
//! 2. **Robust loss-spike detector** — a median/MAD z-score over a
//!    sliding window of recent finite losses. Median/MAD (not mean/std)
//!    so a single spike cannot mask itself by inflating the scale
//!    estimate.
//! 3. **Grad-norm anomaly flag** — the same robust z-score over the
//!    gradient-norm series, at a looser threshold (grad norms are noisier
//!    than losses early in training).
//!
//! Every rank runs its own sentinel, but the inputs are *identical on all
//! ranks by construction* (the mean loss comes out of a world all-reduce;
//! the grad norm is the globally reduced norm) and the arithmetic is
//! fixed-order `f64`, so every rank reaches the same verdict at the same
//! step without any extra communication — the property the deterministic
//! rollback-and-skip protocol rests on.

/// Why the sentinel tripped on a step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SentinelTrip {
    /// The mean loss was NaN or ±Inf.
    NonFiniteLoss {
        /// The offending value.
        loss: f32,
    },
    /// The global gradient norm was NaN or ±Inf.
    NonFiniteGradNorm {
        /// The offending value.
        grad_norm: f32,
    },
    /// The loss spiked past the robust z-score threshold.
    LossSpike {
        /// The offending loss.
        loss: f32,
        /// Its median/MAD z-score over the window.
        zscore: f64,
    },
    /// The gradient norm spiked past its (looser) threshold.
    GradNormSpike {
        /// The offending norm.
        grad_norm: f32,
        /// Its median/MAD z-score over the window.
        zscore: f64,
    },
}

impl std::fmt::Display for SentinelTrip {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::NonFiniteLoss { loss } => write!(f, "non-finite loss {loss}"),
            Self::NonFiniteGradNorm { grad_norm } => {
                write!(f, "non-finite grad norm {grad_norm}")
            }
            Self::LossSpike { loss, zscore } => {
                write!(f, "loss spike {loss} (robust z = {zscore:.1})")
            }
            Self::GradNormSpike { grad_norm, zscore } => {
                write!(f, "grad-norm spike {grad_norm} (robust z = {zscore:.1})")
            }
        }
    }
}

/// Detector thresholds and window size.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SentinelConfig {
    /// Sliding-window length for the robust statistics. Screening starts
    /// only once the window is full — early steps are too volatile to
    /// call anything an anomaly.
    pub window: usize,
    /// Loss trip threshold in robust z-score units.
    pub loss_z: f64,
    /// Grad-norm trip threshold in robust z-score units (looser).
    pub grad_z: f64,
}

impl Default for SentinelConfig {
    fn default() -> Self {
        Self { window: 8, loss_z: 6.0, grad_z: 8.0 }
    }
}

/// One screened step's statistics, kept for the sliding window.
#[derive(Debug, Clone, Copy, PartialEq)]
struct StepStats {
    step: usize,
    loss: f64,
    grad_norm: f64,
}

/// The sliding-window anomaly detector. See the module docs for the
/// determinism argument; see [`Sentinel::screen`] for the verdict order.
#[derive(Debug, Clone)]
pub struct Sentinel {
    config: SentinelConfig,
    /// Accepted (clean) step statistics, ascending by step.
    history: Vec<StepStats>,
}

/// Median of a small, already-extracted sample (sorted internally).
/// Fixed-order f64 arithmetic: identical inputs → identical output bits.
fn median(sample: &mut [f64]) -> f64 {
    sample.sort_by(f64::total_cmp);
    let n = sample.len();
    if n % 2 == 1 {
        sample[n / 2]
    } else {
        (sample[n / 2 - 1] + sample[n / 2]) / 2.0
    }
}

impl Sentinel {
    /// New sentinel with the given thresholds.
    pub fn new(config: SentinelConfig) -> Self {
        Self { config, history: Vec::new() }
    }

    /// The active configuration.
    pub fn config(&self) -> SentinelConfig {
        self.config
    }

    /// Robust z-score of `value` against the window's median/MAD scale.
    /// The scale floor (`1.4826·MAD`, then a relative and an absolute
    /// floor) keeps a near-constant window from flagging harmless jitter
    /// as an anomaly.
    fn robust_z(window: &[f64], value: f64) -> f64 {
        let mut sample: Vec<f64> = window.to_vec();
        let med = median(&mut sample);
        let mut dev: Vec<f64> = window.iter().map(|v| (v - med).abs()).collect();
        let mad = median(&mut dev);
        let scale = (1.4826 * mad).max(1e-3 * med.abs()).max(1e-12);
        (value - med).abs() / scale
    }

    /// Screen one completed step. `Some(trip)` means the step must be
    /// rolled back and skipped; `None` accepts it into the history.
    ///
    /// Verdict order (must stay fixed — it is part of the deterministic
    /// recovery contract): non-finite loss, non-finite grad norm, loss
    /// spike, grad-norm spike.
    pub fn screen(&mut self, step: usize, loss: f32, grad_norm: f32) -> Option<SentinelTrip> {
        if !loss.is_finite() {
            return Some(SentinelTrip::NonFiniteLoss { loss });
        }
        if !grad_norm.is_finite() {
            return Some(SentinelTrip::NonFiniteGradNorm { grad_norm });
        }
        let w = self.config.window;
        if self.history.len() >= w {
            let tail = &self.history[self.history.len() - w..];
            let losses: Vec<f64> = tail.iter().map(|s| s.loss).collect();
            let z = Self::robust_z(&losses, loss as f64);
            if z > self.config.loss_z {
                return Some(SentinelTrip::LossSpike { loss, zscore: z });
            }
            let norms: Vec<f64> = tail.iter().map(|s| s.grad_norm).collect();
            let zg = Self::robust_z(&norms, grad_norm as f64);
            if zg > self.config.grad_z {
                return Some(SentinelTrip::GradNormSpike { grad_norm, zscore: zg });
            }
        }
        self.history.push(StepStats { step, loss: loss as f64, grad_norm: grad_norm as f64 });
        None
    }

    /// Discard every accepted step at or after `step` — called on
    /// rollback so the re-executed steps re-enter the window exactly as
    /// they did the first time.
    pub fn truncate(&mut self, step: usize) {
        self.history.retain(|s| s.step < step);
    }

    /// Accepted (clean) steps so far.
    pub fn accepted(&self) -> usize {
        self.history.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warmed() -> Sentinel {
        let mut s = Sentinel::new(SentinelConfig::default());
        // a gently declining, slightly noisy loss curve
        for step in 0..10 {
            let loss = 2.0 - 0.05 * step as f32 + if step % 2 == 0 { 0.01 } else { -0.01 };
            assert!(s.screen(step, loss, 1.0 + 0.02 * (step % 3) as f32).is_none());
        }
        s
    }

    #[test]
    fn nan_and_inf_trip_immediately_even_cold() {
        let mut s = Sentinel::new(SentinelConfig::default());
        assert!(matches!(
            s.screen(0, f32::NAN, 1.0),
            Some(SentinelTrip::NonFiniteLoss { .. })
        ));
        assert!(matches!(
            s.screen(0, 1.0, f32::INFINITY),
            Some(SentinelTrip::NonFiniteGradNorm { .. })
        ));
        assert_eq!(s.accepted(), 0);
    }

    #[test]
    fn loss_spike_trips_after_warmup() {
        let mut s = warmed();
        match s.screen(10, 50.0, 1.0) {
            Some(SentinelTrip::LossSpike { zscore, .. }) => assert!(zscore > 6.0),
            other => panic!("expected LossSpike, got {other:?}"),
        }
    }

    #[test]
    fn grad_norm_spike_trips_after_warmup() {
        let mut s = warmed();
        match s.screen(10, 1.5, 400.0) {
            Some(SentinelTrip::GradNormSpike { zscore, .. }) => assert!(zscore > 8.0),
            other => panic!("expected GradNormSpike, got {other:?}"),
        }
    }

    #[test]
    fn normal_variation_does_not_trip() {
        let mut s = warmed();
        for step in 10..30 {
            let loss = 1.5 - 0.01 * (step - 10) as f32 + if step % 3 == 0 { 0.03 } else { -0.02 };
            assert!(
                s.screen(step, loss, 1.0 + 0.05 * (step % 4) as f32).is_none(),
                "step {step} false-positived"
            );
        }
    }

    #[test]
    fn cold_window_never_spike_trips() {
        // fewer accepted steps than the window → only the NaN/Inf guard runs
        let mut s = Sentinel::new(SentinelConfig::default());
        for step in 0..7 {
            assert!(s.screen(step, (step as f32 - 3.0).powi(4), 1.0).is_none());
        }
    }

    #[test]
    fn truncate_rewinds_the_window_exactly() {
        let mut a = warmed();
        let mut b = warmed();
        // a: accept two more steps, then rewind them
        assert!(a.screen(10, 1.49, 1.0).is_none());
        assert!(a.screen(11, 1.48, 1.0).is_none());
        a.truncate(10);
        assert_eq!(a.accepted(), b.accepted());
        // both must now produce the identical verdict stream
        for step in 10..14 {
            let loss = 1.5 - 0.01 * (step - 10) as f32;
            assert_eq!(a.screen(step, loss, 1.0), b.screen(step, loss, 1.0));
        }
    }

    #[test]
    fn identical_inputs_give_identical_verdicts() {
        // the determinism contract: two sentinels fed the same series trip
        // at the same step with the same verdict
        let run = || {
            let mut s = Sentinel::new(SentinelConfig::default());
            let mut trips = Vec::new();
            for step in 0..40 {
                let loss = if step == 25 { 90.0 } else { 2.0 - 0.02 * step as f32 };
                if let Some(t) = s.screen(step, loss, 1.0) {
                    trips.push((step, t));
                }
            }
            trips
        };
        assert_eq!(run(), run());
        assert_eq!(run().len(), 1);
    }

    #[test]
    fn constant_loss_window_tolerates_tiny_jitter() {
        // MAD = 0 on a constant window; the scale floor must absorb
        // float-level jitter instead of tripping on it
        let mut s = Sentinel::new(SentinelConfig::default());
        for step in 0..8 {
            assert!(s.screen(step, 1.0, 1.0).is_none());
        }
        assert!(s.screen(8, 1.0 + 1e-6, 1.0).is_none());
        // ...but a genuine jump off the constant plateau still trips
        assert!(s.screen(9, 2.0, 1.0).is_some());
    }
}
