//! Per-rank health monitoring for the resilient trainer.
//!
//! Gray failures do not kill ranks — they make them *slow*, and in a
//! bulk-synchronous step the whole world slows to the straggler's pace
//! while every per-rank wall clock still reads the same (everyone waits at
//! the same barriers). Detection therefore has to measure **rank-local
//! work time** — the stretch where a rank computes on its own, before it
//! re-enters a collective — which is exactly what the trainer feeds
//! [`HealthMonitor::record`].
//!
//! The monitor keeps a per-rank EWMA of local work time, flags ranks whose
//! EWMA exceeds `threshold ×` the healthy median (emitting `health.*`
//! telemetry on the transition), and summarises the run in a
//! [`DegradedReport`]: who was slow, by how much, and the goodput lost to
//! waiting on them.

use geofm_resilience::{DegradedReport, StragglerInfo};
use geofm_telemetry::Telemetry;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// EWMA smoothing factor: weight of the newest sample.
const ALPHA: f64 = 0.3;

#[derive(Debug, Default)]
struct RankStats {
    /// EWMA of local work time, `f64` bits.
    ewma_ns: AtomicU64,
    /// Cumulative local work time.
    total_ns: AtomicU64,
    /// Steps recorded.
    steps: AtomicU64,
    /// Whether this rank has been flagged as a straggler.
    flagged: AtomicBool,
}

/// Tracks per-rank step-time EWMAs and flags persistent stragglers.
///
/// Shared by all rank threads of one attempt; all state is atomic, so
/// `record` is safe to call concurrently from every rank.
#[derive(Debug)]
pub struct HealthMonitor {
    threshold: f64,
    ranks: Vec<RankStats>,
    telemetry: Option<Arc<Telemetry>>,
}

impl HealthMonitor {
    /// Monitor `world` ranks; a rank is flagged once its EWMA exceeds
    /// `threshold ×` the median EWMA across ranks.
    pub fn new(world: usize, threshold: f64) -> Self {
        Self {
            threshold,
            ranks: (0..world).map(|_| RankStats::default()).collect(),
            telemetry: None,
        }
    }

    /// Emit `health.step.ns` histograms, `health.straggler_flags` counter
    /// increments and a `health.stragglers` gauge into `telemetry`.
    pub fn with_telemetry(mut self, telemetry: Option<Arc<Telemetry>>) -> Self {
        self.telemetry = telemetry;
        self
    }

    /// Feed one step's rank-local work time (injected delays + compute,
    /// *excluding* barrier waits — see the module docs for why).
    pub fn record(&self, rank: usize, local_work: Duration) {
        let stats = &self.ranks[rank];
        let ns = local_work.as_nanos() as f64;
        let first = stats.steps.fetch_add(1, Ordering::AcqRel) == 0;
        stats.total_ns.fetch_add(local_work.as_nanos() as u64, Ordering::AcqRel);
        let mut cur = stats.ewma_ns.load(Ordering::Acquire);
        loop {
            let old = f64::from_bits(cur);
            let new = if first { ns } else { old + ALPHA * (ns - old) };
            match stats.ewma_ns.compare_exchange_weak(
                cur,
                new.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        if let Some(t) = &self.telemetry {
            t.metrics.histogram("health.step.ns").record(local_work.as_nanos() as u64);
        }
        self.check_straggler(rank);
    }

    fn ewma_of(&self, rank: usize) -> f64 {
        f64::from_bits(self.ranks[rank].ewma_ns.load(Ordering::Acquire))
    }

    /// Flag `rank` (once) if its EWMA stands out against the median.
    fn check_straggler(&self, rank: usize) {
        let Some(median) = self.median_ewma() else { return };
        if median <= 0.0 {
            return;
        }
        let mine = self.ewma_of(rank);
        if mine > self.threshold * median
            && !self.ranks[rank].flagged.swap(true, Ordering::AcqRel)
        {
            if let Some(t) = &self.telemetry {
                t.metrics.counter("health.straggler_flags").inc(1);
                t.metrics.gauge("health.stragglers").set(self.flagged_count() as i64);
            }
        }
    }

    /// Lower-median EWMA over ranks that have recorded at least one step.
    /// The *lower* median matters at world = 2: with one degraded rank the
    /// upper median would be the straggler itself, masking it.
    fn median_ewma(&self) -> Option<f64> {
        let mut active: Vec<f64> = self
            .ranks
            .iter()
            .filter(|s| s.steps.load(Ordering::Acquire) > 0)
            .map(|s| f64::from_bits(s.ewma_ns.load(Ordering::Acquire)))
            .collect();
        if active.len() < 2 {
            return None;
        }
        active.sort_by(|a, b| a.total_cmp(b));
        Some(active[(active.len() - 1) / 2])
    }

    /// Forget every per-rank statistic: EWMAs, totals, step counts and
    /// straggler flags all return to the fresh state. Called after an
    /// elastic recovery or reshard — step times measured in the old world
    /// (inflated by the dying rank, or by drain/reshard stalls) must not
    /// flag healthy ranks in the new one (the stale-straggler bug).
    pub fn reset(&self) {
        for s in &self.ranks {
            s.ewma_ns.store(0f64.to_bits(), Ordering::Release);
            s.total_ns.store(0, Ordering::Release);
            s.steps.store(0, Ordering::Release);
            s.flagged.store(false, Ordering::Release);
        }
        if let Some(t) = &self.telemetry {
            t.metrics.gauge("health.stragglers").set(0);
        }
    }

    /// Ranks currently flagged.
    pub fn flagged_count(&self) -> usize {
        self.ranks.iter().filter(|s| s.flagged.load(Ordering::Acquire)).count()
    }

    /// Summarise the degradation observed so far: `Some` iff at least one
    /// rank's mean local work time exceeds `threshold ×` the median.
    pub fn report(&self) -> Option<DegradedReport> {
        let means: Vec<(usize, f64, u64)> = self
            .ranks
            .iter()
            .enumerate()
            .filter(|(_, s)| s.steps.load(Ordering::Acquire) > 0)
            .map(|(r, s)| {
                let total = s.total_ns.load(Ordering::Acquire);
                let steps = s.steps.load(Ordering::Acquire);
                (r, total as f64 / steps as f64, total)
            })
            .collect();
        if means.len() < 2 {
            return None;
        }
        let mut sorted: Vec<f64> = means.iter().map(|&(_, m, _)| m).collect();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let median = sorted[(sorted.len() - 1) / 2];
        if median <= 0.0 {
            return None;
        }
        let mut stragglers: Vec<StragglerInfo> = means
            .iter()
            .filter(|&&(_, m, _)| m > self.threshold * median)
            .map(|&(rank, m, _)| StragglerInfo {
                rank,
                slowdown: m / median,
                mean_step_ms: m / 1e6,
            })
            .collect();
        if stragglers.is_empty() {
            return None;
        }
        stragglers.sort_by(|a, b| b.slowdown.total_cmp(&a.slowdown));

        let mut totals: Vec<u64> = means.iter().map(|&(_, _, t)| t).collect();
        totals.sort_unstable();
        let median_total = totals[(totals.len() - 1) / 2] as f64;
        let max_total = *totals.last().unwrap() as f64;
        let goodput_lost = if max_total > 0.0 { 1.0 - median_total / max_total } else { 0.0 };

        Some(DegradedReport { stragglers, median_step_ms: median / 1e6, goodput_lost })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(monitor: &HealthMonitor, rank: usize, ms: u64, steps: usize) {
        for _ in 0..steps {
            monitor.record(rank, Duration::from_millis(ms));
        }
    }

    #[test]
    fn healthy_world_reports_nothing() {
        let m = HealthMonitor::new(4, 2.5);
        for r in 0..4 {
            feed(&m, r, 10, 8);
        }
        assert_eq!(m.flagged_count(), 0);
        assert!(m.report().is_none());
    }

    #[test]
    fn straggler_is_flagged_and_reported() {
        let m = HealthMonitor::new(4, 2.5);
        for r in 0..3 {
            feed(&m, r, 10, 8);
        }
        feed(&m, 3, 40, 8);
        assert_eq!(m.flagged_count(), 1);
        let report = m.report().expect("4x rank must be reported");
        assert_eq!(report.stragglers.len(), 1);
        assert_eq!(report.stragglers[0].rank, 3);
        assert!(
            (report.stragglers[0].slowdown - 4.0).abs() < 0.2,
            "slowdown ≈ 4: {}",
            report.stragglers[0].slowdown
        );
        // healthy ranks idle ~3/4 of the time waiting on rank 3
        assert!((report.goodput_lost - 0.75).abs() < 0.05, "{}", report.goodput_lost);
    }

    #[test]
    fn lower_median_detects_straggler_at_world_two() {
        let m = HealthMonitor::new(2, 2.5);
        feed(&m, 0, 10, 8);
        feed(&m, 1, 50, 8);
        let report = m.report().expect("world=2 straggler must be detectable");
        assert_eq!(report.stragglers[0].rank, 1);
    }

    #[test]
    fn flag_fires_once_per_rank() {
        let t = Arc::new(Telemetry::new());
        let m = HealthMonitor::new(2, 2.0).with_telemetry(Some(Arc::clone(&t)));
        feed(&m, 0, 10, 10);
        feed(&m, 1, 100, 10);
        assert_eq!(t.metrics.counter("health.straggler_flags").get(), 1);
        assert_eq!(t.metrics.histogram("health.step.ns").count(), 20);
    }

    #[test]
    fn reset_clears_stale_straggler_state() {
        let m = HealthMonitor::new(3, 2.5);
        feed(&m, 0, 10, 8);
        feed(&m, 1, 10, 8);
        feed(&m, 2, 50, 8);
        assert_eq!(m.flagged_count(), 1, "pre-reshard straggler flagged");
        m.reset();
        assert_eq!(m.flagged_count(), 0);
        assert!(m.report().is_none(), "old-world statistics must be gone");
        // the formerly-flagged rank is healthy in the new world and must
        // not be re-flagged off stale EWMAs
        for r in 0..3 {
            feed(&m, r, 10, 8);
        }
        assert_eq!(m.flagged_count(), 0);
        assert!(m.report().is_none());
    }

    #[test]
    fn single_rank_world_never_reports() {
        let m = HealthMonitor::new(1, 2.5);
        feed(&m, 0, 10, 8);
        assert!(m.report().is_none(), "no peers to compare against");
    }
}
