//! # geofm-fsdp
//!
//! A real (threaded, shared-memory) implementation of PyTorch-FSDP-style
//! fully sharded data parallelism — the paper's §III-C machinery, built on
//! `geofm-collectives`.
//!
//! Every sharding strategy of the paper is implemented with its exact
//! communication schedule:
//!
//! | strategy        | params            | grads           | optimizer state |
//! |-----------------|-------------------|-----------------|-----------------|
//! | `NO_SHARD`      | replicated        | all-reduce      | replicated      |
//! | `DDP` (baseline)| replicated        | all-reduce (fixed-size buckets) | replicated |
//! | `FULL_SHARD`    | sharded; gathered per unit in fwd **and** bwd | reduce-scatter | sharded |
//! | `SHARD_GRAD_OP` | sharded; gathered once per step | reduce-scatter | sharded |
//! | `HYBRID(k)`     | sharded in groups of k; replicated across groups | reduce-scatter + all-reduce | sharded in group |
//!
//! The engine is **numerically equivalent** across strategies: training the
//! same model with the same global batch under any strategy and world size
//! produces the same weights as single-rank training (verified by the test
//! suite to ~1e-3 in f32). What differs — and what the Frontier simulator
//! prices — is the communication volume and schedule, which the engine
//! meters through the shared [`geofm_collectives::TrafficCounter`].
//!
//! Collectives are issued either blocking or through a per-rank comm
//! thread (see [`OverlapConfig`]): forward and backward gathers are
//! prefetched `prefetch_depth` units ahead and gradient reduce-scatters
//! are double-buffered, following the *identical* collective schedule as
//! the blocking engine — so the two are bit-identical
//! (`tests/overlap_equivalence.rs`) and only the exposed-comm fraction of
//! the step changes (recorded as `overlap.*` telemetry).

pub mod flat;
pub mod health;
pub mod rank;
pub mod reshard;
pub mod runtime;
pub mod sentinel;
pub mod strategy;
pub mod trainer;

pub use flat::FlatLayout;
pub use health::HealthMonitor;
pub use rank::{FsdpRank, StepError, StepReport};
pub use runtime::{
    CheckpointMw, Control, Descriptor, DrainMw, DrainPolicy, GuardMw, HealthMw, InjectMw,
    ProbeCounters, ProbeMw, RankMiddleware, RuntimeStack, Stage, StackError, StepCx,
};
pub use reshard::{global_to_shard, reshard, shards_to_global};
pub use sentinel::{Sentinel, SentinelConfig, SentinelTrip};
pub use strategy::{FsdpConfig, OverlapConfig, PrefetchPolicy, ShardingStrategy};
pub use trainer::{
    run_data_parallel, run_data_parallel_with_telemetry, try_run_data_parallel, try_run_elastic,
    try_run_streaming, DistReport, ElasticConfig, GuardConfig, ReshardEvent, ReshardKind,
    ReshardReport, ResilienceConfig,
};
