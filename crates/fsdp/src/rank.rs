//! The per-rank FSDP engine: parameter gathering, gradient reduction,
//! sharded optimizer steps.

use crate::flat::FlatLayout;
use crate::strategy::{FsdpConfig, ShardingStrategy};
use geofm_collectives::{
    AsyncOp, CollectiveError, CollectiveHandle, CommGroup, CommThread, CorruptPayload,
    OwnedAsyncOp, RankGroups,
    RankLost,
};
use geofm_nn::{AdamW, AdamWState, Module, Optimizer};
use geofm_telemetry::Telemetry;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Instant;

/// Charge the wall time of a blocking collective call (or an async
/// `wait()`) to this step's exposed-comm clock. A macro rather than a
/// method so the timed expression can borrow disjoint fields of `$self`.
macro_rules! exposed {
    ($self:ident, $e:expr) => {{
        let t0 = Instant::now();
        let r = $e;
        $self.exposed_ns += t0.elapsed().as_nanos() as u64;
        r
    }};
}

/// The reduce-path error contract shared by the blocking and overlapped
/// engines: a corrupt verdict is *noted*, not short-circuited — the
/// remaining collectives still run (their payloads are garbage, which is
/// fine — no update gets applied) so every rank of every group crosses
/// the same barrier sequence and the error surfaces in lockstep. Only a
/// lost rank aborts immediately — its group is poisoned and nothing can
/// complete.
fn note(corrupt: &mut Option<CorruptPayload>, r: Result<(), CollectiveError>) -> Result<(), RankLost> {
    match r {
        Ok(()) => Ok(()),
        Err(CollectiveError::Corrupt(c)) => {
            corrupt.get_or_insert(c);
            Ok(())
        }
        Err(CollectiveError::Lost(l)) => Err(l),
    }
}

/// Statistics from one distributed step (local to this rank).
#[derive(Debug, Clone, Copy)]
pub struct StepReport {
    /// This rank's local loss.
    pub loss: f32,
    /// Global gradient norm (identical on every rank), post-averaging.
    pub grad_norm: f32,
    /// Learning rate applied.
    pub lr: f32,
}

/// Why a distributed step failed.
#[must_use = "a failed step must be handled (restart or rollback), not dropped"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepError {
    /// A peer rank died or stopped responding: the groups are poisoned and
    /// the attempt must be abandoned (elastic restart path).
    Lost(RankLost),
    /// A reduce contribution failed checksum verification. The step ran
    /// its full collective schedule — every rank of the affected group
    /// crossed every barrier and observed the identical error, and *no
    /// optimizer update was applied on this rank* — so the world is still
    /// barrier-aligned and can recover in-band (rollback-and-skip).
    Corrupt(CorruptPayload),
}

impl From<RankLost> for StepError {
    fn from(l: RankLost) -> Self {
        Self::Lost(l)
    }
}

impl std::fmt::Display for StepError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Lost(l) => write!(f, "{l}"),
            Self::Corrupt(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for StepError {}

/// One rank of an FSDP training job.
///
/// Construction contract (mirrors `torch.distributed` + FSDP wrapping):
///
/// * every rank builds the model **identically** (same seed);
/// * `groups` comes from [`geofm_collectives::ProcessGroups::hierarchy`]
///   with `shard_size = config.strategy.shard_group_size(world)`;
/// * all ranks call [`FsdpRank::step`] collectively, in lockstep.
pub struct FsdpRank<M: Module> {
    /// The wrapped model (parameters authoritative only after
    /// [`FsdpRank::materialize`] or at the top of each step).
    pub model: M,
    config: FsdpConfig,
    groups: RankGroups,
    layout: FlatLayout,
    world: usize,
    shard_rank: usize,
    /// Owned parameter shards, concatenated across units.
    /// `Arc` so in-flight gather jobs can read shards without a copy;
    /// uniquely owned again (and mutable via `Arc::make_mut` at zero cost)
    /// by the time the optimizer runs, since every gather is waited first.
    owned_params: Arc<Vec<f32>>,
    /// Offsets of each unit's shard within `owned_params`.
    shard_offsets: Vec<usize>,
    optimizer: AdamW,
    grad_clip: Option<f32>,
    /// Optional shared telemetry: phase timings land in histograms
    /// `fsdp.<phase>.ns` and as trace spans on thread track = global rank.
    telemetry: Option<Arc<Telemetry>>,
    /// Comm thread driving the nonblocking collectives when
    /// `config.overlap.enabled`; `None` runs the fully blocking engine.
    comm: Option<CommThread>,
    /// Shard / replica groups registered with the comm thread once at
    /// construction — each async job then shares the registered handle by
    /// `Arc` instead of deep-cloning a [`geofm_collectives::RankHandle`]
    /// per collective.
    comm_shard: Option<CommGroup>,
    comm_replica: Option<CommGroup>,
    /// Nanoseconds of the current step spent *blocked* on communication
    /// (exposed comm). Reset at the top of each step; with overlap on,
    /// collective time hidden behind compute never lands here.
    exposed_ns: u64,
    // scratch buffers reused across steps
    flat: Vec<f32>,
    grads: Vec<f32>,
    gathered: Vec<f32>,
    padded: Vec<f32>,
    rs_out: Vec<f32>,
    owned_grads: Vec<f32>,
}

impl<M: Module> FsdpRank<M> {
    /// Wrap `model` for distributed training.
    pub fn new(
        mut model: M,
        unit_sizes: &[usize],
        config: FsdpConfig,
        groups: RankGroups,
        weight_decay: f32,
    ) -> Self {
        let world = groups.world.size();
        let shard_n = config.strategy.shard_group_size(world);
        assert_eq!(
            groups.shard.size(),
            shard_n,
            "group hierarchy shard size {} must match strategy {}",
            groups.shard.size(),
            config.strategy.name()
        );
        let layout = FlatLayout::new(unit_sizes, shard_n);
        assert_eq!(layout.total_len(), model.num_params(), "unit sizes must cover the model");
        let shard_rank = groups.shard.rank();

        let mut flat = Vec::new();
        model.pack_values(&mut flat);

        // carve out this rank's parameter shards
        let mut owned_params = Vec::with_capacity(layout.total_shard_len());
        let mut shard_offsets = Vec::with_capacity(layout.num_units());
        for u in 0..layout.num_units() {
            shard_offsets.push(owned_params.len());
            owned_params.extend(layout.extract_shard(&flat, u, shard_rank));
        }

        // sharded weight-decay mask aligned to the owned layout
        let full_mask = model.decay_mask();
        let mask_f32: Vec<f32> = full_mask.iter().map(|&b| if b { 1.0 } else { 0.0 }).collect();
        let mut owned_mask = Vec::with_capacity(owned_params.len());
        for u in 0..layout.num_units() {
            owned_mask.extend(layout.extract_shard(&mask_f32, u, shard_rank));
        }
        let optimizer = AdamW::new(owned_params.len(), weight_decay)
            .with_decay_mask(owned_mask.iter().map(|&v| v > 0.5).collect());

        let comm = config.overlap.enabled.then(CommThread::spawn);
        let comm_shard = comm.as_ref().map(|c| c.register(&groups.shard));
        let comm_replica = comm.as_ref().map(|c| c.register(&groups.replica));

        Self {
            model,
            config,
            groups,
            layout,
            world,
            shard_rank,
            owned_params: Arc::new(owned_params),
            shard_offsets,
            optimizer,
            grad_clip: None,
            telemetry: None,
            comm,
            comm_shard,
            comm_replica,
            exposed_ns: 0,
            flat,
            grads: Vec::new(),
            gathered: Vec::new(),
            padded: Vec::new(),
            rs_out: Vec::new(),
            owned_grads: Vec::new(),
        }
    }

    /// Enable global gradient-norm clipping (same semantics on every
    /// strategy — the norm is computed globally, so clipping preserves
    /// cross-strategy equivalence).
    pub fn with_grad_clip(mut self, max_norm: f32) -> Self {
        self.grad_clip = Some(max_norm);
        self
    }

    /// Record per-step phase timings (gather / compute / regather / reduce /
    /// optimizer) into a shared [`Telemetry`] bundle.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Self {
        telemetry.trace.name_thread(0, self.groups.rank as u64, &format!("rank{}", self.groups.rank));
        self.telemetry = Some(telemetry);
        self
    }

    /// World size.
    pub fn world(&self) -> usize {
        self.world
    }

    /// This rank's global index.
    pub fn rank(&self) -> usize {
        self.groups.rank
    }

    /// This rank's index within its shard group.
    pub fn shard_rank(&self) -> usize {
        self.shard_rank
    }

    /// The active configuration.
    pub fn config(&self) -> &FsdpConfig {
        &self.config
    }

    /// Per-rank parameter memory actually held by this strategy (elements):
    /// owned shards + the transiently materialised full model.
    pub fn owned_param_elems(&self) -> usize {
        self.owned_params.len()
    }

    /// Usage counters of the comm thread's scratch-buffer pool (`None`
    /// when the blocking engine runs). After a warmup step the `allocs`
    /// counter must stop moving — the property `tests/buffer_pool.rs`
    /// pins at trainer level.
    pub fn comm_pool_stats(&self) -> Option<geofm_collectives::PoolStats> {
        self.comm.as_ref().map(|c| c.pool().stats())
    }

    /// Drain the comm thread: block until every in-flight nonblocking
    /// collective this rank issued has terminated (completed or failed).
    /// The first half of the elastic drain protocol — no reshard may move
    /// state while an async gather could still write into it. A no-op on
    /// the blocking engine. Records the drain wait as `reshard.drain.ns`.
    pub fn quiesce_comm(&self) {
        let Some(comm) = &self.comm else { return };
        let t0 = std::time::Instant::now();
        comm.quiesce();
        if let Some(t) = &self.telemetry {
            t.metrics.histogram("reshard.drain.ns").record(t0.elapsed().as_nanos() as u64);
        }
    }

    /// Job-cell pool counters of the comm thread (`None` on the blocking
    /// engine) — see [`geofm_collectives::CellPoolStats`].
    pub fn comm_cell_stats(&self) -> Option<geofm_collectives::CellPoolStats> {
        self.comm.as_ref().map(|c| c.cell_stats())
    }

    fn owned_range(&self, u: usize) -> std::ops::Range<usize> {
        let s = self.shard_offsets[u];
        s..s + self.layout.shard_len(u)
    }

    /// All-gather every unit's parameters into the model.
    fn try_gather_params(&mut self) -> Result<(), RankLost> {
        if self.comm.is_some() {
            self.try_gather_units_overlapped(false)?;
        } else {
            for u in 0..self.layout.num_units() {
                let r = self.owned_range(u);
                exposed!(
                    self,
                    self.groups.shard.try_all_gather(&self.owned_params[r], &mut self.gathered)
                )?;
                self.layout.write_gathered(&mut self.flat, u, &self.gathered);
            }
        }
        self.model.unpack_values(&self.flat);
        Ok(())
    }

    /// Re-issue the gathers for the backward pass (FULL_SHARD/HYBRID
    /// semantics). Numerically a no-op here — parameters are unchanged —
    /// but it reproduces the strategy's communication volume exactly.
    fn try_regather_for_backward(&mut self) -> Result<(), RankLost> {
        if self.comm.is_some() {
            self.try_gather_units_overlapped(true)
        } else {
            for u in 0..self.layout.num_units() {
                let r = self.owned_range(u);
                exposed!(
                    self,
                    self.groups.shard.try_all_gather(&self.owned_params[r], &mut self.gathered)
                )?;
            }
            Ok(())
        }
    }

    /// Pipelined all-gathers on the comm thread: issue up to
    /// `prefetch_depth` units ahead, wait in unit order, unpack on this
    /// (compute) thread — the real-engine analogue of FSDP's forward /
    /// backward prefetch. With `discard` the gathered data is dropped
    /// (the backward re-gather: same traffic, no effect on `flat`).
    ///
    /// Waiting strictly in unit order keeps the cross-rank collective
    /// schedule identical to the blocking engine's, which is what makes
    /// the two bit-identical (`tests/overlap_equivalence.rs`).
    fn try_gather_units_overlapped(&mut self, discard: bool) -> Result<(), RankLost> {
        let depth = self.config.overlap.prefetch_depth.max(1);
        let n = self.layout.num_units();
        let first = depth.min(n);
        // fill the whole prefetch window in one batched submission (a
        // single release store publishes every job to the comm thread);
        // shards ride in as zero-copy views of the shared parameter store
        let mut pending: VecDeque<CollectiveHandle> = {
            let comm = self.comm.as_ref().expect("overlap engine requires the comm thread");
            let group = self.comm_shard.as_ref().expect("groups registered at construction");
            let ops: Vec<OwnedAsyncOp> = (0..first)
                .map(|u| {
                    OwnedAsyncOp::AllGatherShared(
                        Arc::clone(&self.owned_params),
                        self.owned_range(u),
                    )
                })
                .collect();
            comm.submit_batch_owned(group, ops).into()
        };
        let mut next = first;
        for u in 0..n {
            let handle = pending.pop_front().expect("a gather was issued for every unit");
            let gathered = match exposed!(self, handle.wait()) {
                Ok(v) => v,
                Err(CollectiveError::Lost(l)) => return Err(l),
                // all-gather carries no checksum layer; only rank loss fails it
                Err(CollectiveError::Corrupt(c)) => unreachable!("corrupt all-gather: {c}"),
            };
            if !discard {
                self.layout.write_gathered(&mut self.flat, u, &gathered);
            }
            if let Some(c) = &self.comm {
                c.recycle(gathered);
            }
            if next < n {
                pending.push_back(self.issue_gather(next));
                next += 1;
            }
        }
        Ok(())
    }

    fn issue_gather(&self, u: usize) -> CollectiveHandle {
        let comm = self.comm.as_ref().expect("overlap engine requires the comm thread");
        let group = self.comm_shard.as_ref().expect("groups registered at construction");
        comm.all_gather_async_shared(group, &self.owned_params, self.owned_range(u))
    }

    /// Blocking gradient reduction (the pre-overlap engine), strategy by
    /// strategy; fills `owned_grads`.
    fn try_reduce_grads_blocking(
        &mut self,
        corrupt: &mut Option<CorruptPayload>,
    ) -> Result<(), RankLost> {
        match self.config.strategy {
            ShardingStrategy::Ddp { bucket_bytes } => {
                // fixed-size buckets over the whole flat gradient
                let bucket_elems = (bucket_bytes / 4).max(1);
                let mut start = 0;
                while start < self.grads.len() {
                    let end = (start + bucket_elems).min(self.grads.len());
                    note(
                        corrupt,
                        exposed!(
                            self,
                            self.groups.replica.try_all_reduce(&mut self.grads[start..end])
                        ),
                    )?;
                    start = end;
                }
                self.owned_grads.extend_from_slice(&self.grads);
            }
            ShardingStrategy::NoShard => {
                // per-unit all-reduce (FSDP's NO_SHARD message sizing)
                for u in 0..self.layout.num_units() {
                    let r = self.layout.unit_ranges[u].clone();
                    note(
                        corrupt,
                        exposed!(self, self.groups.replica.try_all_reduce(&mut self.grads[r])),
                    )?;
                }
                self.owned_grads.extend_from_slice(&self.grads);
            }
            ShardingStrategy::FullShard
            | ShardingStrategy::ShardGradOp
            | ShardingStrategy::Hybrid { .. } => {
                for u in 0..self.layout.num_units() {
                    self.layout.padded_unit(&self.grads, u, &mut self.padded);
                    note(
                        corrupt,
                        exposed!(
                            self,
                            self.groups.shard.try_reduce_scatter(&self.padded, &mut self.rs_out)
                        ),
                    )?;
                    if self.groups.replica.size() > 1 {
                        note(
                            corrupt,
                            exposed!(self, self.groups.replica.try_all_reduce(&mut self.rs_out)),
                        )?;
                    }
                    self.owned_grads.extend_from_slice(&self.rs_out);
                }
            }
        }
        Ok(())
    }

    /// Overlapped gradient reduction: the comm thread keeps up to
    /// `prefetch_depth` reduces in flight (double-buffered reduce-scatter
    /// for the sharded strategies) while this thread consumes results in
    /// issue order — including running each unit's replica all-reduce
    /// while the *next* unit's reduce-scatter is already on the wire.
    /// Same collectives, same order, same groups as the blocking path, so
    /// the result is bit-identical.
    fn try_reduce_grads_overlapped(
        &mut self,
        corrupt: &mut Option<CorruptPayload>,
    ) -> Result<(), RankLost> {
        let depth = self.config.overlap.prefetch_depth.max(1);
        match self.config.strategy {
            ShardingStrategy::Ddp { bucket_bytes } => {
                let bucket_elems = (bucket_bytes / 4).max(1);
                let mut bounds = Vec::new();
                let mut start = 0;
                while start < self.grads.len() {
                    let end = (start + bucket_elems).min(self.grads.len());
                    bounds.push(start..end);
                    start = end;
                }
                self.pipelined_all_reduce_ranges(&bounds, depth, corrupt)?;
            }
            ShardingStrategy::NoShard => {
                let bounds = self.layout.unit_ranges.clone();
                self.pipelined_all_reduce_ranges(&bounds, depth, corrupt)?;
            }
            ShardingStrategy::FullShard
            | ShardingStrategy::ShardGradOp
            | ShardingStrategy::Hybrid { .. } => {
                let n = self.layout.num_units();
                let first = depth.min(n);
                // pad the first window straight into pooled buffers and
                // hand them over by value: one padding copy per unit
                // (same as the blocking engine's scratch) and one batched
                // publish; the executor recycles each buffer after its
                // reduce-scatter runs
                let mut pending: VecDeque<CollectiveHandle> = {
                    let comm =
                        self.comm.as_ref().expect("overlap engine requires the comm thread");
                    let group =
                        self.comm_shard.as_ref().expect("groups registered at construction");
                    let ops: Vec<OwnedAsyncOp> = (0..first)
                        .map(|u| {
                            let mut buf =
                                comm.pool().take(self.layout.shard_len(u) * self.layout.shard_n);
                            self.layout.padded_unit(&self.grads, u, &mut buf);
                            OwnedAsyncOp::ReduceScatter(buf)
                        })
                        .collect();
                    comm.submit_batch_owned(group, ops).into()
                };
                let mut next = first;
                for u in 0..n {
                    let handle =
                        pending.pop_front().expect("a reduce was issued for every unit");
                    let mut rs_out =
                        self.wait_reduced(handle, self.layout.shard_len(u), corrupt)?;
                    if self.groups.replica.size() > 1 {
                        note(
                            corrupt,
                            exposed!(self, self.groups.replica.try_all_reduce(&mut rs_out)),
                        )?;
                    }
                    self.owned_grads.extend_from_slice(&rs_out);
                    if let Some(c) = &self.comm {
                        c.recycle(rs_out);
                    }
                    if next < n {
                        pending.push_back(self.issue_reduce_scatter(next));
                        next += 1;
                    }
                }
            }
        }
        Ok(())
    }

    /// Pipeline all-reduces over `bounds` sub-ranges of `grads` (DDP
    /// buckets / NO_SHARD units) through the comm thread, waiting in issue
    /// order. `bounds` must cover `grads` contiguously in order: each
    /// result lands straight in `owned_grads` (skipping the blocking
    /// engine's write-back into `grads`, which nothing reads after the
    /// reduce — `pack_grads` refills it next step).
    fn pipelined_all_reduce_ranges(
        &mut self,
        bounds: &[std::ops::Range<usize>],
        depth: usize,
        corrupt: &mut Option<CorruptPayload>,
    ) -> Result<(), RankLost> {
        let first = depth.min(bounds.len());
        let mut pending: VecDeque<CollectiveHandle> = {
            let comm = self.comm.as_ref().expect("overlap engine requires the comm thread");
            let group = self.comm_replica.as_ref().expect("groups registered at construction");
            let ops: Vec<AsyncOp<'_>> =
                bounds[..first].iter().map(|r| AsyncOp::AllReduce(&self.grads[r.clone()])).collect();
            comm.submit_batch(group, &ops).into()
        };
        let mut next = first;
        for r in bounds {
            let handle = pending.pop_front().expect("a reduce was issued for every range");
            let reduced = self.wait_reduced(handle, r.len(), corrupt)?;
            self.owned_grads.extend_from_slice(&reduced);
            if let Some(c) = &self.comm {
                c.recycle(reduced);
            }
            if next < bounds.len() {
                pending.push_back(self.issue_all_reduce(&bounds[next]));
                next += 1;
            }
        }
        Ok(())
    }

    fn issue_all_reduce(&self, r: &std::ops::Range<usize>) -> CollectiveHandle {
        let comm = self.comm.as_ref().expect("overlap engine requires the comm thread");
        let group = self.comm_replica.as_ref().expect("groups registered at construction");
        comm.all_reduce_async(group, &self.grads[r.clone()])
    }

    fn issue_reduce_scatter(&mut self, u: usize) -> CollectiveHandle {
        let comm = self.comm.as_ref().expect("overlap engine requires the comm thread");
        let group = self.comm_shard.as_ref().expect("groups registered at construction");
        // pad into a pooled buffer and hand it over by value (copy parity
        // with the blocking engine's `self.padded` scratch)
        let mut buf = comm.pool().take(self.layout.shard_len(u) * self.layout.shard_n);
        self.layout.padded_unit(&self.grads, u, &mut buf);
        comm.reduce_scatter_async_owned(group, buf)
    }

    /// Wait for an in-flight reduce, charging the blocked time to the
    /// exposed-comm clock. A corrupt verdict is noted and substituted with
    /// a zero buffer of the expected length — deterministic on every rank
    /// of the affected group, and discarded anyway since a corrupt step
    /// applies no update — so the remaining collective schedule keeps
    /// running in lockstep, exactly like the blocking path's `note`
    /// contract.
    fn wait_reduced(
        &mut self,
        handle: CollectiveHandle,
        expect_len: usize,
        corrupt: &mut Option<CorruptPayload>,
    ) -> Result<Vec<f32>, RankLost> {
        match exposed!(self, handle.wait()) {
            Ok(v) => {
                debug_assert_eq!(v.len(), expect_len, "reduce output length mismatch");
                Ok(v)
            }
            Err(CollectiveError::Corrupt(c)) => {
                corrupt.get_or_insert(c);
                // the placeholder comes from the pool too — a corrupt step
                // must not reintroduce allocations on the comm path
                Ok(match &self.comm {
                    Some(comm) => comm.pool().take_zeroed(expect_len),
                    None => vec![0.0; expect_len],
                })
            }
            Err(CollectiveError::Lost(l)) => Err(l),
        }
    }

    /// Run one collective training step. `compute` must zero grads, run
    /// forward + backward on this rank's microbatch, and return the local
    /// loss; the engine handles everything else.
    ///
    /// # Panics
    /// Panics if a peer rank is lost or a reduce is corrupt mid-step (see
    /// [`FsdpRank::try_step`]).
    pub fn step(&mut self, lr: f32, compute: impl FnOnce(&mut M) -> f32) -> StepReport {
        self.try_step(lr, compute).expect("distributed step failed")
    }

    /// Fallible [`FsdpRank::step`]: a lost peer (poisoned group or barrier
    /// timeout) surfaces as [`StepError::Lost`]; a checksum-detected
    /// reduce corruption as [`StepError::Corrupt`]. On either error the
    /// model parameters and optimizer state are those of the last
    /// *completed* step — a failed step applies no partial update, so
    /// recovery can resume from the previous checkpoint (or, for
    /// `Corrupt`, roll back in-band) without unwinding half-applied state.
    ///
    /// On `Corrupt` the step still issues its **entire** collective
    /// schedule with garbage payloads before returning: in a hierarchy,
    /// a corruption seen only inside one shard group must not desync that
    /// group's ranks from the replica-group collectives their peers in
    /// other shard groups are still running.
    pub fn try_step(
        &mut self,
        lr: f32,
        compute: impl FnOnce(&mut M) -> f32,
    ) -> Result<StepReport, StepError> {
        let tel = self.telemetry.clone();
        let tid = self.groups.rank as u64;
        let phase = |name: &str| tel.as_deref().map(|t| t.phase(name, tid));
        if let Some(t) = tel.as_deref() {
            t.metrics.counter("fsdp.steps").inc(1);
        }
        let step_t0 = Instant::now();
        self.exposed_ns = 0;

        // 1. materialise parameters
        {
            let _p = phase("fsdp.gather");
            self.try_gather_params()?;
        }

        // 2. local compute
        let loss = {
            let _p = phase("fsdp.compute");
            compute(&mut self.model)
        };

        // 3. backward re-gather (strategy-dependent communication)
        if self.config.strategy.regathers_in_backward() && self.layout.shard_n > 1 {
            let _p = phase("fsdp.regather");
            self.try_regather_for_backward()?;
        }

        let _reduce_phase = phase("fsdp.reduce");
        // 4. reduce gradients — a corrupt verdict is noted, not
        // short-circuited (see `note`); the blocking and overlapped
        // engines follow the identical collective schedule
        self.model.pack_grads(&mut self.grads);
        self.owned_grads.clear();
        let mut corrupt: Option<CorruptPayload> = None;
        if self.comm.is_some() {
            self.try_reduce_grads_overlapped(&mut corrupt)?;
        } else {
            self.try_reduce_grads_blocking(&mut corrupt)?;
        }

        // 5. average over the data-parallel degree
        let inv = 1.0 / self.world as f32;
        for g in &mut self.owned_grads {
            *g *= inv;
        }

        // 6. global grad norm (sum of owned squares; shard group partitions
        // the parameters, replica members hold identical copies)
        let mut sumsq = [self
            .owned_grads
            .iter()
            .map(|g| (*g as f64) * (*g as f64))
            .sum::<f64>() as f32];
        if self.layout.shard_n > 1 {
            note(&mut corrupt, exposed!(self, self.groups.shard.try_all_reduce(&mut sumsq)))?;
        }
        let grad_norm = sumsq[0].sqrt();

        // exposed-comm telemetry: how much of the step's comm-bearing span
        // this rank actually spent blocked on collectives
        if let Some(t) = tel.as_deref() {
            let step_ns = step_t0.elapsed().as_nanos() as u64;
            t.metrics.histogram("overlap.exposed.ns").record(self.exposed_ns);
            t.metrics.histogram("overlap.step.ns").record(step_ns);
            if let Some(permille) = self.exposed_ns.saturating_mul(1000).checked_div(step_ns) {
                t.metrics.histogram("overlap.exposed.permille").record(permille);
            }
        }

        if let Some(c) = corrupt {
            // full collective schedule completed; parameters and optimizer
            // untouched — surface the agreed verdict for rollback-and-skip
            return Err(StepError::Corrupt(c));
        }

        if let Some(max) = self.grad_clip {
            if grad_norm > max && grad_norm > 0.0 {
                let scale = max / grad_norm;
                for g in &mut self.owned_grads {
                    *g *= scale;
                }
            }
        }

        drop(_reduce_phase);

        // 7. sharded optimizer step
        {
            let _p = phase("fsdp.optimizer");
            self.optimizer.step(
                Arc::make_mut(&mut self.owned_params).as_mut_slice(),
                &self.owned_grads,
                lr,
            );
        }

        Ok(StepReport { loss, grad_norm, lr })
    }

    /// Gather the final parameters into the model (collective call).
    ///
    /// # Panics
    /// Panics if a peer rank is lost (see [`FsdpRank::try_materialize`]).
    pub fn materialize(&mut self) {
        self.try_materialize().expect("materialize failed: peer rank lost");
    }

    /// Fallible [`FsdpRank::materialize`].
    pub fn try_materialize(&mut self) -> Result<(), RankLost> {
        self.try_gather_params()
    }

    /// Pack the (materialised) model parameters; call after
    /// [`FsdpRank::materialize`].
    pub fn packed_params(&mut self) -> Vec<f32> {
        let mut out = Vec::new();
        self.model.pack_values(&mut out);
        out
    }

    /// Snapshot this rank's durable state for a step checkpoint: the owned
    /// parameter shards and the sharded AdamW state. Exact f32 values — a
    /// restore from this snapshot resumes bit-identically.
    pub fn export_state(&self) -> (Vec<f32>, AdamWState) {
        ((*self.owned_params).clone(), self.optimizer.export_state())
    }

    /// Restore state captured by [`FsdpRank::export_state`] on an
    /// identically-configured rank (same model, strategy, world and shard
    /// position).
    ///
    /// # Panics
    /// Panics on a layout mismatch (the checkpoint belongs to a different
    /// configuration).
    pub fn restore_state(&mut self, params: &[f32], state: AdamWState) {
        assert_eq!(
            params.len(),
            self.owned_params.len(),
            "checkpoint shard length does not match this rank's layout"
        );
        Arc::make_mut(&mut self.owned_params).copy_from_slice(params);
        self.optimizer.load_state(state);
    }

    /// Poison every group this rank belongs to, unblocking all peers with
    /// `Err(RankLost)`. Called on the way down when this rank dies.
    pub fn poison_groups(&self) {
        self.groups.poison_all();
    }

    /// Synchronise on the world group (fallible).
    pub fn try_world_barrier(&self) -> Result<(), RankLost> {
        self.groups.world.try_barrier()
    }

    /// All-reduce a small scalar buffer across the **world** group —
    /// the trainer's per-step guard exchange (mean loss + corruption
    /// flag). Runs on the same checksummed path as the gradient reduces.
    pub fn try_world_all_reduce(&self, buf: &mut [f32]) -> Result<(), StepError> {
        match self.groups.world.try_all_reduce(buf) {
            Ok(()) => Ok(()),
            Err(CollectiveError::Lost(l)) => Err(StepError::Lost(l)),
            Err(CollectiveError::Corrupt(c)) => Err(StepError::Corrupt(c)),
        }
    }

    /// Arm a one-shot bit flip in this rank's next reduce contribution
    /// (see [`geofm_collectives::RankGroups::arm_bitflip`]) — the
    /// `BitFlipGrad` fault injection point.
    pub fn arm_bitflip(&self, bit: u32) {
        self.groups.arm_bitflip(bit);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::PrefetchPolicy;
    use geofm_collectives::{HierarchyLayout, ProcessGroups};
    use geofm_nn::{Linear, ParamVisitor};
    use geofm_tensor::{Tensor, TensorRng};

    /// A 2-unit toy model: two independent linear layers summed.
    struct Toy {
        a: Linear,
        b: Linear,
    }

    impl Module for Toy {
        fn visit_params(&mut self, f: &mut ParamVisitor) {
            self.a.visit_params(f);
            self.b.visit_params(f);
        }
    }

    impl Toy {
        fn new(seed: u64) -> (Self, Vec<usize>) {
            let mut rng = TensorRng::seed_from(seed);
            let mut a = Linear::new(3, 2, &mut rng, "a");
            let mut b = Linear::new(3, 2, &mut rng, "b");
            let units = vec![a.num_params(), b.num_params()];
            (Self { a, b }, units)
        }

        /// loss = mean over batch of ‖(A+B)x − y‖²
        fn compute(&mut self, x: &Tensor, y: &Tensor) -> f32 {
            self.zero_grad();
            let ya = self.a.forward(x);
            let yb = self.b.forward(x);
            let out = ya.add(&yb);
            let diff = out.sub(y);
            let n = diff.numel() as f32;
            let loss = diff.sum_sq() / n;
            let dy = diff.scale(2.0 / n);
            let _ = self.a.backward(&dy);
            let _ = self.b.backward(&dy);
            loss
        }
    }

    fn global_batch(step: usize) -> (Tensor, Tensor) {
        let mut rng = TensorRng::seed_from(1000 + step as u64);
        (rng.randn(&[8, 3], 1.0), rng.randn(&[8, 2], 1.0))
    }

    fn train(strategy: ShardingStrategy, world: usize, steps: usize) -> Vec<f32> {
        let shard_size = strategy.shard_group_size(world);
        let groups =
            ProcessGroups::hierarchy(HierarchyLayout { world, shard_size });
        let config = FsdpConfig {
            strategy,
            prefetch: PrefetchPolicy::BackwardPre,
            limit_all_gathers: true,
            overlap: crate::strategy::OverlapConfig::off(),
        };
        let results: Vec<std::sync::Mutex<Option<Vec<f32>>>> =
            (0..world).map(|_| std::sync::Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for g in groups {
                let results = &results;
                s.spawn(move || {
                    let rank = g.rank;
                    let (model, units) = Toy::new(42);
                    let mut fr = FsdpRank::new(model, &units, config, g, 0.0);
                    let per = 8 / world;
                    for step in 0..steps {
                        let (x, y) = global_batch(step);
                        let xl = x.rows(rank * per, (rank + 1) * per);
                        let yl = y.rows(rank * per, (rank + 1) * per);
                        fr.step(0.01, |m| m.compute(&xl, &yl));
                    }
                    fr.materialize();
                    *results[rank].lock().unwrap() = Some(fr.packed_params());
                });
            }
        });
        let out = results[0].lock().unwrap().take().unwrap();
        out
    }

    #[test]
    fn all_strategies_match_single_rank() {
        let baseline = train(ShardingStrategy::NoShard, 1, 4);
        for strategy in [
            ShardingStrategy::NoShard,
            ShardingStrategy::Ddp { bucket_bytes: 16 },
            ShardingStrategy::FullShard,
            ShardingStrategy::ShardGradOp,
            ShardingStrategy::Hybrid { shard_size: 2 },
            ShardingStrategy::Hybrid { shard_size: 1 },
            ShardingStrategy::Hybrid { shard_size: 4 },
        ] {
            let result = train(strategy, 4, 4);
            let max_diff = baseline
                .iter()
                .zip(&result)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f32, f32::max);
            assert!(
                max_diff < 1e-4,
                "{} diverges from single-rank: max diff {}",
                strategy.name(),
                max_diff
            );
        }
    }

    #[test]
    fn ranks_agree_after_materialize() {
        let world = 4;
        let strategy = ShardingStrategy::FullShard;
        let groups = ProcessGroups::hierarchy(HierarchyLayout { world, shard_size: world });
        let config = FsdpConfig::tuned(strategy);
        let results: Vec<std::sync::Mutex<Option<Vec<f32>>>> =
            (0..world).map(|_| std::sync::Mutex::new(None)).collect();
        std::thread::scope(|s| {
            for g in groups {
                let results = &results;
                s.spawn(move || {
                    let rank = g.rank;
                    let (model, units) = Toy::new(7);
                    let mut fr = FsdpRank::new(model, &units, config, g, 0.01);
                    for step in 0..3 {
                        let (x, y) = global_batch(step);
                        let xl = x.rows(rank * 2, rank * 2 + 2);
                        let yl = y.rows(rank * 2, rank * 2 + 2);
                        fr.step(0.01, |m| m.compute(&xl, &yl));
                    }
                    fr.materialize();
                    *results[rank].lock().unwrap() = Some(fr.packed_params());
                });
            }
        });
        let first = results[0].lock().unwrap().take().unwrap();
        for (r, slot) in results.iter().enumerate().skip(1) {
            let other = slot.lock().unwrap().take().unwrap();
            assert_eq!(first, other, "rank {} differs after materialize", r);
        }
    }

    #[test]
    fn full_shard_owns_fraction_of_params() {
        let world = 4;
        let groups = ProcessGroups::hierarchy(HierarchyLayout { world, shard_size: world });
        let config = FsdpConfig::tuned(ShardingStrategy::FullShard);
        std::thread::scope(|s| {
            for g in groups {
                s.spawn(move || {
                    let (mut model, units) = Toy::new(7);
                    let total = model.num_params();
                    let fr = FsdpRank::new(model, &units, config, g, 0.0);
                    // padded shares: each rank owns ~1/4 of the params
                    assert!(fr.owned_param_elems() <= total / 2);
                    assert!(fr.owned_param_elems() >= total / 8);
                });
            }
        });
    }

    #[test]
    fn traffic_profile_distinguishes_strategies() {
        // FULL_SHARD must move ~2× the all-gather bytes of SHARD_GRAD_OP
        // (backward re-gather), and NO_SHARD must move zero gather bytes.
        let volume = |strategy: ShardingStrategy| {
            let world = 4;
            let shard_size = strategy.shard_group_size(world);
            let groups = ProcessGroups::hierarchy(HierarchyLayout { world, shard_size });
            let traffic = groups[0].world.traffic();
            let config = FsdpConfig::tuned(strategy);
            std::thread::scope(|s| {
                for g in groups {
                    s.spawn(move || {
                        let rank = g.rank;
                        let (model, units) = Toy::new(3);
                        let mut fr = FsdpRank::new(model, &units, config, g, 0.0);
                        let (x, y) = global_batch(0);
                        let xl = x.rows(rank * 2, rank * 2 + 2);
                        let yl = y.rows(rank * 2, rank * 2 + 2);
                        fr.step(0.01, |m| m.compute(&xl, &yl));
                    });
                }
            });
            traffic.snapshot()
        };
        let full = volume(ShardingStrategy::FullShard);
        let sgo = volume(ShardingStrategy::ShardGradOp);
        let noshard = volume(ShardingStrategy::NoShard);
        assert!(full.all_gather > (sgo.all_gather as f64 * 1.8) as u64,
            "FULL_SHARD gathers {} vs SHARD_GRAD_OP {}", full.all_gather, sgo.all_gather);
        assert_eq!(noshard.all_gather, 0, "NO_SHARD must not all-gather");
        assert!(noshard.all_reduce > 0);
        // FULL_SHARD's only all-reduce is the scalar grad-norm exchange
        assert!(
            full.all_reduce < 64,
            "FULL_SHARD reduces grads via reduce-scatter, not all-reduce (got {})",
            full.all_reduce
        );
        assert!(full.reduce_scatter > 0 && sgo.reduce_scatter > 0);
    }

    #[test]
    fn hybrid_uses_both_reduction_kinds() {
        let world = 4;
        let strategy = ShardingStrategy::Hybrid { shard_size: 2 };
        let groups = ProcessGroups::hierarchy(HierarchyLayout { world, shard_size: 2 });
        let traffic = groups[0].world.traffic();
        let config = FsdpConfig::tuned(strategy);
        std::thread::scope(|s| {
            for g in groups {
                s.spawn(move || {
                    let rank = g.rank;
                    let (model, units) = Toy::new(3);
                    let mut fr = FsdpRank::new(model, &units, config, g, 0.0);
                    let (x, y) = global_batch(0);
                    let xl = x.rows(rank * 2, rank * 2 + 2);
                    let yl = y.rows(rank * 2, rank * 2 + 2);
                    fr.step(0.01, |m| m.compute(&xl, &yl));
                });
            }
        });
        let snap = traffic.snapshot();
        assert!(snap.all_gather > 0, "hybrid gathers in shard group");
        assert!(snap.reduce_scatter > 0, "hybrid reduce-scatters in shard group");
        assert!(snap.all_reduce > 0, "hybrid all-reduces across replicas");
    }

    #[test]
    fn ddp_bucket_count_scales_with_bucket_size() {
        let calls = |bucket_bytes: usize| {
            let world = 2;
            let groups = ProcessGroups::hierarchy(HierarchyLayout { world, shard_size: 1 });
            let traffic = groups[0].world.traffic();
            let config = FsdpConfig::tuned(ShardingStrategy::Ddp { bucket_bytes });
            std::thread::scope(|s| {
                for g in groups {
                    s.spawn(move || {
                        let rank = g.rank;
                        let (model, units) = Toy::new(3);
                        let mut fr = FsdpRank::new(model, &units, config, g, 0.0);
                        let (x, y) = global_batch(0);
                        let xl = x.rows(rank * 4, rank * 4 + 4);
                        let yl = y.rows(rank * 4, rank * 4 + 4);
                        fr.step(0.01, |m| m.compute(&xl, &yl));
                    });
                }
            });
            traffic.snapshot().calls
        };
        // Toy has 16 params → 64 bytes of grads; 8-byte buckets → many calls
        assert!(calls(8) > calls(1024), "smaller buckets must issue more collectives");
    }
}
