//! Deterministic shard ⇄ global conversions for elastic resharding.
//!
//! An elastic world change (shrink after permanent rank loss, grow on
//! spare rejoin) re-partitions every flat parameter and optimizer buffer
//! from one [`FlatLayout`] onto another with a different shard-group size.
//! The conversion goes through the **global unpadded layout** — the
//! world-size-independent representation GEOFMCK3 checkpoints store — so
//! the same two primitives serve live in-memory resharding and
//! checkpoint-based recovery:
//!
//! * [`shards_to_global`] — assemble per-rank owned shards back into the
//!   global flat buffer, dropping padding;
//! * [`global_to_shard`] — carve one rank's owned shards out of the global
//!   buffer under a (possibly different) layout, re-deriving padding.
//!
//! Both are pure element moves (copies, never arithmetic), so a
//! global → shard → global round trip is bit-identical for every value
//! including NaN payloads, and resharding state then training at the new
//! world is indistinguishable from having started at that world with the
//! same state — the invariant `tests/elastic_reshard.rs` enforces.
//!
//! Padding is always a *derived* quantity (`unit_len.div_ceil(shard_n)`),
//! never stored: shards produced by `global_to_shard` zero-fill past each
//! unit's real end exactly like [`FlatLayout::extract_shard`], and
//! `shards_to_global` discards those lanes, so padding bytes can never
//! leak between world sizes.

use crate::flat::FlatLayout;

/// Assemble the global unpadded flat buffer from every rank's owned
/// shards under `layout`.
///
/// `shards[r]` must be shard-rank `r`'s concatenation of its per-unit
/// owned segments — exactly what [`global_to_shard`] produces and what the
/// engine's `export_state` holds — with length
/// [`FlatLayout::total_shard_len`]. Padding lanes are dropped.
///
/// # Panics
/// Panics if `shards.len() != layout.shard_n` or any shard has the wrong
/// length — a caller-side layout mixup, never a data-dependent condition.
pub fn shards_to_global(layout: &FlatLayout, shards: &[Vec<f32>]) -> Vec<f32> {
    assert_eq!(shards.len(), layout.shard_n, "one shard per shard rank");
    for (r, s) in shards.iter().enumerate() {
        assert_eq!(s.len(), layout.total_shard_len(), "shard {r} has the wrong length");
    }
    let mut global = vec![0.0f32; layout.total_len()];
    let mut shard_off = 0usize;
    for (u, unit) in layout.unit_ranges.iter().enumerate() {
        let s = layout.shard_len(u);
        for (r, shard) in shards.iter().enumerate() {
            let seg = &shard[shard_off..shard_off + s];
            let start = r * s; // offset within the unit's padded buffer
            for (i, &v) in seg.iter().enumerate() {
                let idx = start + i;
                if idx < unit.len() {
                    global[unit.start + idx] = v;
                }
            }
        }
        shard_off += s;
    }
    global
}

/// Carve shard-rank `shard_rank`'s owned flat segments out of the global
/// unpadded buffer under `layout` (concatenated across units, zero-padded
/// past each unit's real end).
///
/// # Panics
/// Panics if `global.len() != layout.total_len()` or `shard_rank` is out
/// of range.
pub fn global_to_shard(layout: &FlatLayout, global: &[f32], shard_rank: usize) -> Vec<f32> {
    assert_eq!(global.len(), layout.total_len(), "global buffer length mismatch");
    let mut out = Vec::with_capacity(layout.total_shard_len());
    for u in 0..layout.num_units() {
        out.extend(layout.extract_shard(global, u, shard_rank));
    }
    out
}

/// Re-partition per-rank shards from one layout onto another in a single
/// call: assemble the global buffer under `from`, then carve `to_rank`'s
/// shards under `to`. The two layouts must describe the same model
/// (identical unpadded unit ranges).
///
/// # Panics
/// Panics if the layouts disagree on the unpadded unit ranges.
pub fn reshard(from: &FlatLayout, shards: &[Vec<f32>], to: &FlatLayout, to_rank: usize) -> Vec<f32> {
    assert_eq!(from.unit_ranges, to.unit_ranges, "layouts describe different models");
    global_to_shard(to, &shards_to_global(from, shards), to_rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    /// A global buffer where every element has a distinct bit pattern,
    /// including a NaN payload and a negative zero, so any lane swap or
    /// arithmetic touch-up shows as a bit difference.
    fn spiky_global(n: usize) -> Vec<f32> {
        (0..n)
            .map(|i| match i % 5 {
                0 => f32::from_bits(0x7fc0_0001 + i as u32), // NaN payloads
                1 => -0.0,
                _ => (i as f32 + 0.5) * if i % 2 == 0 { -1.0 } else { 1.0 },
            })
            .collect()
    }

    const UNITS: &[usize] = &[10, 7, 4];

    #[test]
    fn global_shard_global_is_bit_identical() {
        let global = spiky_global(21);
        for shard_n in 1..=6 {
            let l = FlatLayout::new(UNITS, shard_n);
            let shards: Vec<Vec<f32>> =
                (0..shard_n).map(|r| global_to_shard(&l, &global, r)).collect();
            let back = shards_to_global(&l, &shards);
            assert_eq!(bits(&global), bits(&back), "shard_n={shard_n}");
        }
    }

    #[test]
    fn reshard_across_group_sizes_is_bit_identical() {
        let global = spiky_global(21);
        for from_n in 1..=4 {
            for to_n in 1..=4 {
                let from = FlatLayout::new(UNITS, from_n);
                let to = FlatLayout::new(UNITS, to_n);
                let old: Vec<Vec<f32>> =
                    (0..from_n).map(|r| global_to_shard(&from, &global, r)).collect();
                let new: Vec<Vec<f32>> =
                    (0..to_n).map(|r| reshard(&from, &old, &to, r)).collect();
                // the new shards reassemble to the same global bits
                assert_eq!(
                    bits(&global),
                    bits(&shards_to_global(&to, &new)),
                    "reshard {from_n} -> {to_n}"
                );
                // and match a direct carve of the global under `to`
                for (r, s) in new.iter().enumerate() {
                    assert_eq!(bits(s), bits(&global_to_shard(&to, &global, r)), "rank {r}");
                }
            }
        }
    }

    #[test]
    fn shard_n_one_is_the_identity() {
        let global = spiky_global(21);
        let l = FlatLayout::new(UNITS, 1);
        let shard = global_to_shard(&l, &global, 0);
        assert_eq!(bits(&global), bits(&shard), "one rank owns everything unpadded");
        assert_eq!(bits(&global), bits(&shards_to_global(&l, &[shard])));
    }

    #[test]
    fn shards_match_engine_extraction() {
        // global_to_shard must agree with FlatLayout::extract_shard (what
        // the engine's export path concatenates), padding included
        let global = spiky_global(21);
        let l = FlatLayout::new(UNITS, 4);
        for r in 0..4 {
            let mut manual = Vec::new();
            for u in 0..l.num_units() {
                manual.extend(l.extract_shard(&global, u, r));
            }
            assert_eq!(bits(&manual), bits(&global_to_shard(&l, &global, r)));
        }
    }

    #[test]
    #[should_panic(expected = "wrong length")]
    fn rejects_wrong_shard_length() {
        let l = FlatLayout::new(UNITS, 2);
        let bad = vec![vec![0.0; 3], vec![0.0; 3]];
        let _ = shards_to_global(&l, &bad);
    }

    #[test]
    #[should_panic(expected = "different models")]
    fn rejects_layout_mismatch() {
        let a = FlatLayout::new(&[10, 7], 2);
        let b = FlatLayout::new(&[9, 8], 2);
        let shards: Vec<Vec<f32>> = (0..2).map(|_| vec![0.0; a.total_shard_len()]).collect();
        let _ = reshard(&a, &shards, &b, 0);
    }
}
