//! Property tests for the flat-parameter layout and the distributed engine.

use geofm_fsdp::FlatLayout;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Concatenating every rank's extracted shard reconstructs each unit
    /// (plus zero padding), for arbitrary unit sizes and shard counts.
    #[test]
    fn shards_partition_every_unit(
        unit_sizes in proptest::collection::vec(1usize..50, 1..6),
        shard_n in 1usize..7,
    ) {
        let layout = FlatLayout::new(&unit_sizes, shard_n);
        let total: usize = unit_sizes.iter().sum();
        let flat: Vec<f32> = (0..total).map(|i| i as f32 + 1.0).collect();
        for u in 0..layout.num_units() {
            let mut gathered = Vec::new();
            for r in 0..shard_n {
                gathered.extend(layout.extract_shard(&flat, u, r));
            }
            prop_assert_eq!(gathered.len(), layout.padded_lens[u]);
            let unit = &layout.unit_ranges[u];
            // real elements match, padding is zero
            prop_assert_eq!(&gathered[..unit.len()], &flat[unit.clone()]);
            prop_assert!(gathered[unit.len()..].iter().all(|&v| v == 0.0));
        }
    }

    /// Shard lengths are equal across ranks and sum to the padded length.
    #[test]
    fn shard_lengths_are_uniform(
        unit_sizes in proptest::collection::vec(1usize..100, 1..5),
        shard_n in 1usize..9,
    ) {
        let layout = FlatLayout::new(&unit_sizes, shard_n);
        for (u, &len) in unit_sizes.iter().enumerate() {
            prop_assert_eq!(layout.shard_len(u) * shard_n, layout.padded_lens[u]);
            prop_assert!(layout.padded_lens[u] >= len);
            prop_assert!(layout.padded_lens[u] - len < shard_n);
        }
        let owned: usize = (0..layout.num_units()).map(|u| layout.shard_len(u)).sum();
        prop_assert_eq!(owned, layout.total_shard_len());
    }

    /// write_gathered is the inverse of per-rank extraction.
    #[test]
    fn gather_write_roundtrip(
        unit_sizes in proptest::collection::vec(1usize..40, 1..4),
        shard_n in 1usize..5,
        seed in 0u64..500,
    ) {
        let layout = FlatLayout::new(&unit_sizes, shard_n);
        let total: usize = unit_sizes.iter().sum();
        let flat: Vec<f32> =
            (0..total).map(|i| ((seed as usize + i * 17) % 101) as f32).collect();
        let mut rebuilt = vec![-1.0f32; total];
        for u in 0..layout.num_units() {
            let mut gathered = Vec::new();
            for r in 0..shard_n {
                gathered.extend(layout.extract_shard(&flat, u, r));
            }
            layout.write_gathered(&mut rebuilt, u, &gathered);
        }
        prop_assert_eq!(rebuilt, flat);
    }
}
