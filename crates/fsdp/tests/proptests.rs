//! Property tests for the flat-parameter layout and the distributed engine.

use geofm_fsdp::strategy::ShardingStrategy;
use geofm_fsdp::FlatLayout;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Concatenating every rank's extracted shard reconstructs each unit
    /// (plus zero padding), for arbitrary unit sizes and shard counts.
    #[test]
    fn shards_partition_every_unit(
        unit_sizes in proptest::collection::vec(1usize..50, 1..6),
        shard_n in 1usize..7,
    ) {
        let layout = FlatLayout::new(&unit_sizes, shard_n);
        let total: usize = unit_sizes.iter().sum();
        let flat: Vec<f32> = (0..total).map(|i| i as f32 + 1.0).collect();
        for u in 0..layout.num_units() {
            let mut gathered = Vec::new();
            for r in 0..shard_n {
                gathered.extend(layout.extract_shard(&flat, u, r));
            }
            prop_assert_eq!(gathered.len(), layout.padded_lens[u]);
            let unit = &layout.unit_ranges[u];
            // real elements match, padding is zero
            prop_assert_eq!(&gathered[..unit.len()], &flat[unit.clone()]);
            prop_assert!(gathered[unit.len()..].iter().all(|&v| v == 0.0));
        }
    }

    /// Shard lengths are equal across ranks and sum to the padded length.
    #[test]
    fn shard_lengths_are_uniform(
        unit_sizes in proptest::collection::vec(1usize..100, 1..5),
        shard_n in 1usize..9,
    ) {
        let layout = FlatLayout::new(&unit_sizes, shard_n);
        for (u, &len) in unit_sizes.iter().enumerate() {
            prop_assert_eq!(layout.shard_len(u) * shard_n, layout.padded_lens[u]);
            prop_assert!(layout.padded_lens[u] >= len);
            prop_assert!(layout.padded_lens[u] - len < shard_n);
        }
        let owned: usize = (0..layout.num_units()).map(|u| layout.shard_len(u)).sum();
        prop_assert_eq!(owned, layout.total_shard_len());
    }

    /// write_gathered is the inverse of per-rank extraction.
    #[test]
    fn gather_write_roundtrip(
        unit_sizes in proptest::collection::vec(1usize..40, 1..4),
        shard_n in 1usize..5,
        seed in 0u64..500,
    ) {
        let layout = FlatLayout::new(&unit_sizes, shard_n);
        let total: usize = unit_sizes.iter().sum();
        let flat: Vec<f32> =
            (0..total).map(|i| ((seed as usize + i * 17) % 101) as f32).collect();
        let mut rebuilt = vec![-1.0f32; total];
        for u in 0..layout.num_units() {
            let mut gathered = Vec::new();
            for r in 0..shard_n {
                gathered.extend(layout.extract_shard(&flat, u, r));
            }
            layout.write_gathered(&mut rebuilt, u, &gathered);
        }
        prop_assert_eq!(rebuilt, flat);
    }
}

/// Exhaustive property over the elastic remap: for every hybrid group
/// size k and world in 1..=64, the remapped group size (a) divides the
/// new world, (b) never exceeds min(k, world) — a reshard must not grow
/// a group past the original memory budget — and (c) is the LARGEST
/// such divisor: no admissible group size between it and the cap also
/// divides the world. Non-hybrid strategies are world-size-agnostic and
/// must come back unchanged.
#[test]
fn remap_for_world_is_largest_admissible_divisor_for_all_worlds() {
    for k in 1usize..=64 {
        for world in 1usize..=64 {
            let remapped = ShardingStrategy::Hybrid { shard_size: k }.remap_for_world(world);
            let ShardingStrategy::Hybrid { shard_size: s } = remapped else {
                panic!("hybrid must remap to hybrid, got {remapped:?}");
            };
            let cap = k.min(world);
            assert!(
                world.is_multiple_of(s),
                "k={k} world={world}: remapped group {s} does not divide the world"
            );
            assert!(s <= cap, "k={k} world={world}: remapped group {s} exceeds cap {cap}");
            assert!(
                !((s + 1)..=cap).any(|bigger| world.is_multiple_of(bigger)),
                "k={k} world={world}: {s} is not the largest admissible divisor"
            );
        }
    }
    for world in 1usize..=64 {
        for strategy in [
            ShardingStrategy::NoShard,
            ShardingStrategy::ddp_default(),
            ShardingStrategy::FullShard,
            ShardingStrategy::ShardGradOp,
        ] {
            assert_eq!(
                strategy.remap_for_world(world),
                strategy,
                "non-hybrid strategies are world-size-agnostic"
            );
        }
    }
}

/// Negative control: remapping to an empty world is a documented panic,
/// not a silent degenerate strategy.
#[test]
#[should_panic(expected = "cannot remap to an empty world")]
fn remap_to_empty_world_panics_as_documented() {
    let _ = ShardingStrategy::Hybrid { shard_size: 4 }.remap_for_world(0);
}

/// Negative control: a hybrid group size that does not divide the world
/// is rejected loudly at group construction — the invariant
/// `remap_for_world` exists to maintain.
#[test]
#[should_panic(expected = "must divide")]
fn non_divisor_shard_group_panics_as_documented() {
    use geofm_collectives::{HierarchyLayout, ProcessGroups};
    let _ = ProcessGroups::hierarchy(HierarchyLayout { world: 6, shard_size: 4 });
}
