//! Scoped wall-clock timers feeding histograms.

use crate::registry::Histogram;
use std::sync::Arc;
use std::time::Instant;

/// Manual stopwatch: start, read, restart.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

impl Stopwatch {
    /// Start timing now.
    pub fn start() -> Self {
        Self { start: Instant::now() }
    }

    /// Elapsed nanoseconds since start (saturating at `u64::MAX`).
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed microseconds since start, fractional.
    pub fn elapsed_us(&self) -> f64 {
        self.start.elapsed().as_nanos() as f64 / 1_000.0
    }

    /// Restart and return the elapsed nanoseconds of the lap just ended.
    pub fn lap_ns(&mut self) -> u64 {
        let ns = self.elapsed_ns();
        self.start = Instant::now();
        ns
    }
}

/// RAII timer: records elapsed nanoseconds into a histogram on drop.
#[derive(Debug)]
pub struct PhaseTimer {
    hist: Arc<Histogram>,
    watch: Stopwatch,
}

impl PhaseTimer {
    /// Start timing into `hist`.
    pub fn new(hist: Arc<Histogram>) -> Self {
        Self { hist, watch: Stopwatch::start() }
    }

    /// Stop early and record (equivalent to dropping).
    pub fn stop(self) {}
}

impl Drop for PhaseTimer {
    fn drop(&mut self) {
        self.hist.record(self.watch.elapsed_ns());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_timer_records_on_drop() {
        let h = Arc::new(Histogram::default());
        {
            let _t = PhaseTimer::new(h.clone());
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert!(s.sum >= 1_000_000);
    }

    #[test]
    fn stopwatch_laps_advance() {
        let mut w = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let lap = w.lap_ns();
        assert!(lap >= 1_000_000);
        assert!(w.elapsed_ns() < lap);
    }
}
