//! Named metrics backed by plain atomics.
//!
//! The registry is a `RwLock<BTreeMap>` consulted only on first lookup of a
//! name; callers hold `Arc` handles to the underlying atomic cells, so steady
//! state recording is lock-free. Histograms use fixed log₂ buckets — bucket
//! `k ≥ 1` holds values in `[2^(k-1), 2^k - 1]`, bucket 0 holds zero — which
//! is exact enough for nanosecond phase timings and byte counts while keeping
//! `record()` to a handful of atomic adds.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// Number of log₂ histogram buckets (bucket 0 = zero, bucket 64 = top bit set).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Monotonic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add `n`.
    pub fn inc(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero.
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// Instantaneous value with a high-watermark.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicI64,
    max: AtomicI64,
}

impl Gauge {
    /// Set the current value (also advances the high-watermark).
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Adjust the current value by `delta` and return the new value.
    pub fn add(&self, delta: i64) -> i64 {
        let new = self.value.fetch_add(delta, Ordering::Relaxed) + delta;
        self.max.fetch_max(new, Ordering::Relaxed);
        new
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }

    /// Highest value ever set/reached.
    pub fn max(&self) -> i64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Reset value and watermark to zero.
    pub fn reset(&self) {
        self.value.store(0, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Log₂-bucketed histogram of `u64` samples.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index for a sample: 0 for zero, else `64 - leading_zeros(v)`, so
/// bucket `k` covers `[2^(k-1), 2^k - 1]`.
pub(crate) fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    /// Record one sample.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Consistent-enough point-in-time copy (individual loads are relaxed;
    /// callers quiesce writers before comparing snapshots exactly).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if count == 0 { 0 } else { self.min.load(Ordering::Relaxed) },
            max: self.max.load(Ordering::Relaxed),
        }
    }

    /// Clear all buckets and statistics.
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
        self.min.store(u64::MAX, Ordering::Relaxed);
        self.max.store(0, Ordering::Relaxed);
    }
}

/// Frozen copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow).
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean sample value (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Approximate percentile (`p` in 0..=100) from bucket upper bounds.
    /// Resolution is one power of two — adequate for order-of-magnitude
    /// latency summaries.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // upper bound of bucket i, clamped to the observed max
                let hi = if i == 0 { 0 } else if i >= 64 { u64::MAX } else { (1u64 << i) - 1 };
                return hi.min(self.max);
            }
        }
        self.max
    }
}

/// One registered metric.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// Thread-safe name → metric registry.
///
/// Lookup takes a read lock (write lock on first registration); the returned
/// `Arc` handles are lock-free to update, so hot paths should cache them.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    metrics: RwLock<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get or create the counter `name`.
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(m) = self.metrics.read().unwrap().get(name) {
            match m {
                Metric::Counter(c) => return c.clone(),
                _ => panic!("metric `{name}` is not a counter"),
            }
        }
        let mut map = self.metrics.write().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => c.clone(),
            _ => panic!("metric `{name}` is not a counter"),
        }
    }

    /// Get or create the gauge `name`.
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(m) = self.metrics.read().unwrap().get(name) {
            match m {
                Metric::Gauge(g) => return g.clone(),
                _ => panic!("metric `{name}` is not a gauge"),
            }
        }
        let mut map = self.metrics.write().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => g.clone(),
            _ => panic!("metric `{name}` is not a gauge"),
        }
    }

    /// Get or create the histogram `name`.
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(m) = self.metrics.read().unwrap().get(name) {
            match m {
                Metric::Histogram(h) => return h.clone(),
                _ => panic!("metric `{name}` is not a histogram"),
            }
        }
        let mut map = self.metrics.write().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::default())))
        {
            Metric::Histogram(h) => h.clone(),
            _ => panic!("metric `{name}` is not a histogram"),
        }
    }

    /// Freeze every registered metric into a comparable snapshot.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let map = self.metrics.read().unwrap();
        let mut snap = MetricsSnapshot::default();
        for (name, m) in map.iter() {
            match m {
                Metric::Counter(c) => {
                    snap.counters.insert(name.clone(), c.get());
                }
                Metric::Gauge(g) => {
                    snap.gauges
                        .insert(name.clone(), GaugeSnapshot { value: g.get(), max: g.max() });
                }
                Metric::Histogram(h) => {
                    snap.histograms.insert(name.clone(), h.snapshot());
                }
            }
        }
        snap
    }

    /// Zero every registered metric (names stay registered).
    pub fn reset(&self) {
        let map = self.metrics.read().unwrap();
        for m in map.values() {
            match m {
                Metric::Counter(c) => c.reset(),
                Metric::Gauge(g) => g.reset(),
                Metric::Histogram(h) => h.reset(),
            }
        }
    }
}

/// Frozen copy of a [`Gauge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeSnapshot {
    /// Value at snapshot time.
    pub value: i64,
    /// High-watermark since the last reset.
    pub max: i64,
}

/// Point-in-time copy of a whole [`MetricsRegistry`], comparable with `==`
/// (the determinism tests rely on this).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, GaugeSnapshot>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Counter value, or 0 if absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Render a compact `name,value` summary, one metric per line, suitable
    /// for appending to CSV artifacts. Histograms expand to
    /// `count`/`sum`/`mean`/`p50`/`max` rows; gauges to `value`/`max` rows.
    pub fn to_csv_rows(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.counters {
            out.push_str(&format!("{name},{v}\n"));
        }
        for (name, g) in &self.gauges {
            out.push_str(&format!("{name}.value,{}\n{name}.max,{}\n", g.value, g.max));
        }
        for (name, h) in &self.histograms {
            out.push_str(&format!(
                "{name}.count,{}\n{name}.sum,{}\n{name}.mean,{:.1}\n{name}.p50,{}\n{name}.max,{}\n",
                h.count,
                h.sum,
                h.mean(),
                h.percentile(50.0),
                h.max
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn registry_reuses_handles_and_snapshots() {
        let reg = MetricsRegistry::new();
        let c = reg.counter("bytes");
        reg.counter("bytes").inc(7);
        c.inc(3);
        let g = reg.gauge("depth");
        g.set(5);
        g.add(-2);
        reg.histogram("lat").record(100);

        let snap = reg.snapshot();
        assert_eq!(snap.counter("bytes"), 10);
        assert_eq!(snap.gauges["depth"], GaugeSnapshot { value: 3, max: 5 });
        assert_eq!(snap.histograms["lat"].count, 1);

        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("bytes"), 0);
        assert_eq!(snap.gauges["depth"], GaugeSnapshot { value: 0, max: 0 });
        assert_eq!(snap.histograms["lat"].count, 0);
        assert_eq!(snap.histograms["lat"].min, 0);
    }

    #[test]
    #[should_panic(expected = "is not a gauge")]
    fn kind_mismatch_panics() {
        let reg = MetricsRegistry::new();
        reg.counter("x");
        reg.gauge("x");
    }

    #[test]
    fn percentiles_track_buckets() {
        let h = Histogram::default();
        for v in [1u64, 2, 4, 8, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert_eq!(s.sum, 1015);
        // p100 falls in bucket 10 ([512, 1023]) whose upper bound is clamped
        // to the observed max.
        assert_eq!(s.percentile(100.0), 1000);
        // median sample (4) falls in bucket 3 = [4, 7]; the estimate is the
        // bucket's upper bound
        assert_eq!(s.percentile(50.0), 7);
    }

    #[test]
    fn concurrent_increments_are_lossless() {
        const THREADS: u64 = 8;
        const PER_THREAD: u64 = 1000;
        let reg = MetricsRegistry::new();
        let h = reg.histogram("contended.hist");
        let c = reg.counter("contended.count");
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let h = h.clone();
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        h.record(t * PER_THREAD + i);
                        c.inc(1);
                    }
                });
            }
        });
        let total = THREADS * PER_THREAD;
        assert_eq!(c.get(), total);
        let s = h.snapshot();
        assert_eq!(s.count, total);
        assert_eq!(s.buckets.iter().sum::<u64>(), total, "every sample lands in a bucket");
        // Each value 0..8000 recorded exactly once: sum is the arithmetic
        // series, min/max are the range endpoints.
        assert_eq!(s.sum, total * (total - 1) / 2);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, total - 1);
    }

    #[test]
    fn reset_clears_all_metric_state() {
        let reg = MetricsRegistry::new();
        reg.counter("c").inc(5);
        reg.gauge("g").set(9);
        reg.histogram("h").record(1234);
        reg.reset();
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), 0);
        assert_eq!(snap.gauges["g"].value, 0);
        let h = &snap.histograms["h"];
        assert_eq!(h.count, 0);
        assert_eq!(h.sum, 0);
        assert_eq!(h.buckets.iter().sum::<u64>(), 0);
        // Handles stay live across reset: recording resumes cleanly.
        reg.histogram("h").record(8);
        assert_eq!(reg.snapshot().histograms["h"].count, 1);
    }
}
