//! Span recorder with Chrome-trace-format JSON export.
//!
//! The [trace event format](https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU)
//! is the lingua franca of timeline viewers: `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) both load it directly. We emit only
//! complete events (`ph:"X"`, a name + start + duration on a `pid`/`tid`
//! track) and metadata events (`ph:"M"`, naming processes and threads),
//! which is all a step-phase or DES timeline needs.
//!
//! Timestamps are microseconds. Two clocks coexist: [`TraceRecorder::span`]
//! uses real time relative to the recorder's creation, while
//! [`TraceRecorder::complete`] takes caller-supplied timestamps so the
//! Frontier discrete-event simulator can export *virtual* time directly.
//! JSON is hand-rolled (this workspace builds offline, without serde).

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::Mutex;
use std::time::Instant;

/// One recorded event (complete span or metadata).
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Display name.
    pub name: String,
    /// Category (comma-separated in the format; we use one).
    pub cat: String,
    /// Phase: `"X"` complete, `"M"` metadata.
    pub ph: char,
    /// Start timestamp, microseconds.
    pub ts_us: f64,
    /// Duration, microseconds (complete events only).
    pub dur_us: f64,
    /// Process track.
    pub pid: u64,
    /// Thread track.
    pub tid: u64,
    /// Extra `args` rendered as a JSON object of strings.
    pub args: Vec<(String, String)>,
}

/// Thread-safe accumulator of trace events.
#[derive(Debug)]
pub struct TraceRecorder {
    epoch: Instant,
    events: Mutex<Vec<TraceEvent>>,
}

impl Default for TraceRecorder {
    fn default() -> Self {
        Self { epoch: Instant::now(), events: Mutex::new(Vec::new()) }
    }
}

/// RAII guard from [`TraceRecorder::span`]: records a complete event over
/// its own lifetime using the recorder's real clock.
#[derive(Debug)]
pub struct TraceSpan<'a> {
    recorder: &'a TraceRecorder,
    name: String,
    cat: String,
    pid: u64,
    tid: u64,
    start_us: f64,
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        let end = self.recorder.now_us();
        self.recorder.complete(
            &self.name,
            &self.cat,
            self.pid,
            self.tid,
            self.start_us,
            (end - self.start_us).max(0.0),
        );
    }
}

impl TraceRecorder {
    /// Empty recorder; the real-time clock origin is "now".
    pub fn new() -> Self {
        Self::default()
    }

    /// Microseconds since this recorder was created.
    pub fn now_us(&self) -> f64 {
        self.epoch.elapsed().as_nanos() as f64 / 1_000.0
    }

    /// Record a complete event with caller-supplied (possibly virtual)
    /// timestamps, in microseconds.
    pub fn complete(&self, name: &str, cat: &str, pid: u64, tid: u64, ts_us: f64, dur_us: f64) {
        self.complete_with_args(name, cat, pid, tid, ts_us, dur_us, &[]);
    }

    /// [`TraceRecorder::complete`] plus key/value `args` shown in the
    /// viewer's detail pane.
    #[allow(clippy::too_many_arguments)]
    pub fn complete_with_args(
        &self,
        name: &str,
        cat: &str,
        pid: u64,
        tid: u64,
        ts_us: f64,
        dur_us: f64,
        args: &[(&str, String)],
    ) {
        self.events.lock().unwrap().push(TraceEvent {
            name: name.to_string(),
            cat: cat.to_string(),
            ph: 'X',
            ts_us,
            dur_us,
            pid,
            tid,
            args: args.iter().map(|(k, v)| (k.to_string(), v.clone())).collect(),
        });
    }

    /// Start a real-clock span; the event is recorded when the guard drops.
    pub fn span(&self, name: &str, cat: &str, pid: u64, tid: u64) -> TraceSpan<'_> {
        TraceSpan {
            recorder: self,
            name: name.to_string(),
            cat: cat.to_string(),
            pid,
            tid,
            start_us: self.now_us(),
        }
    }

    /// Label a process track in the viewer.
    pub fn name_process(&self, pid: u64, name: &str) {
        self.metadata("process_name", pid, 0, name);
    }

    /// Label a thread track in the viewer.
    pub fn name_thread(&self, pid: u64, tid: u64, name: &str) {
        self.metadata("thread_name", pid, tid, name);
    }

    fn metadata(&self, kind: &str, pid: u64, tid: u64, name: &str) {
        self.events.lock().unwrap().push(TraceEvent {
            name: kind.to_string(),
            cat: "__metadata".to_string(),
            ph: 'M',
            ts_us: 0.0,
            dur_us: 0.0,
            pid,
            tid,
            args: vec![("name".to_string(), name.to_string())],
        });
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().unwrap().len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Discard all recorded events.
    pub fn clear(&self) {
        self.events.lock().unwrap().clear();
    }

    /// Serialise as a Chrome-trace JSON object.
    pub fn export_json(&self) -> String {
        let events = self.events.lock().unwrap();
        let mut out = String::with_capacity(64 + events.len() * 96);
        out.push_str("{\"traceEvents\":[");
        for (i, e) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"name\":{},\"cat\":{},\"ph\":\"{}\",\"ts\":{},\"pid\":{},\"tid\":{}",
                json_string(&e.name),
                json_string(&e.cat),
                e.ph,
                json_number(e.ts_us),
                e.pid,
                e.tid
            ));
            if e.ph == 'X' {
                out.push_str(&format!(",\"dur\":{}", json_number(e.dur_us)));
            }
            if !e.args.is_empty() {
                out.push_str(",\"args\":{");
                for (j, (k, v)) in e.args.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    out.push_str(&format!("{}:{}", json_string(k), json_string(v)));
                }
                out.push('}');
            }
            out.push('}');
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Write [`TraceRecorder::export_json`] to `path`, creating parent
    /// directories, and return the path written.
    pub fn write_json(&self, path: impl AsRef<Path>) -> std::io::Result<PathBuf> {
        let path = path.as_ref();
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.export_json().as_bytes())?;
        Ok(path.to_path_buf())
    }
}

/// Escape into a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format a non-negative µs value as a finite JSON number (JSON has no
/// NaN/Inf; timestamps print with nanosecond resolution).
fn json_number(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{:.3}", v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_spans_roundtrip_to_json() {
        let t = TraceRecorder::new();
        t.name_process(1, "frontier-sim");
        t.name_thread(1, 0, "compute");
        t.complete("fwd", "compute", 1, 0, 0.0, 1500.0);
        t.complete_with_args("ag", "comm", 1, 1, 100.0, 250.5, &[("bytes", "4096".into())]);
        let json = t.export_json();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"ph\":\"M\""));
        assert!(json.contains("\"dur\":1500"));
        assert!(json.contains("\"dur\":250.500"));
        assert!(json.contains("\"args\":{\"bytes\":\"4096\"}"));
        assert!(json.ends_with("\"displayTimeUnit\":\"ms\"}"));
        // balanced braces/brackets as a cheap well-formedness check
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn real_clock_span_records_on_drop() {
        let t = TraceRecorder::new();
        {
            let _s = t.span("work", "phase", 0, 7);
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(t.len(), 1);
        let json = t.export_json();
        assert!(json.contains("\"work\""));
        assert!(json.contains("\"tid\":7"));
    }

    #[test]
    fn write_json_creates_parents() {
        let dir = std::env::temp_dir().join("geofm-telemetry-test");
        let path = dir.join("nested").join("trace.json");
        let _ = std::fs::remove_dir_all(&dir);
        let t = TraceRecorder::new();
        t.complete("e", "c", 0, 0, 0.0, 1.0);
        let written = t.write_json(&path).unwrap();
        let body = std::fs::read_to_string(written).unwrap();
        assert!(body.contains("\"traceEvents\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }
}
