//! # geofm-telemetry
//!
//! The observability substrate for the `geofm` workspace: a lightweight,
//! thread-safe metrics registry plus a span recorder that exports
//! Chrome-trace-format JSON (loadable in `chrome://tracing` or
//! [Perfetto](https://ui.perfetto.dev)).
//!
//! The paper this repository reproduces is a systems study — its
//! deliverables are step-time breakdowns, communication shares, memory
//! watermarks and power traces — so every layer of the reproduction needs a
//! shared vocabulary for "how many bytes moved", "how long did this phase
//! take" and "what overlapped with what". This crate is that vocabulary:
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and log₂-bucketed
//!   [`Histogram`]s. Handles are `Arc`s over plain atomics, so the hot path
//!   (a collective recording its bytes, a rank timing a phase) never takes
//!   a lock.
//! * [`PhaseTimer`] / [`Stopwatch`] — scoped wall-clock timers feeding
//!   histograms in nanoseconds.
//! * [`TraceRecorder`] — accumulates spans with either real timestamps
//!   (threaded engine) or *virtual* timestamps (the Frontier discrete-event
//!   simulator), and serialises them as Chrome trace JSON with no external
//!   dependencies.
//! * [`Telemetry`] — the bundle the rest of the workspace passes around:
//!   one registry + one recorder.
//!
//! Consumers: `geofm-collectives` (per-kind communication bytes and call
//! counts), `geofm-fsdp` (per-rank gather/compute/reduce/optimizer phase
//! breakdown), `geofm-frontier` (DES timelines as trace spans),
//! `geofm-data` (loader queue depth and wait time), and the `geofm-repro`
//! binaries (`--trace-out` flag, metrics summaries in CSV artifacts).
//!
//! ## Fault & recovery vocabulary
//!
//! The resilient trainer (`geofm_fsdp::try_run_data_parallel`) and the
//! MTBF simulator emit a shared `fault.*` namespace:
//!
//! | metric | kind | meaning |
//! |--------|------|---------|
//! | `fault.injected_crash` | counter | fault-plan rank crashes fired |
//! | `fault.injected_ckpt_crash` | counter | torn checkpoint writes fired |
//! | `fault.straggler` | counter | slow-rank delays applied |
//! | `fault.injected_hang` | counter | rank hangs fired (adaptive-timeout path) |
//! | `fault.degraded_rank` | counter | steps run by a persistently slow rank |
//! | `fault.degraded_link` | counter | steps run over a degraded link |
//! | `fault.rank_panic` | counter | rank bodies that panicked |
//! | `fault.rank_lost` | counter | collectives that returned `RankLost` |
//! | `fault.checkpoints` | counter | step checkpoints durably written |
//! | `fault.restarts` | counter | restarts performed by the harness |
//! | `ckpt.write` | phase | atomic checkpoint write (histogram + span) |
//! | `fault.recovery` | phase | checkpoint load + state restore on restart |
//!
//! The gray-failure watchdog (`geofm_fsdp::HealthMonitor`) and the adaptive
//! collective timeout (`geofm_collectives::AdaptiveTimeout`) add a
//! `health.*` / `comm.*` layer on top:
//!
//! | metric | kind | meaning |
//! |--------|------|---------|
//! | `health.step.ns` | histogram | per-rank *local work* time per step (barrier waits excluded) |
//! | `health.straggler_flags` | counter | ranks newly flagged as persistent stragglers |
//! | `health.stragglers` | gauge | currently-flagged straggler count |
//! | `comm.collective.ns` | histogram | observed collective latencies feeding the timeout EWMA |
//!
//! The silent-data-corruption guard (checksummed collectives in
//! `geofm-collectives`, sentinel + rollback-and-skip in `geofm-fsdp`)
//! emits a `guard.*` namespace, with the injected faults it defends
//! against folded into `fault.*`:
//!
//! | metric | kind | meaning |
//! |--------|------|---------|
//! | `guard.trip` | counter | steps rejected by the guard (checksum or sentinel) |
//! | `guard.rollbacks` | counter | rollback-and-skip recoveries performed |
//! | `guard.rollback.steps` | histogram | steps re-executed per rollback (distance to the snapshot) |
//! | `guard.checksum.ns` | histogram | per-collective checksum verification time |
//! | `fault.injected_bitflip` | counter | gradient bit flips fired by the fault plan |
//! | `fault.injected_poison` | counter | poisoned (NaN) local losses fired by the fault plan |
//!
//! The comm/compute overlap engine (`geofm_fsdp::OverlapConfig` routing
//! collectives through `geofm_collectives::CommThread`) reports how much
//! communication it fails to hide — the threaded measurement of `figU`'s
//! y-axis:
//!
//! | metric | kind | meaning |
//! |--------|------|---------|
//! | `overlap.enabled` | gauge | 1 when the run used the comm-thread engine |
//! | `overlap.prefetch.depth` | gauge | configured in-flight collective budget |
//! | `overlap.step.ns` | histogram | wall time per training step |
//! | `overlap.exposed.ns` | histogram | per-step main-thread time blocked on collectives |
//! | `overlap.exposed.permille` | histogram | exposed-comm share of the step (‰) |
//!
//! The elastic resharding path (`geofm_fsdp::try_run_elastic` shrinking
//! onto survivors after a permanent rank loss and re-growing on spare
//! rejoin) emits a `reshard.*` namespace, with the injected departures
//! folded into `fault.*`:
//!
//! | metric | kind | meaning |
//! |--------|------|---------|
//! | `reshard.world` | gauge | current world size (high-water mark = launch world) |
//! | `reshard.shrinks` | counter | shrink-and-continue transitions performed |
//! | `reshard.grows` | counter | re-grow transitions on spare rejoin |
//! | `reshard.consensus.rounds` | counter | survivor consensus rounds completed |
//! | `reshard.consensus.ns` | histogram | wall time of each survivor consensus round |
//! | `reshard.drain.ns` | histogram | per-rank drain time quiescing in-flight collectives |
//! | `reshard.ckpt.write` | phase | elastic (GEOFMCK3, world-size-independent) checkpoint write |
//! | `fault.rank_leave` | counter | permanent rank departures fired by the fault plan |
//! | `fault.spare_rejoin` | counter | spare-rejoin events fired by the fault plan |

#![warn(missing_docs)]

mod registry;
mod timer;
mod trace;

pub use registry::{
    Counter, Gauge, GaugeSnapshot, Histogram, HistogramSnapshot, MetricsRegistry,
    MetricsSnapshot, HISTOGRAM_BUCKETS,
};
pub use timer::{PhaseTimer, Stopwatch};
pub use trace::{TraceEvent, TraceRecorder, TraceSpan};

use std::sync::Arc;

/// The bundle threaded through the stack: one metrics registry plus one
/// trace recorder sharing a time origin.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Named counters / gauges / histograms. `Arc`ed so facades in other
    /// crates (e.g. `geofm-collectives`' `TrafficCounter`) can share it.
    pub metrics: Arc<MetricsRegistry>,
    /// Span recorder for Chrome-trace export.
    pub trace: TraceRecorder,
}

impl Telemetry {
    /// Fresh registry and recorder.
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    /// Time a phase: returns a guard that, when dropped, records the
    /// elapsed nanoseconds into histogram `name` **and** emits a trace span
    /// on thread `tid`.
    pub fn phase(&self, name: &str, tid: u64) -> PhaseGuard<'_> {
        PhaseGuard {
            telemetry: self,
            name: name.to_string(),
            tid,
            start: self.trace.now_us(),
            clock: std::time::Instant::now(),
        }
    }
}

/// Guard returned by [`Telemetry::phase`].
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    telemetry: &'a Telemetry,
    name: String,
    tid: u64,
    start: f64,
    clock: std::time::Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let ns = self.clock.elapsed().as_nanos() as u64;
        self.telemetry.metrics.histogram(&format!("{}.ns", self.name)).record(ns);
        let dur_us = ns as f64 / 1_000.0;
        self.telemetry.trace.complete(&self.name, "phase", 0, self.tid, self.start, dur_us);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_guard_records_histogram_and_span() {
        let tel = Telemetry::new();
        {
            let _g = tel.phase("fsdp.compute", 3);
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        let snap = tel.metrics.snapshot();
        let h = &snap.histograms["fsdp.compute.ns"];
        assert_eq!(h.count, 1);
        assert!(h.sum >= 2_000_000, "recorded {} ns", h.sum);
        assert_eq!(tel.trace.len(), 1);
        let json = tel.trace.export_json();
        assert!(json.contains("\"fsdp.compute\""));
    }
}
