//! Scaled experiment configuration.

/// Scale knobs for the §V reproduction.
///
/// `scale = 1.0` is the default CPU budget (minutes, not days); the paper's
/// own scale would be `pretrain_images = 990_848`, `pretrain_epochs = 100`,
/// `global_batch = 2048`, probes at the exact Table II sizes.
#[derive(Debug, Clone)]
pub struct RecipeConfig {
    /// Pretraining corpus size (synthetic MillionAID samples).
    pub pretrain_images: usize,
    /// Pretraining epochs.
    pub pretrain_epochs: usize,
    /// Pretraining batch size.
    pub batch: usize,
    /// Effective peak learning rate for AdamW pretraining.
    pub pretrain_lr: f32,
    /// Probe epochs (paper: 100).
    pub probe_epochs: usize,
    /// Probe batch size (paper: 256 / 1024).
    pub probe_batch: usize,
    /// Effective peak learning rate for LARS probing.
    pub probe_lr: f32,
    /// Scale applied to Table II probe split sizes.
    pub probe_scale: f64,
    /// Cap on test-set size per dataset (keeps CPU feature extraction sane).
    pub max_test: usize,
    /// Master seed.
    pub seed: u64,
    /// Loader workers (paper: 4 per rank).
    pub loader_workers: usize,
}

impl Default for RecipeConfig {
    fn default() -> Self {
        Self {
            pretrain_images: 768,
            pretrain_epochs: 24,
            batch: 32,
            pretrain_lr: 2e-3,
            probe_epochs: 40,
            probe_batch: 64,
            probe_lr: 8.0,
            probe_scale: 0.15,
            max_test: 1000,
            seed: 42,
            loader_workers: 2,
        }
    }
}

impl RecipeConfig {
    /// Read the `GEOFM_SCALE` env var (default 1.0) and scale the compute
    /// budget accordingly (corpus size, epochs).
    pub fn from_env() -> Self {
        let scale: f64 = std::env::var("GEOFM_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0);
        let base = Self::default();
        Self {
            pretrain_images: ((base.pretrain_images as f64 * scale) as usize).max(64),
            pretrain_epochs: ((base.pretrain_epochs as f64 * scale.sqrt()) as usize).max(2),
            probe_epochs: ((base.probe_epochs as f64 * scale.sqrt()) as usize).max(5),
            probe_scale: (base.probe_scale * scale).clamp(0.02, 1.0),
            ..base
        }
    }

    /// Total pretraining optimizer steps.
    pub fn pretrain_steps(&self) -> usize {
        (self.pretrain_images / self.batch).max(1) * self.pretrain_epochs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_modest() {
        let c = RecipeConfig::default();
        assert!(c.pretrain_steps() > 100);
        assert!(c.pretrain_steps() < 10_000);
    }

    #[test]
    fn from_env_without_var_is_default_sized() {
        std::env::remove_var("GEOFM_SCALE");
        let c = RecipeConfig::from_env();
        assert_eq!(c.pretrain_images, RecipeConfig::default().pretrain_images);
    }
}
