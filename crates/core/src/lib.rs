//! # geofm-core
//!
//! The paper's end-to-end recipe (§V): MAE-pretrain a family of ViT
//! encoders on (synthetic) MillionAID, then linear-probe each one on the
//! four scene-classification benchmarks and report top-1/top-5 accuracy as
//! a function of model scale.
//!
//! Everything is scaled down proportionally from the paper's setup (the
//! hardware here is a single CPU core, not 64 Frontier nodes); the
//! hyper-parameter *structure* is preserved: AdamW + cosine + warmup +
//! 75 % masking for pretraining, frozen encoder + LARS + cosine for
//! probing. The scale knobs live in [`RecipeConfig`] and are env-tunable
//! (`GEOFM_SCALE`) so the reproduction can be run at different budgets.

pub mod checkpoint;
pub mod pipeline;
pub mod recipe;

pub use checkpoint::{pretrain_cached, pretrain_cached_in};
pub use pipeline::{pretrain, probe_dataset, DatasetProbe, PretrainOutcome, ProbePoint};
pub use recipe::RecipeConfig;

/// The workspace's single table-driven CRC32 (and its streaming form),
/// re-exported as the canonical integrity primitive. The implementation
/// lives in `geofm_resilience::ckpt` — the most dependency-light crate
/// that needs it — because `geofm-core` sits at the *top* of the workspace
/// graph and hosting it here would cycle; every consumer (checkpoint
/// footers here, collective payload checksums in `geofm-collectives`,
/// step checkpoints in `geofm-resilience`) shares this one table.
pub use geofm_resilience::{crc32, crc32_update};
