//! Encoder checkpointing: save/load pretrained weights so the experiment
//! binaries (fig5 / fig6 / table3) share one pretraining run.
//!
//! Format (version 1, little-endian):
//! `GEOFMCK1 | u64 key-hash | u64 n_params | n_params × f32 |
//!  u64 n_loss | n_loss × (u64 step, f32 loss) | u64 n_eval | …`

use crate::pipeline::PretrainOutcome;
use crate::recipe::RecipeConfig;
use geofm_nn::Module;
use geofm_tensor::TensorRng;
use geofm_vit::{VitConfig, VitModel};
use std::io::{Read, Write};
use std::path::PathBuf;

const MAGIC: &[u8; 8] = b"GEOFMCK1";

/// A stable hash of everything that determines a pretraining run.
fn run_key(cfg: &VitConfig, rc: &RecipeConfig) -> u64 {
    // FNV-1a over the significant fields
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    eat(cfg.name.as_bytes());
    for v in [cfg.width, cfg.depth, cfg.mlp, cfg.heads, cfg.patch, cfg.img, cfg.channels] {
        eat(&(v as u64).to_le_bytes());
    }
    for v in [rc.pretrain_images, rc.pretrain_epochs, rc.batch, rc.loader_workers] {
        eat(&(v as u64).to_le_bytes());
    }
    eat(&rc.pretrain_lr.to_le_bytes());
    eat(&rc.seed.to_le_bytes());
    h
}

/// Directory for checkpoints (under the results dir).
fn checkpoint_dir() -> PathBuf {
    let base = std::env::var("GEOFM_RESULTS").unwrap_or_else(|_| "results".into());
    let p = PathBuf::from(base).join("checkpoints");
    let _ = std::fs::create_dir_all(&p);
    p
}

fn checkpoint_path(cfg: &VitConfig, rc: &RecipeConfig) -> PathBuf {
    checkpoint_dir().join(format!("{}-{:016x}.ckpt", cfg.name, run_key(cfg, rc)))
}

/// Save a pretraining outcome.
pub fn save(cfg: &VitConfig, rc: &RecipeConfig, out: &mut PretrainOutcome) -> std::io::Result<()> {
    let path = checkpoint_path(cfg, rc);
    let mut flat = Vec::new();
    out.encoder.pack_values(&mut flat);
    let mut buf: Vec<u8> =
        Vec::with_capacity(16 + flat.len() * 4 + out.loss_curve.len() * 12);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&run_key(cfg, rc).to_le_bytes());
    buf.extend_from_slice(&(flat.len() as u64).to_le_bytes());
    for v in &flat {
        buf.extend_from_slice(&v.to_le_bytes());
    }
    let write_curve = |buf: &mut Vec<u8>, curve: &[(usize, f32)]| {
        buf.extend_from_slice(&(curve.len() as u64).to_le_bytes());
        for &(s, l) in curve {
            buf.extend_from_slice(&(s as u64).to_le_bytes());
            buf.extend_from_slice(&l.to_le_bytes());
        }
    };
    write_curve(&mut buf, &out.loss_curve);
    write_curve(&mut buf, &out.eval_curve);
    let mut f = std::fs::File::create(path)?;
    f.write_all(&buf)
}

/// Try to load a cached pretraining outcome matching `(cfg, rc)`.
pub fn load(cfg: &VitConfig, rc: &RecipeConfig) -> Option<PretrainOutcome> {
    let path = checkpoint_path(cfg, rc);
    let mut bytes = Vec::new();
    std::fs::File::open(path).ok()?.read_to_end(&mut bytes).ok()?;
    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Option<&[u8]> {
        if *off + n > bytes.len() {
            return None;
        }
        let s = &bytes[*off..*off + n];
        *off += n;
        Some(s)
    };
    if take(&mut off, 8)? != MAGIC {
        return None;
    }
    let key = u64::from_le_bytes(take(&mut off, 8)?.try_into().ok()?);
    if key != run_key(cfg, rc) {
        return None;
    }
    let n = u64::from_le_bytes(take(&mut off, 8)?.try_into().ok()?) as usize;
    let mut rng = TensorRng::seed_from(rc.seed);
    let mut encoder = VitModel::new(cfg, &mut rng);
    if encoder.num_params() != n {
        return None;
    }
    let mut flat = Vec::with_capacity(n);
    for _ in 0..n {
        flat.push(f32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?));
    }
    encoder.unpack_values(&flat);
    let read_curve = |off: &mut usize| -> Option<Vec<(usize, f32)>> {
        let len = u64::from_le_bytes(take(off, 8)?.try_into().ok()?) as usize;
        let mut curve = Vec::with_capacity(len);
        for _ in 0..len {
            let s = u64::from_le_bytes(take(off, 8)?.try_into().ok()?) as usize;
            let l = f32::from_le_bytes(take(off, 4)?.try_into().ok()?);
            curve.push((s, l));
        }
        Some(curve)
    };
    let loss_curve = read_curve(&mut off)?;
    let eval_curve = read_curve(&mut off)?;
    Some(PretrainOutcome { encoder, loss_curve, eval_curve })
}

/// [`crate::pipeline::pretrain`] with a disk cache: loads a checkpoint when
/// one exists for exactly this `(config, recipe)` pair, otherwise trains
/// and saves. Disable with `GEOFM_NO_CACHE=1`.
pub fn pretrain_cached(cfg: &VitConfig, rc: &RecipeConfig) -> PretrainOutcome {
    let cache_enabled = std::env::var("GEOFM_NO_CACHE").is_err();
    if cache_enabled {
        if let Some(out) = load(cfg, rc) {
            eprintln!("  (loaded cached checkpoint for {})", cfg.name);
            return out;
        }
    }
    let mut out = crate::pipeline::pretrain(cfg, rc);
    if cache_enabled {
        if let Err(e) = save(cfg, rc, &mut out) {
            eprintln!("  (checkpoint save failed: {})", e);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_rc() -> RecipeConfig {
        RecipeConfig {
            pretrain_images: 64,
            pretrain_epochs: 1,
            batch: 16,
            ..RecipeConfig::default()
        }
    }

    #[test]
    fn save_load_roundtrip() {
        std::env::set_var("GEOFM_RESULTS", "/tmp/geofm-ckpt-test");
        let cfg = &VitConfig::tiny_family()[0];
        let rc = quick_rc();
        let mut out = crate::pipeline::pretrain(cfg, &rc);
        save(cfg, &rc, &mut out).unwrap();
        let loaded = load(cfg, &rc).expect("checkpoint must load");
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut enc1 = out.encoder;
        let mut enc2 = loaded.encoder;
        enc1.pack_values(&mut a);
        enc2.pack_values(&mut b);
        assert_eq!(a, b);
        assert_eq!(out.loss_curve, loaded.loss_curve);
        assert_eq!(out.eval_curve, loaded.eval_curve);
        std::env::remove_var("GEOFM_RESULTS");
    }

    #[test]
    fn key_differs_when_recipe_changes() {
        let cfg = &VitConfig::tiny_family()[0];
        let rc1 = quick_rc();
        let mut rc2 = quick_rc();
        rc2.pretrain_epochs = 2;
        assert_ne!(run_key(cfg, &rc1), run_key(cfg, &rc2));
        let fam = VitConfig::tiny_family();
        assert_ne!(run_key(&fam[0], &rc1), run_key(&fam[1], &rc1));
    }

    #[test]
    fn load_missing_returns_none() {
        std::env::set_var("GEOFM_RESULTS", "/tmp/geofm-ckpt-none");
        let cfg = &VitConfig::tiny_family()[1];
        let mut rc = quick_rc();
        rc.seed = 987654; // never trained
        assert!(load(cfg, &rc).is_none());
        std::env::remove_var("GEOFM_RESULTS");
    }
}
