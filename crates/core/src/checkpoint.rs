//! Encoder checkpointing: save/load pretrained weights so the experiment
//! binaries (fig5 / fig6 / table3) share one pretraining run.
//!
//! Format (version 2, little-endian):
//!
//! ```text
//! GEOFMCK2 | u64 payload_len | payload | u32 crc32(payload)
//! payload := u64 key-hash | u64 n_params | n_params × f32
//!          | u64 n_loss | n_loss × (u64 step, f32 loss) | u64 n_eval | …
//! ```
//!
//! Writes are crash-safe (tmp sibling + fsync + rename via
//! [`geofm_resilience::atomic_write`]); loads validate the CRC32 footer and
//! reject any truncated, bit-rotted, or stale-format file by returning
//! `None` — a corrupt cache means retrain, never a poisoned experiment.
//!
//! All functions come in two forms: `*_in(dir, …)` taking the results
//! directory explicitly (tests, embedding callers), and an env-reading
//! wrapper using `GEOFM_RESULTS` (the repro binaries' convention).

use crate::pipeline::PretrainOutcome;
use crate::recipe::RecipeConfig;
use geofm_nn::Module;
use geofm_resilience::{atomic_write, crc32};
use geofm_tensor::TensorRng;
use geofm_vit::{VitConfig, VitModel};
use std::path::{Path, PathBuf};

const MAGIC: &[u8; 8] = b"GEOFMCK2";

/// A stable hash of everything that determines a pretraining run.
fn run_key(cfg: &VitConfig, rc: &RecipeConfig) -> u64 {
    // FNV-1a over the significant fields
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    eat(cfg.name.as_bytes());
    for v in [cfg.width, cfg.depth, cfg.mlp, cfg.heads, cfg.patch, cfg.img, cfg.channels] {
        eat(&(v as u64).to_le_bytes());
    }
    for v in [rc.pretrain_images, rc.pretrain_epochs, rc.batch, rc.loader_workers] {
        eat(&(v as u64).to_le_bytes());
    }
    eat(&rc.pretrain_lr.to_le_bytes());
    eat(&rc.seed.to_le_bytes());
    h
}

/// The default results directory: `$GEOFM_RESULTS`, or `results/`.
pub fn default_results_dir() -> PathBuf {
    PathBuf::from(std::env::var("GEOFM_RESULTS").unwrap_or_else(|_| "results".into()))
}

fn checkpoint_path_in(results_dir: &Path, cfg: &VitConfig, rc: &RecipeConfig) -> PathBuf {
    results_dir.join("checkpoints").join(format!("{}-{:016x}.ckpt", cfg.name, run_key(cfg, rc)))
}

/// Save a pretraining outcome under `results_dir` (crash-safe write).
pub fn save_in(
    results_dir: &Path,
    cfg: &VitConfig,
    rc: &RecipeConfig,
    out: &mut PretrainOutcome,
) -> std::io::Result<()> {
    let path = checkpoint_path_in(results_dir, cfg, rc);
    let mut flat = Vec::new();
    out.encoder.pack_values(&mut flat);
    let mut payload: Vec<u8> =
        Vec::with_capacity(16 + flat.len() * 4 + out.loss_curve.len() * 12);
    payload.extend_from_slice(&run_key(cfg, rc).to_le_bytes());
    payload.extend_from_slice(&(flat.len() as u64).to_le_bytes());
    for v in &flat {
        payload.extend_from_slice(&v.to_le_bytes());
    }
    let write_curve = |payload: &mut Vec<u8>, curve: &[(usize, f32)]| {
        payload.extend_from_slice(&(curve.len() as u64).to_le_bytes());
        for &(s, l) in curve {
            payload.extend_from_slice(&(s as u64).to_le_bytes());
            payload.extend_from_slice(&l.to_le_bytes());
        }
    };
    write_curve(&mut payload, &out.loss_curve);
    write_curve(&mut payload, &out.eval_curve);

    let mut buf = Vec::with_capacity(20 + payload.len());
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    buf.extend_from_slice(&payload);
    buf.extend_from_slice(&crc32(&payload).to_le_bytes());
    atomic_write(&path, &buf)
}

/// Save a pretraining outcome under the default results dir.
pub fn save(cfg: &VitConfig, rc: &RecipeConfig, out: &mut PretrainOutcome) -> std::io::Result<()> {
    save_in(&default_results_dir(), cfg, rc, out)
}

/// Try to load a cached pretraining outcome matching `(cfg, rc)` from
/// `results_dir`. Returns `None` for a missing, corrupt (CRC mismatch,
/// truncation, stale magic), or mismatched-key checkpoint — never panics.
pub fn load_in(results_dir: &Path, cfg: &VitConfig, rc: &RecipeConfig) -> Option<PretrainOutcome> {
    let path = checkpoint_path_in(results_dir, cfg, rc);
    let bytes = std::fs::read(path).ok()?;
    if bytes.len() < 20 || &bytes[..8] != MAGIC {
        return None;
    }
    let payload_len = u64::from_le_bytes(bytes[8..16].try_into().ok()?) as usize;
    if bytes.len() != 16 + payload_len + 4 {
        return None;
    }
    let payload = &bytes[16..16 + payload_len];
    let stored_crc = u32::from_le_bytes(bytes[16 + payload_len..].try_into().ok()?);
    if crc32(payload) != stored_crc {
        return None;
    }

    let mut off = 0usize;
    let take = |off: &mut usize, n: usize| -> Option<&[u8]> {
        let s = payload.get(*off..*off + n)?;
        *off += n;
        Some(s)
    };
    let key = u64::from_le_bytes(take(&mut off, 8)?.try_into().ok()?);
    if key != run_key(cfg, rc) {
        return None;
    }
    let n = u64::from_le_bytes(take(&mut off, 8)?.try_into().ok()?) as usize;
    let mut rng = TensorRng::seed_from(rc.seed);
    let mut encoder = VitModel::new(cfg, &mut rng);
    if encoder.num_params() != n {
        return None;
    }
    let mut flat = Vec::with_capacity(n);
    for _ in 0..n {
        flat.push(f32::from_le_bytes(take(&mut off, 4)?.try_into().ok()?));
    }
    encoder.unpack_values(&flat);
    let read_curve = |off: &mut usize| -> Option<Vec<(usize, f32)>> {
        let len = u64::from_le_bytes(take(off, 8)?.try_into().ok()?) as usize;
        let mut curve = Vec::with_capacity(len);
        for _ in 0..len {
            let s = u64::from_le_bytes(take(off, 8)?.try_into().ok()?) as usize;
            let l = f32::from_le_bytes(take(off, 4)?.try_into().ok()?);
            curve.push((s, l));
        }
        Some(curve)
    };
    let loss_curve = read_curve(&mut off)?;
    let eval_curve = read_curve(&mut off)?;
    if off != payload.len() {
        return None;
    }
    Some(PretrainOutcome { encoder, loss_curve, eval_curve })
}

/// Try to load a cached pretraining outcome from the default results dir.
pub fn load(cfg: &VitConfig, rc: &RecipeConfig) -> Option<PretrainOutcome> {
    load_in(&default_results_dir(), cfg, rc)
}

/// [`crate::pipeline::pretrain`] with a disk cache rooted at `results_dir`:
/// loads a checkpoint when one exists for exactly this `(config, recipe)`
/// pair, otherwise trains and saves.
pub fn pretrain_cached_in(
    results_dir: &Path,
    cfg: &VitConfig,
    rc: &RecipeConfig,
) -> PretrainOutcome {
    if let Some(out) = load_in(results_dir, cfg, rc) {
        eprintln!("  (loaded cached checkpoint for {})", cfg.name);
        return out;
    }
    let mut out = crate::pipeline::pretrain(cfg, rc);
    if let Err(e) = save_in(results_dir, cfg, rc, &mut out) {
        eprintln!("  (checkpoint save failed: {})", e);
    }
    out
}

/// [`pretrain_cached_in`] rooted at the default results dir. Disable the
/// cache entirely with `GEOFM_NO_CACHE=1`.
pub fn pretrain_cached(cfg: &VitConfig, rc: &RecipeConfig) -> PretrainOutcome {
    if std::env::var("GEOFM_NO_CACHE").is_ok() {
        return crate::pipeline::pretrain(cfg, rc);
    }
    pretrain_cached_in(&default_results_dir(), cfg, rc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_rc() -> RecipeConfig {
        RecipeConfig {
            pretrain_images: 64,
            pretrain_epochs: 1,
            batch: 16,
            ..RecipeConfig::default()
        }
    }

    fn test_dir(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("geofm-ckpt-{tag}-{}", std::process::id()))
    }

    #[test]
    fn save_load_roundtrip() {
        let dir = test_dir("roundtrip");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = &VitConfig::tiny_family()[0];
        let rc = quick_rc();
        let mut out = crate::pipeline::pretrain(cfg, &rc);
        save_in(&dir, cfg, &rc, &mut out).unwrap();
        let loaded = load_in(&dir, cfg, &rc).expect("checkpoint must load");
        let mut a = Vec::new();
        let mut b = Vec::new();
        let mut enc1 = out.encoder;
        let mut enc2 = loaded.encoder;
        enc1.pack_values(&mut a);
        enc2.pack_values(&mut b);
        assert_eq!(a, b);
        assert_eq!(out.loss_curve, loaded.loss_curve);
        assert_eq!(out.eval_curve, loaded.eval_curve);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn key_differs_when_recipe_changes() {
        let cfg = &VitConfig::tiny_family()[0];
        let rc1 = quick_rc();
        let mut rc2 = quick_rc();
        rc2.pretrain_epochs = 2;
        assert_ne!(run_key(cfg, &rc1), run_key(cfg, &rc2));
        let fam = VitConfig::tiny_family();
        assert_ne!(run_key(&fam[0], &rc1), run_key(&fam[1], &rc1));
    }

    #[test]
    fn load_missing_returns_none() {
        let dir = test_dir("missing");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = &VitConfig::tiny_family()[1];
        let mut rc = quick_rc();
        rc.seed = 987654; // never trained
        assert!(load_in(&dir, cfg, &rc).is_none());
    }

    #[test]
    fn corrupt_checkpoint_is_rejected_not_loaded() {
        let dir = test_dir("corrupt");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = &VitConfig::tiny_family()[0];
        let rc = quick_rc();
        let mut out = crate::pipeline::pretrain(cfg, &rc);
        save_in(&dir, cfg, &rc, &mut out).unwrap();
        let path = checkpoint_path_in(&dir, cfg, &rc);
        let good = std::fs::read(&path).unwrap();

        // flip one bit in the middle of the parameter block
        let mut bad = good.clone();
        let mid = bad.len() / 2;
        bad[mid] ^= 0x01;
        std::fs::write(&path, &bad).unwrap();
        assert!(load_in(&dir, cfg, &rc).is_none(), "bit flip must be rejected");

        // truncate
        std::fs::write(&path, &good[..good.len() - 7]).unwrap();
        assert!(load_in(&dir, cfg, &rc).is_none(), "truncation must be rejected");

        // stale (v1) magic
        let mut stale = good.clone();
        stale[..8].copy_from_slice(b"GEOFMCK1");
        std::fs::write(&path, &stale).unwrap();
        assert!(load_in(&dir, cfg, &rc).is_none(), "stale magic must be rejected");

        // restore and confirm the good bytes still load
        std::fs::write(&path, &good).unwrap();
        assert!(load_in(&dir, cfg, &rc).is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn no_tmp_residue_after_save() {
        let dir = test_dir("tmpres");
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = &VitConfig::tiny_family()[0];
        let rc = quick_rc();
        let mut out = crate::pipeline::pretrain(cfg, &rc);
        save_in(&dir, cfg, &rc, &mut out).unwrap();
        let leftovers: Vec<_> = std::fs::read_dir(dir.join("checkpoints"))
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.path().extension().is_some_and(|x| x == "tmp"))
            .collect();
        assert!(leftovers.is_empty(), "atomic save must not leave .tmp files");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
