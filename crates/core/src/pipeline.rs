//! The pretrain → probe pipeline.

use crate::recipe::RecipeConfig;
use geofm_data::{DataLoader, DatasetKind, SceneDataset};
use geofm_mae::{LinearProbe, MaeConfig, MaePretrainer};
use geofm_tensor::TensorRng;
use geofm_vit::{VitConfig, VitModel};
use std::sync::Arc;

/// Result of pretraining one encoder.
pub struct PretrainOutcome {
    /// The pretrained encoder (decoder is discarded, as in the paper).
    pub encoder: VitModel,
    /// `(step, loss)` samples of the training curve (Figure 5).
    pub loss_curve: Vec<(usize, f32)>,
    /// Fixed-mask evaluation losses at epoch boundaries.
    pub eval_curve: Vec<(usize, f32)>,
}

/// MAE-pretrain `cfg` on synthetic MillionAID under the recipe.
pub fn pretrain(cfg: &VitConfig, rc: &RecipeConfig) -> PretrainOutcome {
    let mae_cfg = MaeConfig::tiny(cfg.clone());
    let mut rng = TensorRng::seed_from(rc.seed);
    let mut trainer = MaePretrainer::new(&mae_cfg, rc.pretrain_lr, rc.pretrain_steps(), &mut rng);

    // fixed eval batch (disjoint offset) for comparable loss curves
    let eval = SceneDataset::generate(DatasetKind::MillionAid, rc.batch.max(16), cfg.img, cfg.channels, 9_000_000, 23);

    let mut data_rng = TensorRng::seed_from(rc.seed ^ 0xDA7A);
    let mut loss_curve = Vec::new();
    let mut eval_curve = Vec::new();
    let mut step = 0usize;
    for epoch in 0..rc.pretrain_epochs {
        // Each epoch streams a FRESH slice of the synthetic corpus: the
        // paper's 990 848-image MillionAID never repeats within our scaled
        // step budget, so neither do we (the generator is the dataset).
        let corpus = Arc::new(SceneDataset::generate(
            DatasetKind::MillionAid,
            rc.pretrain_images,
            cfg.img,
            cfg.channels,
            2_000_000 + (epoch * rc.pretrain_images) as u64,
            17,
        ));
        let loader = DataLoader::new(
            Arc::clone(&corpus),
            rc.batch,
            rc.loader_workers,
            rc.seed.wrapping_add(epoch as u64),
        );
        for (images, _labels) in loader {
            let stats = trainer.step(&images, &mut data_rng);
            if step.is_multiple_of(4) {
                loss_curve.push((step, stats.loss));
            }
            step += 1;
        }
        eval_curve.push((epoch, trainer.eval_loss(&eval.images, 4242)));
    }

    PretrainOutcome { encoder: trainer.model.encoder, loss_curve, eval_curve }
}

/// One point of the probe learning curve.
#[derive(Debug, Clone, Copy)]
pub struct ProbePoint {
    /// Probe epoch (0-based).
    pub epoch: usize,
    /// Training loss.
    pub train_loss: f32,
    /// Test top-1 accuracy in [0,1].
    pub top1: f32,
    /// Test top-5 accuracy in [0,1].
    pub top5: f32,
}

/// Full probe results for one (encoder, dataset) pair.
#[derive(Debug, Clone)]
pub struct DatasetProbe {
    /// The dataset.
    pub kind: DatasetKind,
    /// Accuracy per epoch (Figure 6 curves).
    pub curve: Vec<ProbePoint>,
    /// Final top-1 (Table III entry).
    pub final_top1: f32,
    /// Final top-5.
    pub final_top5: f32,
    /// Training samples used.
    pub train_n: usize,
    /// Test samples used.
    pub test_n: usize,
}

/// Linear-probe a frozen encoder on one benchmark (paper §V-C protocol).
pub fn probe_dataset(encoder: &VitModel, kind: DatasetKind, rc: &RecipeConfig) -> DatasetProbe {
    let cfg = &encoder.config;
    let (train, mut test) = SceneDataset::probe_split(kind, rc.probe_scale, cfg.img, cfg.channels);
    if test.len() > rc.max_test {
        let keep: Vec<usize> = (0..rc.max_test).collect();
        let (imgs, labels) = test.batch(&keep);
        test = SceneDataset { kind, images: imgs, labels, img: cfg.img, channels: cfg.channels };
    }

    // frozen mean+std pooled features, extracted once; standardized with
    // train-set stats (the MAE paper's affine-free BatchNorm before the
    // classifier)
    let mut train_feats = LinearProbe::extract_moment_features(encoder, &train.images, 64);
    let mut test_feats = LinearProbe::extract_moment_features(encoder, &test.images, 64);
    let (mean, std) = LinearProbe::feature_stats(&train_feats);
    LinearProbe::standardize(&mut train_feats, &mean, &std);
    LinearProbe::standardize(&mut test_feats, &mean, &std);

    let mut rng = TensorRng::seed_from(rc.seed ^ kind.salt());
    let mut probe =
        LinearProbe::new(2 * cfg.width, kind.classes(), rc.probe_lr, rc.probe_epochs, &mut rng);
    let mut curve = Vec::with_capacity(rc.probe_epochs);
    for epoch in 0..rc.probe_epochs {
        let train_loss = probe.train_epoch(&train_feats, &train.labels, rc.probe_batch, &mut rng);
        let (top1, top5) = probe.evaluate(&test_feats, &test.labels);
        curve.push(ProbePoint { epoch, train_loss, top1, top5 });
    }
    let last = curve.last().copied().unwrap_or(ProbePoint {
        epoch: 0,
        train_loss: f32::NAN,
        top1: 0.0,
        top5: 0.0,
    });
    DatasetProbe {
        kind,
        curve,
        final_top1: last.top1,
        final_top5: last.top5,
        train_n: train.len(),
        test_n: test.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_recipe() -> RecipeConfig {
        RecipeConfig {
            pretrain_images: 96,
            pretrain_epochs: 2,
            batch: 16,
            probe_epochs: 5,
            probe_scale: 0.03,
            max_test: 120,
            ..RecipeConfig::default()
        }
    }

    #[test]
    fn pipeline_runs_end_to_end_on_smallest_model() {
        let fam = VitConfig::tiny_family();
        let rc = quick_recipe();
        let out = pretrain(&fam[0], &rc);
        assert!(!out.loss_curve.is_empty());
        assert!(out.loss_curve.iter().all(|(_, l)| l.is_finite()));
        let probe = probe_dataset(&out.encoder, DatasetKind::Ucm, &rc);
        assert_eq!(probe.curve.len(), 5);
        assert!(probe.final_top1 >= 0.0 && probe.final_top1 <= 1.0);
        assert!(probe.final_top5 >= probe.final_top1);
        assert!(probe.test_n <= 120);
    }

    #[test]
    fn pretraining_loss_improves() {
        let fam = VitConfig::tiny_family();
        let mut rc = quick_recipe();
        rc.pretrain_images = 256;
        rc.pretrain_epochs = 4;
        let out = pretrain(&fam[0], &rc);
        let first = out.eval_curve.first().unwrap().1;
        let last = out.eval_curve.last().unwrap().1;
        assert!(last < first, "eval loss {} -> {}", first, last);
    }
}
