//! Deterministic random tensor initialisation.
//!
//! Everything in `geofm` that touches randomness is seeded through
//! [`TensorRng`], so whole training runs — including multi-rank FSDP runs —
//! are reproducible and distributed-equivalence tests can compare weights
//! numerically.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seedable RNG wrapper producing tensors.
///
/// Wraps [`StdRng`] (a cryptographically strong, platform-independent PRNG)
/// so that the same seed yields the same initialisation on any machine.
pub struct TensorRng {
    rng: StdRng,
}

impl TensorRng {
    /// Create an RNG from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        Self { rng: StdRng::seed_from_u64(seed) }
    }

    /// Derive an independent child RNG; used to give each model component or
    /// dataset shard its own stream while remaining a pure function of the
    /// parent seed.
    pub fn fork(&mut self, salt: u64) -> TensorRng {
        let s: u64 = self.rng.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        TensorRng::seed_from(s)
    }

    /// A uniform `f32` in `[0, 1)`.
    pub fn uniform(&mut self) -> f32 {
        self.rng.gen::<f32>()
    }

    /// A uniform `f32` in `[lo, hi)`.
    pub fn uniform_in(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.uniform()
    }

    /// A standard-normal sample (Box–Muller; two uniforms per call pair).
    pub fn normal(&mut self) -> f32 {
        // Box–Muller transform; avoids pulling in rand_distr.
        loop {
            let u1: f32 = self.rng.gen::<f32>();
            if u1 > f32::MIN_POSITIVE {
                let u2: f32 = self.rng.gen::<f32>();
                return (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos();
            }
        }
    }

    /// A uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        self.rng.gen_range(0..n)
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.rng.gen_range(0..=i);
            xs.swap(i, j);
        }
    }

    /// A random permutation of `0..n`.
    pub fn permutation(&mut self, n: usize) -> Vec<usize> {
        let mut p: Vec<usize> = (0..n).collect();
        self.shuffle(&mut p);
        p
    }

    /// Tensor of i.i.d. `N(0, std²)` samples.
    pub fn randn(&mut self, shape: &[usize], std: f32) -> Tensor {
        let numel: usize = shape.iter().product();
        let data: Vec<f32> = (0..numel).map(|_| self.normal() * std).collect();
        Tensor::from_vec(shape, data)
    }

    /// Tensor of i.i.d. `U[lo, hi)` samples.
    pub fn rand_uniform(&mut self, shape: &[usize], lo: f32, hi: f32) -> Tensor {
        let numel: usize = shape.iter().product();
        let data: Vec<f32> = (0..numel).map(|_| self.uniform_in(lo, hi)).collect();
        Tensor::from_vec(shape, data)
    }

    /// Truncated-normal init (resample beyond ±2σ), the ViT/MAE default.
    pub fn trunc_normal(&mut self, shape: &[usize], std: f32) -> Tensor {
        let numel: usize = shape.iter().product();
        let data: Vec<f32> = (0..numel)
            .map(|_| loop {
                let v = self.normal();
                if v.abs() <= 2.0 {
                    return v * std;
                }
            })
            .collect();
        Tensor::from_vec(shape, data)
    }

    /// Xavier/Glorot uniform init for a `[fan_out, fan_in]` weight matrix.
    pub fn xavier_uniform(&mut self, fan_out: usize, fan_in: usize) -> Tensor {
        let bound = (6.0 / (fan_in + fan_out) as f32).sqrt();
        self.rand_uniform(&[fan_out, fan_in], -bound, bound)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = TensorRng::seed_from(7);
        let mut b = TensorRng::seed_from(7);
        assert_eq!(a.randn(&[32], 1.0), b.randn(&[32], 1.0));
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = TensorRng::seed_from(7);
        let mut b = TensorRng::seed_from(8);
        assert_ne!(a.randn(&[32], 1.0), b.randn(&[32], 1.0));
    }

    #[test]
    fn fork_is_deterministic_and_decorrelated() {
        let mut p1 = TensorRng::seed_from(1);
        let mut p2 = TensorRng::seed_from(1);
        let mut c1 = p1.fork(42);
        let mut c2 = p2.fork(42);
        assert_eq!(c1.randn(&[8], 1.0), c2.randn(&[8], 1.0));
        let mut p3 = TensorRng::seed_from(1);
        let mut other = p3.fork(43);
        assert_ne!(c1.randn(&[8], 1.0), other.randn(&[8], 1.0));
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut rng = TensorRng::seed_from(99);
        let t = rng.randn(&[20_000], 1.0);
        let mean = t.mean();
        let var = t.sum_sq() / t.numel() as f32 - mean * mean;
        assert!(mean.abs() < 0.03, "mean {}", mean);
        assert!((var - 1.0).abs() < 0.05, "var {}", var);
    }

    #[test]
    fn trunc_normal_respects_bounds() {
        let mut rng = TensorRng::seed_from(3);
        let t = rng.trunc_normal(&[10_000], 0.5);
        assert!(t.data().iter().all(|v| v.abs() <= 1.0 + 1e-6));
    }

    #[test]
    fn uniform_in_respects_bounds() {
        let mut rng = TensorRng::seed_from(3);
        let t = rng.rand_uniform(&[10_000], -2.0, 3.0);
        assert!(t.data().iter().all(|&v| (-2.0..3.0).contains(&v)));
        assert!((t.mean() - 0.5).abs() < 0.1);
    }

    #[test]
    fn permutation_is_a_permutation() {
        let mut rng = TensorRng::seed_from(11);
        let p = rng.permutation(100);
        let mut seen = [false; 100];
        for &v in &p {
            assert!(!seen[v]);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn xavier_bound() {
        let mut rng = TensorRng::seed_from(5);
        let w = rng.xavier_uniform(64, 32);
        let bound = (6.0 / 96.0f32).sqrt();
        assert!(w.data().iter().all(|&v| v.abs() <= bound));
        assert_eq!(w.shape(), &[64, 32]);
    }
}
