//! Cache-blocked, rayon-parallel matrix multiplication kernels.
//!
//! All accumulating kernels use the `i-k-j` loop order — the innermost loop
//! is an AXPY over a contiguous row of the right operand, which
//! auto-vectorises well — wrapped in a BLIS-style blocking scheme:
//!
//! * rows are processed in panels of [`MC`] (the rayon work grain),
//! * the reduction dimension in panels of [`KC`],
//! * the output columns in panels of [`NC`],
//!
//! so the `KC × NC` panel of `B` stays resident in L1/L2 while every row of
//! the `MC` panel consumes it, instead of streaming all of `B` from memory
//! once per output row. Within a panel the k-loop is unrolled 4× so each
//! pass over the C row folds in four rank-1 updates (4× less C traffic).
//!
//! **Bit-exactness contract**: for every output element, the partial
//! products are accumulated in ascending-`k` order, one fused chain per
//! element, exactly like the textbook three-loop kernel. Blocking changes
//! *when* each product is added, never the per-element order — so results
//! are bit-identical to the naive kernel for all inputs, which
//! `tests/kernel_differential.rs` asserts. The one caveat is NaN encodings:
//! IEEE leaves a NaN result's sign/payload unspecified and LLVM exploits
//! that freedom differently across opt levels, so the differential tests
//! demand exact bits for every non-NaN lane and canonicalize NaNs. (This
//! is also why there is no zero-skip: `if a != 0` shortcuts would diverge
//! on `0 × ∞ = NaN` inputs and defeat vectorisation.)
//!
//! Three layout variants cover everything the backward passes need without
//! ever materialising a transpose:
//!
//! * [`matmul`]      — `C = A · B`       with `A: [m,k]`, `B: [k,n]`
//! * [`matmul_at_b`] — `C = Aᵀ · B`      with `A: [k,m]`, `B: [k,n]` (weight grads)
//! * [`matmul_a_bt`] — `C = A · Bᵀ`      with `A: [m,k]`, `B: [n,k]` (input grads)
//!
//! `matmul_a_bt` is dot-product shaped rather than AXPY shaped; it uses
//! eight independent accumulation chains per element and is therefore
//! compared against references with a tolerance, not bit equality.
//!
//! Batched versions ([`bmm`], [`bmm_at_b`], [`bmm_a_bt`]) operate on 3-D
//! tensors `[batch, ·, ·]`, parallelise over the batch dimension (the
//! natural grain for multi-head attention) and route each slab through the
//! same blocked cores, so the 2-D and batched kernels cannot drift apart.

use crate::Tensor;
use rayon::prelude::*;

/// Below this many output elements the kernels run sequentially; the rayon
/// fork/join overhead would dominate otherwise.
const PAR_THRESHOLD: usize = 32 * 32;

/// Output rows per parallel panel (the rayon work grain).
const MC: usize = 32;
/// Reduction-dimension panel: `KC × NC` of `B` is the cache-resident block.
const KC: usize = 64;
/// Output-column panel; `KC * NC * 4` bytes ≈ 32 KiB ≈ L1.
const NC: usize = 128;

#[inline]
fn axpy(acc: &mut [f32], x: f32, row: &[f32]) {
    debug_assert_eq!(acc.len(), row.len());
    for (a, &r) in acc.iter_mut().zip(row.iter()) {
        *a += x * r;
    }
}

/// Four rank-1 updates folded into one pass over the C row. Each element
/// still accumulates its four products in ascending-k order, so the result
/// is bit-identical to four sequential [`axpy`] calls.
#[inline]
fn axpy4(acc: &mut [f32], x: [f32; 4], r0: &[f32], r1: &[f32], r2: &[f32], r3: &[f32]) {
    let n = acc.len();
    let (r0, r1, r2, r3) = (&r0[..n], &r1[..n], &r2[..n], &r3[..n]);
    for j in 0..n {
        let mut v = acc[j];
        v += x[0] * r0[j];
        v += x[1] * r1[j];
        v += x[2] * r2[j];
        v += x[3] * r3[j];
        acc[j] = v;
    }
}

/// Blocked `C += A · B` over rows `i0..i0+rows` of `A`/`C` (the sequential
/// per-panel body shared by [`matmul_into`] and [`bmm`]).
fn matmul_panel(a: &[f32], b: &[f32], cpanel: &mut [f32], i0: usize, rows: usize, k: usize, n: usize) {
    let mut kc = 0;
    while kc < k {
        let kend = (kc + KC).min(k);
        let mut jc = 0;
        while jc < n {
            let jend = (jc + NC).min(n);
            for r in 0..rows {
                let arow = &a[(i0 + r) * k..(i0 + r + 1) * k];
                let crow = &mut cpanel[r * n + jc..r * n + jend];
                let mut kk = kc;
                while kk + 4 <= kend {
                    axpy4(
                        crow,
                        [arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]],
                        &b[kk * n + jc..kk * n + jend],
                        &b[(kk + 1) * n + jc..(kk + 1) * n + jend],
                        &b[(kk + 2) * n + jc..(kk + 2) * n + jend],
                        &b[(kk + 3) * n + jc..(kk + 3) * n + jend],
                    );
                    kk += 4;
                }
                while kk < kend {
                    axpy(crow, arow[kk], &b[kk * n + jc..kk * n + jend]);
                    kk += 1;
                }
            }
            jc = jend;
        }
        kc = kend;
    }
}

/// Blocked `C += Aᵀ · B` panel body (`A: [k,m]` accessed with stride `m`);
/// `[k, m, n]` are the problem dimensions.
fn matmul_at_b_panel(
    a: &[f32],
    b: &[f32],
    cpanel: &mut [f32],
    i0: usize,
    rows: usize,
    [k, m, n]: [usize; 3],
) {
    let mut kc = 0;
    while kc < k {
        let kend = (kc + KC).min(k);
        let mut jc = 0;
        while jc < n {
            let jend = (jc + NC).min(n);
            for r in 0..rows {
                let i = i0 + r;
                let crow = &mut cpanel[r * n + jc..r * n + jend];
                let mut kk = kc;
                while kk + 4 <= kend {
                    axpy4(
                        crow,
                        [a[kk * m + i], a[(kk + 1) * m + i], a[(kk + 2) * m + i], a[(kk + 3) * m + i]],
                        &b[kk * n + jc..kk * n + jend],
                        &b[(kk + 1) * n + jc..(kk + 1) * n + jend],
                        &b[(kk + 2) * n + jc..(kk + 2) * n + jend],
                        &b[(kk + 3) * n + jc..(kk + 3) * n + jend],
                    );
                    kk += 4;
                }
                while kk < kend {
                    axpy(crow, a[kk * m + i], &b[kk * n + jc..kk * n + jend]);
                    kk += 1;
                }
            }
            jc = jend;
        }
        kc = kend;
    }
}

/// Dot-product panel body for `C = A · Bᵀ` (rows of both operands are
/// contiguous; each output element is one [`dot`]).
fn matmul_a_bt_panel(a: &[f32], b: &[f32], cpanel: &mut [f32], i0: usize, rows: usize, k: usize, n: usize) {
    for r in 0..rows {
        let arow = &a[(i0 + r) * k..(i0 + r + 1) * k];
        let crow = &mut cpanel[r * n..(r + 1) * n];
        for (j, cv) in crow.iter_mut().enumerate() {
            *cv = dot(arow, &b[j * k..(j + 1) * k]);
        }
    }
}

/// `C = A · B` for `A: [m,k]`, `B: [k,n]`.
///
/// # Panics
/// Panics if the inner dimensions disagree or either operand is not 2-D.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul: A must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul: B must be 2-D");
    let (m, k) = (a.dim(0), a.dim(1));
    let (kb, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, kb, "matmul: inner dims {} vs {}", k, kb);
    let mut out = Tensor::zeros(&[m, n]);
    matmul_into(a.data(), b.data(), out.data_mut(), m, k, n);
    out
}

/// Raw-slice core of [`matmul`]; also used by the batched variant.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(MC * n).enumerate().for_each(|(ci, cpanel)| {
            matmul_panel(a, b, cpanel, ci * MC, cpanel.len() / n, k, n);
        });
    } else if n > 0 {
        matmul_panel(a, b, c, 0, m, k, n);
    }
}

/// `C = Aᵀ · B` for `A: [k,m]`, `B: [k,n]` → `C: [m,n]`.
///
/// This is the weight-gradient shape `dW = Xᵀ · dY` without materialising
/// `Xᵀ`. Parallelises over output-row panels; each output row `i`
/// accumulates `sum_k A[k,i] * B[k,:]`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_at_b: A must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_at_b: B must be 2-D");
    let (k, m) = (a.dim(0), a.dim(1));
    let (kb, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, kb, "matmul_at_b: inner dims {} vs {}", k, kb);
    let mut out = Tensor::zeros(&[m, n]);
    matmul_at_b_into(a.data(), b.data(), out.data_mut(), k, m, n);
    out
}

/// Raw-slice core of [`matmul_at_b`].
pub fn matmul_at_b_into(a: &[f32], b: &[f32], c: &mut [f32], k: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    if m * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(MC * n).enumerate().for_each(|(ci, cpanel)| {
            matmul_at_b_panel(a, b, cpanel, ci * MC, cpanel.len() / n, [k, m, n]);
        });
    } else if n > 0 {
        matmul_at_b_panel(a, b, c, 0, m, [k, m, n]);
    }
}

/// `C = A · Bᵀ` for `A: [m,k]`, `B: [n,k]` → `C: [m,n]`.
///
/// This is the input-gradient shape `dX = dY · Wᵀ` (with `W: [n,k]` stored
/// row-major as out×in) and also the attention-score shape `Q · Kᵀ`.
/// Each output element is a dot product of two contiguous rows.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_a_bt: A must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_a_bt: B must be 2-D");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, kb) = (b.dim(0), b.dim(1));
    assert_eq!(k, kb, "matmul_a_bt: inner dims {} vs {}", k, kb);
    let mut out = Tensor::zeros(&[m, n]);
    matmul_a_bt_into(a.data(), b.data(), out.data_mut(), m, k, n);
    out
}

#[inline]
fn dot(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    // Eight partial sums give the optimiser independent accumulation
    // chains wide enough for one f32x8 vector register.
    let mut s = [0.0f32; 8];
    let mut xc = x.chunks_exact(8);
    let mut yc = y.chunks_exact(8);
    for (xv, yv) in (&mut xc).zip(&mut yc) {
        for l in 0..8 {
            s[l] += xv[l] * yv[l];
        }
    }
    let mut tail = 0.0f32;
    for (xv, yv) in xc.remainder().iter().zip(yc.remainder().iter()) {
        tail += xv * yv;
    }
    (s[0] + s[4]) + (s[1] + s[5]) + (s[2] + s[6]) + (s[3] + s[7]) + tail
}

/// Raw-slice core of [`matmul_a_bt`].
pub fn matmul_a_bt_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    if m * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(MC * n).enumerate().for_each(|(ci, cpanel)| {
            matmul_a_bt_panel(a, b, cpanel, ci * MC, cpanel.len() / n, k, n);
        });
    } else if n > 0 {
        matmul_a_bt_panel(a, b, c, 0, m, k, n);
    }
}

fn batch_dims3(t: &Tensor, what: &str) -> (usize, usize, usize) {
    assert_eq!(t.ndim(), 3, "{what}: expected a 3-D tensor, got {:?}", t.shape());
    (t.dim(0), t.dim(1), t.dim(2))
}

/// Batched `C[b] = A[b] · B[b]` for `A: [bs,m,k]`, `B: [bs,k,n]`.
pub fn bmm(a: &Tensor, b: &Tensor) -> Tensor {
    let (bs, m, k) = batch_dims3(a, "bmm A");
    let (bs2, kb, n) = batch_dims3(b, "bmm B");
    assert_eq!(bs, bs2, "bmm: batch dims {} vs {}", bs, bs2);
    assert_eq!(k, kb, "bmm: inner dims {} vs {}", k, kb);
    let mut out = Tensor::zeros(&[bs, m, n]);
    out.data_mut()
        .par_chunks_mut(m * n)
        .enumerate()
        .for_each(|(bi, cslab)| {
            let aslab = &a.data()[bi * m * k..(bi + 1) * m * k];
            let bslab = &b.data()[bi * k * n..(bi + 1) * k * n];
            matmul_panel(aslab, bslab, cslab, 0, m, k, n);
        });
    out
}

/// Batched `C[b] = A[b] · B[b]ᵀ` for `A: [bs,m,k]`, `B: [bs,n,k]`.
pub fn bmm_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (bs, m, k) = batch_dims3(a, "bmm_a_bt A");
    let (bs2, n, kb) = batch_dims3(b, "bmm_a_bt B");
    assert_eq!(bs, bs2, "bmm_a_bt: batch dims {} vs {}", bs, bs2);
    assert_eq!(k, kb, "bmm_a_bt: inner dims {} vs {}", k, kb);
    let mut out = Tensor::zeros(&[bs, m, n]);
    out.data_mut()
        .par_chunks_mut(m * n)
        .enumerate()
        .for_each(|(bi, cslab)| {
            let aslab = &a.data()[bi * m * k..(bi + 1) * m * k];
            let bslab = &b.data()[bi * n * k..(bi + 1) * n * k];
            matmul_a_bt_panel(aslab, bslab, cslab, 0, m, k, n);
        });
    out
}

/// Batched `C[b] = A[b]ᵀ · B[b]` for `A: [bs,k,m]`, `B: [bs,k,n]`.
pub fn bmm_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (bs, k, m) = batch_dims3(a, "bmm_at_b A");
    let (bs2, kb, n) = batch_dims3(b, "bmm_at_b B");
    assert_eq!(bs, bs2, "bmm_at_b: batch dims {} vs {}", bs, bs2);
    assert_eq!(k, kb, "bmm_at_b: inner dims {} vs {}", k, kb);
    let mut out = Tensor::zeros(&[bs, m, n]);
    out.data_mut()
        .par_chunks_mut(m * n)
        .enumerate()
        .for_each(|(bi, cslab)| {
            let aslab = &a.data()[bi * k * m..(bi + 1) * k * m];
            let bslab = &b.data()[bi * k * n..(bi + 1) * k * n];
            matmul_at_b_panel(aslab, bslab, cslab, 0, m, [k, m, n]);
        });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dim(0), a.dim(1));
        let n = b.dim(1);
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                out.set(&[i, j], s);
            }
        }
        out
    }

    fn seq_tensor(shape: &[usize], offset: f32) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..n).map(|i| (i as f32) * 0.1 + offset).collect())
    }

    #[test]
    fn matmul_matches_naive_bitwise() {
        let a = seq_tensor(&[5, 7], 0.3);
        let b = seq_tensor(&[7, 4], -1.0);
        let fast = matmul(&a, &b);
        let slow = naive_matmul(&a, &b);
        assert_eq!(
            fast.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            slow.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "blocked kernel must preserve the per-element accumulation order"
        );
    }

    #[test]
    fn matmul_identity() {
        let a = seq_tensor(&[4, 4], 1.0);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.set(&[i, i], 1.0);
        }
        assert!(matmul(&a, &eye).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&eye, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn matmul_large_parallel_path() {
        // Big enough to cross PAR_THRESHOLD, KC and NC and exercise the
        // panel boundaries (non-multiples of every block size).
        let a = seq_tensor(&[67, 70], 0.01);
        let b = seq_tensor(&[70, 131], -0.02);
        let fast = matmul(&a, &b);
        let slow = naive_matmul(&a, &b);
        assert_eq!(
            fast.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            slow.data().iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn at_b_equals_explicit_transpose() {
        let a = seq_tensor(&[6, 3], 0.5);
        let b = seq_tensor(&[6, 5], -0.2);
        let fused = matmul_at_b(&a, &b);
        let explicit = matmul(&a.transpose2(), &b);
        assert!(fused.max_abs_diff(&explicit) < 1e-4);
    }

    #[test]
    fn a_bt_equals_explicit_transpose() {
        let a = seq_tensor(&[4, 6], 0.5);
        let b = seq_tensor(&[3, 6], -0.2);
        let fused = matmul_a_bt(&a, &b);
        let explicit = matmul(&a, &b.transpose2());
        assert!(fused.max_abs_diff(&explicit) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_rejects_mismatch() {
        let _ = matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = seq_tensor(&[3, 4, 5], 0.1);
        let b = seq_tensor(&[3, 5, 2], -0.3);
        let out = bmm(&a, &b);
        for bi in 0..3 {
            let asl = Tensor::from_vec(&[4, 5], a.data()[bi * 20..(bi + 1) * 20].to_vec());
            let bsl = Tensor::from_vec(&[5, 2], b.data()[bi * 10..(bi + 1) * 10].to_vec());
            let expect = matmul(&asl, &bsl);
            let got = Tensor::from_vec(&[4, 2], out.data()[bi * 8..(bi + 1) * 8].to_vec());
            assert!(got.max_abs_diff(&expect) < 1e-4);
        }
    }

    #[test]
    fn bmm_a_bt_matches_per_batch() {
        let a = seq_tensor(&[2, 3, 4], 0.2);
        let b = seq_tensor(&[2, 5, 4], -0.1);
        let out = bmm_a_bt(&a, &b);
        for bi in 0..2 {
            let asl = Tensor::from_vec(&[3, 4], a.data()[bi * 12..(bi + 1) * 12].to_vec());
            let bsl = Tensor::from_vec(&[5, 4], b.data()[bi * 20..(bi + 1) * 20].to_vec());
            let expect = matmul_a_bt(&asl, &bsl);
            let got = Tensor::from_vec(&[3, 5], out.data()[bi * 15..(bi + 1) * 15].to_vec());
            assert!(got.max_abs_diff(&expect) < 1e-4);
        }
    }

    #[test]
    fn bmm_at_b_matches_per_batch() {
        let a = seq_tensor(&[2, 4, 3], 0.2);
        let b = seq_tensor(&[2, 4, 5], -0.1);
        let out = bmm_at_b(&a, &b);
        for bi in 0..2 {
            let asl = Tensor::from_vec(&[4, 3], a.data()[bi * 12..(bi + 1) * 12].to_vec());
            let bsl = Tensor::from_vec(&[4, 5], b.data()[bi * 20..(bi + 1) * 20].to_vec());
            let expect = matmul_at_b(&asl, &bsl);
            let got = Tensor::from_vec(&[3, 5], out.data()[bi * 15..(bi + 1) * 15].to_vec());
            assert!(got.max_abs_diff(&expect) < 1e-4);
        }
    }

    #[test]
    fn dot_matches_reference() {
        let x: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let y: Vec<f32> = (0..13).map(|i| 1.0 - i as f32 * 0.25).collect();
        let reference: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - reference).abs() < 1e-4);
    }

    #[test]
    fn zero_times_infinity_is_nan_like_the_reference() {
        // the old kernels skipped a == 0.0 as an optimisation, silently
        // turning 0 × ∞ into 0 instead of NaN; the blocked kernels follow
        // IEEE 754 like the naive loop does
        let a = Tensor::from_vec(&[1, 2], vec![0.0, 1.0]);
        let b = Tensor::from_vec(&[2, 1], vec![f32::INFINITY, 1.0]);
        assert!(matmul(&a, &b).data()[0].is_nan());
    }
}
