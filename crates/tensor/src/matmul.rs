//! Blocked, rayon-parallel matrix multiplication kernels.
//!
//! All kernels use the `i-k-j` loop order: the innermost loop is an AXPY over
//! a contiguous row of the right operand, which auto-vectorises well. Work is
//! distributed over output rows with `par_chunks_mut`, so the kernels scale
//! with cores without any unsafe code.
//!
//! Three layout variants cover everything the backward passes need without
//! ever materialising a transpose:
//!
//! * [`matmul`]      — `C = A · B`       with `A: [m,k]`, `B: [k,n]`
//! * [`matmul_at_b`] — `C = Aᵀ · B`      with `A: [k,m]`, `B: [k,n]` (weight grads)
//! * [`matmul_a_bt`] — `C = A · Bᵀ`      with `A: [m,k]`, `B: [n,k]` (input grads)
//!
//! Batched versions ([`bmm`], [`bmm_at_b`], [`bmm_a_bt`]) operate on 3-D
//! tensors `[batch, ·, ·]` and parallelise over the batch dimension, which is
//! the natural grain for multi-head attention.

use crate::Tensor;
use rayon::prelude::*;

/// Below this many output elements the kernels run sequentially; the rayon
/// fork/join overhead would dominate otherwise.
const PAR_THRESHOLD: usize = 32 * 32;

#[inline]
fn axpy(acc: &mut [f32], x: f32, row: &[f32]) {
    debug_assert_eq!(acc.len(), row.len());
    for (a, &r) in acc.iter_mut().zip(row.iter()) {
        *a += x * r;
    }
}

/// `C = A · B` for `A: [m,k]`, `B: [k,n]`.
///
/// # Panics
/// Panics if the inner dimensions disagree or either operand is not 2-D.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul: A must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul: B must be 2-D");
    let (m, k) = (a.dim(0), a.dim(1));
    let (kb, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, kb, "matmul: inner dims {} vs {}", k, kb);
    let mut out = Tensor::zeros(&[m, n]);
    matmul_into(a.data(), b.data(), out.data_mut(), m, k, n);
    out
}

/// Raw-slice core of [`matmul`]; also used by the batched variant.
pub fn matmul_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let row_body = |i: usize, crow: &mut [f32]| {
        let arow = &a[i * k..(i + 1) * k];
        for (kk, &av) in arow.iter().enumerate() {
            if av != 0.0 {
                axpy(crow, av, &b[kk * n..(kk + 1) * n]);
            }
        }
    };
    if m * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| row_body(i, crow));
    } else {
        for (i, crow) in c.chunks_mut(n).enumerate() {
            row_body(i, crow);
        }
    }
}

/// `C = Aᵀ · B` for `A: [k,m]`, `B: [k,n]` → `C: [m,n]`.
///
/// This is the weight-gradient shape `dW = Xᵀ · dY` without materialising
/// `Xᵀ`. Parallelises over output rows; each output row `i` accumulates
/// `sum_k A[k,i] * B[k,:]`.
pub fn matmul_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_at_b: A must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_at_b: B must be 2-D");
    let (k, m) = (a.dim(0), a.dim(1));
    let (kb, n) = (b.dim(0), b.dim(1));
    assert_eq!(k, kb, "matmul_at_b: inner dims {} vs {}", k, kb);
    let mut out = Tensor::zeros(&[m, n]);
    matmul_at_b_into(a.data(), b.data(), out.data_mut(), k, m, n);
    out
}

/// Raw-slice core of [`matmul_at_b`].
pub fn matmul_at_b_into(a: &[f32], b: &[f32], c: &mut [f32], k: usize, m: usize, n: usize) {
    debug_assert_eq!(a.len(), k * m);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(c.len(), m * n);
    let row_body = |i: usize, crow: &mut [f32]| {
        for kk in 0..k {
            let av = a[kk * m + i];
            if av != 0.0 {
                axpy(crow, av, &b[kk * n..(kk + 1) * n]);
            }
        }
    };
    if m * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| row_body(i, crow));
    } else {
        for (i, crow) in c.chunks_mut(n).enumerate() {
            row_body(i, crow);
        }
    }
}

/// `C = A · Bᵀ` for `A: [m,k]`, `B: [n,k]` → `C: [m,n]`.
///
/// This is the input-gradient shape `dX = dY · Wᵀ` (with `W: [n,k]` stored
/// row-major as out×in) and also the attention-score shape `Q · Kᵀ`.
/// Each output element is a dot product of two contiguous rows.
pub fn matmul_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.ndim(), 2, "matmul_a_bt: A must be 2-D");
    assert_eq!(b.ndim(), 2, "matmul_a_bt: B must be 2-D");
    let (m, k) = (a.dim(0), a.dim(1));
    let (n, kb) = (b.dim(0), b.dim(1));
    assert_eq!(k, kb, "matmul_a_bt: inner dims {} vs {}", k, kb);
    let mut out = Tensor::zeros(&[m, n]);
    matmul_a_bt_into(a.data(), b.data(), out.data_mut(), m, k, n);
    out
}

#[inline]
fn dot(x: &[f32], y: &[f32]) -> f32 {
    debug_assert_eq!(x.len(), y.len());
    // Four partial sums give the optimiser independent accumulation chains.
    let mut s0 = 0.0f32;
    let mut s1 = 0.0f32;
    let mut s2 = 0.0f32;
    let mut s3 = 0.0f32;
    let mut xc = x.chunks_exact(4);
    let mut yc = y.chunks_exact(4);
    for (xv, yv) in (&mut xc).zip(&mut yc) {
        s0 += xv[0] * yv[0];
        s1 += xv[1] * yv[1];
        s2 += xv[2] * yv[2];
        s3 += xv[3] * yv[3];
    }
    let mut tail = 0.0f32;
    for (xv, yv) in xc.remainder().iter().zip(yc.remainder().iter()) {
        tail += xv * yv;
    }
    s0 + s1 + s2 + s3 + tail
}

/// Raw-slice core of [`matmul_a_bt`].
pub fn matmul_a_bt_into(a: &[f32], b: &[f32], c: &mut [f32], m: usize, k: usize, n: usize) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(c.len(), m * n);
    let row_body = |i: usize, crow: &mut [f32]| {
        let arow = &a[i * k..(i + 1) * k];
        for (j, cv) in crow.iter_mut().enumerate() {
            *cv = dot(arow, &b[j * k..(j + 1) * k]);
        }
    };
    if m * n >= PAR_THRESHOLD && m > 1 {
        c.par_chunks_mut(n).enumerate().for_each(|(i, crow)| row_body(i, crow));
    } else {
        for (i, crow) in c.chunks_mut(n).enumerate() {
            row_body(i, crow);
        }
    }
}

fn batch_dims3(t: &Tensor, what: &str) -> (usize, usize, usize) {
    assert_eq!(t.ndim(), 3, "{what}: expected a 3-D tensor, got {:?}", t.shape());
    (t.dim(0), t.dim(1), t.dim(2))
}

/// Batched `C[b] = A[b] · B[b]` for `A: [bs,m,k]`, `B: [bs,k,n]`.
pub fn bmm(a: &Tensor, b: &Tensor) -> Tensor {
    let (bs, m, k) = batch_dims3(a, "bmm A");
    let (bs2, kb, n) = batch_dims3(b, "bmm B");
    assert_eq!(bs, bs2, "bmm: batch dims {} vs {}", bs, bs2);
    assert_eq!(k, kb, "bmm: inner dims {} vs {}", k, kb);
    let mut out = Tensor::zeros(&[bs, m, n]);
    out.data_mut()
        .par_chunks_mut(m * n)
        .enumerate()
        .for_each(|(bi, cslab)| {
            let aslab = &a.data()[bi * m * k..(bi + 1) * m * k];
            let bslab = &b.data()[bi * k * n..(bi + 1) * k * n];
            for (i, crow) in cslab.chunks_mut(n).enumerate() {
                let arow = &aslab[i * k..(i + 1) * k];
                for (kk, &av) in arow.iter().enumerate() {
                    if av != 0.0 {
                        axpy(crow, av, &bslab[kk * n..(kk + 1) * n]);
                    }
                }
            }
        });
    out
}

/// Batched `C[b] = A[b] · B[b]ᵀ` for `A: [bs,m,k]`, `B: [bs,n,k]`.
pub fn bmm_a_bt(a: &Tensor, b: &Tensor) -> Tensor {
    let (bs, m, k) = batch_dims3(a, "bmm_a_bt A");
    let (bs2, n, kb) = batch_dims3(b, "bmm_a_bt B");
    assert_eq!(bs, bs2, "bmm_a_bt: batch dims {} vs {}", bs, bs2);
    assert_eq!(k, kb, "bmm_a_bt: inner dims {} vs {}", k, kb);
    let mut out = Tensor::zeros(&[bs, m, n]);
    out.data_mut()
        .par_chunks_mut(m * n)
        .enumerate()
        .for_each(|(bi, cslab)| {
            let aslab = &a.data()[bi * m * k..(bi + 1) * m * k];
            let bslab = &b.data()[bi * n * k..(bi + 1) * n * k];
            for (i, crow) in cslab.chunks_mut(n).enumerate() {
                let arow = &aslab[i * k..(i + 1) * k];
                for (j, cv) in crow.iter_mut().enumerate() {
                    *cv = dot(arow, &bslab[j * k..(j + 1) * k]);
                }
            }
        });
    out
}

/// Batched `C[b] = A[b]ᵀ · B[b]` for `A: [bs,k,m]`, `B: [bs,k,n]`.
pub fn bmm_at_b(a: &Tensor, b: &Tensor) -> Tensor {
    let (bs, k, m) = batch_dims3(a, "bmm_at_b A");
    let (bs2, kb, n) = batch_dims3(b, "bmm_at_b B");
    assert_eq!(bs, bs2, "bmm_at_b: batch dims {} vs {}", bs, bs2);
    assert_eq!(k, kb, "bmm_at_b: inner dims {} vs {}", k, kb);
    let mut out = Tensor::zeros(&[bs, m, n]);
    out.data_mut()
        .par_chunks_mut(m * n)
        .enumerate()
        .for_each(|(bi, cslab)| {
            let aslab = &a.data()[bi * k * m..(bi + 1) * k * m];
            let bslab = &b.data()[bi * k * n..(bi + 1) * k * n];
            for kk in 0..k {
                let brow = &bslab[kk * n..(kk + 1) * n];
                for i in 0..m {
                    let av = aslab[kk * m + i];
                    if av != 0.0 {
                        axpy(&mut cslab[i * n..(i + 1) * n], av, brow);
                    }
                }
            }
        });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dim(0), a.dim(1));
        let n = b.dim(1);
        let mut out = Tensor::zeros(&[m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.at(&[i, kk]) * b.at(&[kk, j]);
                }
                out.set(&[i, j], s);
            }
        }
        out
    }

    fn seq_tensor(shape: &[usize], offset: f32) -> Tensor {
        let n: usize = shape.iter().product();
        Tensor::from_vec(shape, (0..n).map(|i| (i as f32) * 0.1 + offset).collect())
    }

    #[test]
    fn matmul_matches_naive() {
        let a = seq_tensor(&[5, 7], 0.3);
        let b = seq_tensor(&[7, 4], -1.0);
        let fast = matmul(&a, &b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-4);
    }

    #[test]
    fn matmul_identity() {
        let a = seq_tensor(&[4, 4], 1.0);
        let mut eye = Tensor::zeros(&[4, 4]);
        for i in 0..4 {
            eye.set(&[i, i], 1.0);
        }
        assert!(matmul(&a, &eye).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&eye, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    fn matmul_large_parallel_path() {
        // Big enough to cross PAR_THRESHOLD and exercise the rayon path.
        let a = seq_tensor(&[64, 48], 0.01);
        let b = seq_tensor(&[48, 40], -0.02);
        let fast = matmul(&a, &b);
        let slow = naive_matmul(&a, &b);
        assert!(fast.max_abs_diff(&slow) < 1e-2);
    }

    #[test]
    fn at_b_equals_explicit_transpose() {
        let a = seq_tensor(&[6, 3], 0.5);
        let b = seq_tensor(&[6, 5], -0.2);
        let fused = matmul_at_b(&a, &b);
        let explicit = matmul(&a.transpose2(), &b);
        assert!(fused.max_abs_diff(&explicit) < 1e-4);
    }

    #[test]
    fn a_bt_equals_explicit_transpose() {
        let a = seq_tensor(&[4, 6], 0.5);
        let b = seq_tensor(&[3, 6], -0.2);
        let fused = matmul_a_bt(&a, &b);
        let explicit = matmul(&a, &b.transpose2());
        assert!(fused.max_abs_diff(&explicit) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "inner dims")]
    fn matmul_rejects_mismatch() {
        let _ = matmul(&Tensor::zeros(&[2, 3]), &Tensor::zeros(&[4, 2]));
    }

    #[test]
    fn bmm_matches_per_batch_matmul() {
        let a = seq_tensor(&[3, 4, 5], 0.1);
        let b = seq_tensor(&[3, 5, 2], -0.3);
        let out = bmm(&a, &b);
        for bi in 0..3 {
            let asl = Tensor::from_vec(&[4, 5], a.data()[bi * 20..(bi + 1) * 20].to_vec());
            let bsl = Tensor::from_vec(&[5, 2], b.data()[bi * 10..(bi + 1) * 10].to_vec());
            let expect = matmul(&asl, &bsl);
            let got = Tensor::from_vec(&[4, 2], out.data()[bi * 8..(bi + 1) * 8].to_vec());
            assert!(got.max_abs_diff(&expect) < 1e-4);
        }
    }

    #[test]
    fn bmm_a_bt_matches_per_batch() {
        let a = seq_tensor(&[2, 3, 4], 0.2);
        let b = seq_tensor(&[2, 5, 4], -0.1);
        let out = bmm_a_bt(&a, &b);
        for bi in 0..2 {
            let asl = Tensor::from_vec(&[3, 4], a.data()[bi * 12..(bi + 1) * 12].to_vec());
            let bsl = Tensor::from_vec(&[5, 4], b.data()[bi * 20..(bi + 1) * 20].to_vec());
            let expect = matmul_a_bt(&asl, &bsl);
            let got = Tensor::from_vec(&[3, 5], out.data()[bi * 15..(bi + 1) * 15].to_vec());
            assert!(got.max_abs_diff(&expect) < 1e-4);
        }
    }

    #[test]
    fn bmm_at_b_matches_per_batch() {
        let a = seq_tensor(&[2, 4, 3], 0.2);
        let b = seq_tensor(&[2, 4, 5], -0.1);
        let out = bmm_at_b(&a, &b);
        for bi in 0..2 {
            let asl = Tensor::from_vec(&[4, 3], a.data()[bi * 12..(bi + 1) * 12].to_vec());
            let bsl = Tensor::from_vec(&[4, 5], b.data()[bi * 20..(bi + 1) * 20].to_vec());
            let expect = matmul_at_b(&asl, &bsl);
            let got = Tensor::from_vec(&[3, 5], out.data()[bi * 15..(bi + 1) * 15].to_vec());
            assert!(got.max_abs_diff(&expect) < 1e-4);
        }
    }

    #[test]
    fn dot_matches_reference() {
        let x: Vec<f32> = (0..13).map(|i| i as f32 * 0.5).collect();
        let y: Vec<f32> = (0..13).map(|i| 1.0 - i as f32 * 0.25).collect();
        let reference: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - reference).abs() < 1e-4);
    }
}
