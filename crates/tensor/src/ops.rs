//! Elementwise operations, reductions, softmax, and indexing helpers.
//!
//! Everything here is either in place (`*_inplace`, `*_assign`) or allocates
//! a fresh output tensor; the naming makes which one obvious. Kernels large
//! enough to benefit are parallelised with rayon.

use crate::Tensor;
use rayon::prelude::*;

/// Minimum number of elements before elementwise kernels go parallel.
const PAR_ELEMS: usize = 16 * 1024;

impl Tensor {
    /// Elementwise sum, allocating the result.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference, allocating the result.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product, allocating the result.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) {
        self.zip_assign(other, |a, b| *a += b);
    }

    /// In-place `self -= other`.
    pub fn sub_assign(&mut self, other: &Tensor) {
        self.zip_assign(other, |a, b| *a -= b);
    }

    /// In-place `self *= other` (elementwise).
    pub fn mul_assign(&mut self, other: &Tensor) {
        self.zip_assign(other, |a, b| *a *= b);
    }

    /// In-place `self += alpha * other` (AXPY).
    pub fn axpy_assign(&mut self, alpha: f32, other: &Tensor) {
        self.zip_assign(other, |a, b| *a += alpha * b);
    }

    /// In-place scalar multiply.
    pub fn scale_assign(&mut self, alpha: f32) {
        if self.numel() >= PAR_ELEMS {
            self.data_mut().par_iter_mut().for_each(|v| *v *= alpha);
        } else {
            for v in self.data_mut() {
                *v *= alpha;
            }
        }
    }

    /// Scalar multiply, allocating the result.
    pub fn scale(&self, alpha: f32) -> Tensor {
        let mut out = self.clone();
        out.scale_assign(alpha);
        out
    }

    /// Apply `f` to every element, allocating the result.
    pub fn map(&self, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
        let mut out = self.clone();
        out.map_inplace(f);
        out
    }

    /// Apply `f` to every element in place.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32 + Sync) {
        if self.numel() >= PAR_ELEMS {
            self.data_mut().par_iter_mut().for_each(|v| *v = f(*v));
        } else {
            for v in self.data_mut() {
                *v = f(*v);
            }
        }
    }

    fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Tensor {
        assert_eq!(self.shape(), other.shape(), "elementwise op: shape mismatch");
        let mut out = self.clone();
        out.zip_assign(other, |a, b| *a = f(*a, b));
        out
    }

    fn zip_assign(&mut self, other: &Tensor, f: impl Fn(&mut f32, f32) + Sync) {
        assert_eq!(self.shape(), other.shape(), "elementwise op: shape mismatch");
        if self.numel() >= PAR_ELEMS {
            self.data_mut()
                .par_iter_mut()
                .zip(other.data().par_iter())
                .for_each(|(a, &b)| f(a, b));
        } else {
            for (a, &b) in self.data_mut().iter_mut().zip(other.data().iter()) {
                f(a, b);
            }
        }
    }

    /// Sum of all elements (f64 accumulation for stability).
    pub fn sum(&self) -> f32 {
        self.data().iter().map(|&v| v as f64).sum::<f64>() as f32
    }

    /// Mean of all elements.
    pub fn mean(&self) -> f32 {
        if self.numel() == 0 {
            0.0
        } else {
            self.sum() / self.numel() as f32
        }
    }

    /// Sum of squares of all elements.
    pub fn sum_sq(&self) -> f32 {
        self.data().iter().map(|&v| (v as f64) * (v as f64)).sum::<f64>() as f32
    }

    /// L2 norm of the flattened tensor.
    pub fn l2_norm(&self) -> f32 {
        self.sum_sq().sqrt()
    }

    /// Column-wise sum of a 2-D tensor: `[m,n] -> [n]`.
    ///
    /// This is the bias-gradient reduction `db = sum_rows(dY)`.
    pub fn sum_rows(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "sum_rows requires a 2-D tensor");
        let (m, n) = (self.dim(0), self.dim(1));
        let mut out = vec![0.0f32; n];
        for i in 0..m {
            let row = &self.data()[i * n..(i + 1) * n];
            for (o, &r) in out.iter_mut().zip(row) {
                *o += r;
            }
        }
        Tensor::from_vec(&[n], out)
    }

    /// Broadcast-add a `[n]` vector to every row of a `[m,n]` tensor, in place.
    pub fn add_row_vector(&mut self, bias: &Tensor) {
        assert_eq!(self.ndim(), 2, "add_row_vector requires a 2-D tensor");
        assert_eq!(bias.ndim(), 1, "bias must be 1-D");
        let n = self.dim(1);
        assert_eq!(bias.numel(), n, "bias length must equal row width");
        let bdata = bias.data();
        if self.numel() >= PAR_ELEMS {
            self.data_mut().par_chunks_mut(n).for_each(|row| {
                for (r, &b) in row.iter_mut().zip(bdata) {
                    *r += b;
                }
            });
        } else {
            for row in self.data_mut().chunks_mut(n) {
                for (r, &b) in row.iter_mut().zip(bdata) {
                    *r += b;
                }
            }
        }
    }

    /// Row-wise softmax of a 2-D tensor, in place (numerically stabilised).
    pub fn softmax_rows_inplace(&mut self) {
        assert_eq!(self.ndim(), 2, "softmax_rows requires a 2-D tensor");
        let n = self.dim(1);
        let body = |row: &mut [f32]| {
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0f32;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
        };
        if self.numel() >= PAR_ELEMS {
            self.data_mut().par_chunks_mut(n).for_each(body);
        } else {
            self.data_mut().chunks_mut(n).for_each(body);
        }
    }

    /// Backward of row-wise softmax: given softmax output `y` (= self) and
    /// upstream gradient `dy`, returns `dx = y ⊙ (dy − (y·dy))` row-wise.
    pub fn softmax_rows_backward(&self, dy: &Tensor) -> Tensor {
        assert_eq!(self.shape(), dy.shape(), "softmax backward: shape mismatch");
        assert_eq!(self.ndim(), 2, "softmax backward requires 2-D tensors");
        let n = self.dim(1);
        let mut dx = Tensor::zeros(self.shape());
        dx.data_mut()
            .par_chunks_mut(n)
            .zip(self.data().par_chunks(n))
            .zip(dy.data().par_chunks(n))
            .for_each(|((dxr, yr), dyr)| {
                let inner: f32 = yr.iter().zip(dyr).map(|(y, d)| y * d).sum();
                for ((dxv, &y), &d) in dxr.iter_mut().zip(yr).zip(dyr) {
                    *dxv = y * (d - inner);
                }
            });
        dx
    }

    /// Gather rows of a 2-D tensor: `out[i,:] = self[idx[i],:]`.
    pub fn gather_rows(&self, idx: &[usize]) -> Tensor {
        assert_eq!(self.ndim(), 2, "gather_rows requires a 2-D tensor");
        let (m, n) = (self.dim(0), self.dim(1));
        let mut out = Tensor::zeros(&[idx.len(), n]);
        for (oi, &src) in idx.iter().enumerate() {
            assert!(src < m, "gather_rows: index {} out of bounds ({} rows)", src, m);
            out.data_mut()[oi * n..(oi + 1) * n].copy_from_slice(&self.data()[src * n..(src + 1) * n]);
        }
        out
    }

    /// Scatter-add rows into a 2-D tensor: `self[idx[i],:] += src[i,:]`.
    pub fn scatter_add_rows(&mut self, idx: &[usize], src: &Tensor) {
        assert_eq!(self.ndim(), 2, "scatter_add_rows requires a 2-D tensor");
        assert_eq!(src.ndim(), 2, "scatter source must be 2-D");
        assert_eq!(idx.len(), src.dim(0), "index count must match source rows");
        let (m, n) = (self.dim(0), self.dim(1));
        assert_eq!(src.dim(1), n, "scatter source width mismatch");
        for (si, &dst) in idx.iter().enumerate() {
            assert!(dst < m, "scatter_add_rows: index {} out of bounds ({} rows)", dst, m);
            let srow = &src.data()[si * n..(si + 1) * n];
            let drow_start = dst * n;
            for (j, &v) in srow.iter().enumerate() {
                self.data_mut()[drow_start + j] += v;
            }
        }
    }

    /// Index of the maximum element of each row of a 2-D tensor.
    pub fn argmax_rows(&self) -> Vec<usize> {
        assert_eq!(self.ndim(), 2, "argmax_rows requires a 2-D tensor");
        let n = self.dim(1);
        self.data()
            .chunks(n)
            .map(|row| {
                row.iter()
                    .enumerate()
                    .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(i, _)| i)
                    .unwrap_or(0)
            })
            .collect()
    }

    /// Indices of the top-`k` elements of each row, best first.
    pub fn topk_rows(&self, k: usize) -> Vec<Vec<usize>> {
        assert_eq!(self.ndim(), 2, "topk_rows requires a 2-D tensor");
        let n = self.dim(1);
        assert!(k <= n, "topk_rows: k={} exceeds row width {}", k, n);
        self.data()
            .chunks(n)
            .map(|row| {
                let mut order: Vec<usize> = (0..n).collect();
                order.sort_by(|&a, &b| {
                    row[b].partial_cmp(&row[a]).unwrap_or(std::cmp::Ordering::Equal)
                });
                order.truncate(k);
                order
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(shape: &[usize], v: Vec<f32>) -> Tensor {
        Tensor::from_vec(shape, v)
    }

    #[test]
    fn add_sub_mul() {
        let a = t(&[3], vec![1., 2., 3.]);
        let b = t(&[3], vec![4., 5., 6.]);
        assert_eq!(a.add(&b).data(), &[5., 7., 9.]);
        assert_eq!(b.sub(&a).data(), &[3., 3., 3.]);
        assert_eq!(a.mul(&b).data(), &[4., 10., 18.]);
    }

    #[test]
    fn assign_ops() {
        let mut a = t(&[2], vec![1., 2.]);
        a.add_assign(&t(&[2], vec![1., 1.]));
        assert_eq!(a.data(), &[2., 3.]);
        a.axpy_assign(2.0, &t(&[2], vec![1., 0.]));
        assert_eq!(a.data(), &[4., 3.]);
        a.scale_assign(0.5);
        assert_eq!(a.data(), &[2., 1.5]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn elementwise_rejects_shape_mismatch() {
        let _ = t(&[2], vec![1., 2.]).add(&t(&[3], vec![1., 2., 3.]));
    }

    #[test]
    fn reductions() {
        let a = t(&[2, 2], vec![1., 2., 3., 4.]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.sum_sq(), 30.0);
        assert!((a.l2_norm() - 30f32.sqrt()).abs() < 1e-6);
    }

    #[test]
    fn sum_rows_is_bias_grad_reduction() {
        let a = t(&[2, 3], vec![1., 2., 3., 10., 20., 30.]);
        assert_eq!(a.sum_rows().data(), &[11., 22., 33.]);
    }

    #[test]
    fn add_row_vector_broadcasts() {
        let mut a = Tensor::zeros(&[2, 3]);
        a.add_row_vector(&t(&[3], vec![1., 2., 3.]));
        assert_eq!(a.data(), &[1., 2., 3., 1., 2., 3.]);
    }

    #[test]
    fn softmax_rows_sum_to_one_and_order_preserved() {
        let mut a = t(&[2, 3], vec![1., 2., 3., -1., 0., 1.]);
        a.softmax_rows_inplace();
        for r in 0..2 {
            let row = a.row(r);
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
            assert!(row[0] < row[1] && row[1] < row[2]);
        }
    }

    #[test]
    fn softmax_handles_large_logits() {
        let mut a = t(&[1, 2], vec![1000.0, 1001.0]);
        a.softmax_rows_inplace();
        assert!(!a.has_non_finite());
        assert!((a.data()[0] + a.data()[1] - 1.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_backward_matches_finite_difference() {
        let x = t(&[1, 4], vec![0.3, -0.1, 0.7, 0.2]);
        let dy = t(&[1, 4], vec![0.5, -0.2, 0.1, 0.9]);
        let mut y = x.clone();
        y.softmax_rows_inplace();
        let dx = y.softmax_rows_backward(&dy);
        // central finite differences on loss = sum(softmax(x) * dy)
        let eps = 1e-3f32;
        for i in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            xp.softmax_rows_inplace();
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            xm.softmax_rows_inplace();
            let lp: f32 = xp.data().iter().zip(dy.data()).map(|(a, b)| a * b).sum();
            let lm: f32 = xm.data().iter().zip(dy.data()).map(|(a, b)| a * b).sum();
            let fd = (lp - lm) / (2.0 * eps);
            assert!(
                (fd - dx.data()[i]).abs() < 1e-3,
                "component {}: fd {} vs analytic {}",
                i,
                fd,
                dx.data()[i]
            );
        }
    }

    #[test]
    fn gather_scatter_roundtrip() {
        let base = t(&[4, 2], vec![0., 1., 10., 11., 20., 21., 30., 31.]);
        let picked = base.gather_rows(&[2, 0]);
        assert_eq!(picked.data(), &[20., 21., 0., 1.]);
        let mut acc = Tensor::zeros(&[4, 2]);
        acc.scatter_add_rows(&[2, 0], &picked);
        assert_eq!(acc.at(&[2, 0]), 20.0);
        assert_eq!(acc.at(&[0, 1]), 1.0);
        assert_eq!(acc.at(&[1, 0]), 0.0);
    }

    #[test]
    fn scatter_add_accumulates_duplicates() {
        let mut acc = Tensor::zeros(&[2, 1]);
        let src = t(&[3, 1], vec![1., 2., 4.]);
        acc.scatter_add_rows(&[0, 0, 1], &src);
        assert_eq!(acc.data(), &[3., 4.]);
    }

    #[test]
    fn argmax_and_topk() {
        let a = t(&[2, 4], vec![0.1, 0.9, 0.3, 0.2, 5., 1., 7., 3.]);
        assert_eq!(a.argmax_rows(), vec![1, 2]);
        let tk = a.topk_rows(2);
        assert_eq!(tk[0], vec![1, 2]);
        assert_eq!(tk[1], vec![2, 0]);
    }

    #[test]
    fn map_applies_function() {
        let a = t(&[3], vec![1., -2., 3.]);
        assert_eq!(a.map(|v| v.abs()).data(), &[1., 2., 3.]);
    }
}
