//! The core [`Tensor`] type: a contiguous row-major `f32` buffer plus shape.

/// A dense, contiguous, row-major `f32` tensor.
///
/// `Tensor` is the single numeric container used throughout `geofm`. Shapes
/// are dynamic (a `Vec<usize>`), which keeps the API small; the layers in
/// `geofm-nn` validate shapes at construction and debug-assert them on the
/// hot path.
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Vec<usize>,
    data: Vec<f32>,
}

impl Tensor {
    /// Build a tensor from an explicit shape and data buffer.
    ///
    /// # Panics
    /// Panics if `data.len()` does not equal the product of `shape`.
    pub fn from_vec(shape: &[usize], data: Vec<f32>) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            data.len(),
            numel,
            "Tensor::from_vec: data length {} != shape {:?} product {}",
            data.len(),
            shape,
            numel
        );
        Self { shape: shape.to_vec(), data }
    }

    /// All-zeros tensor of the given shape.
    pub fn zeros(shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        Self { shape: shape.to_vec(), data: vec![0.0; numel] }
    }

    /// All-ones tensor of the given shape.
    pub fn ones(shape: &[usize]) -> Self {
        Self::full(shape, 1.0)
    }

    /// Constant-filled tensor of the given shape.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let numel: usize = shape.iter().product();
        Self { shape: shape.to_vec(), data: vec![value; numel] }
    }

    /// A scalar (rank-0 is represented as shape `[1]` for simplicity).
    pub fn scalar(value: f32) -> Self {
        Self { shape: vec![1], data: vec![value] }
    }

    /// The tensor's shape.
    #[inline]
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of dimensions.
    #[inline]
    pub fn ndim(&self) -> usize {
        self.shape.len()
    }

    /// Total number of elements.
    #[inline]
    pub fn numel(&self) -> usize {
        self.data.len()
    }

    /// Size of dimension `d`.
    ///
    /// # Panics
    /// Panics if `d >= ndim()`.
    #[inline]
    pub fn dim(&self, d: usize) -> usize {
        self.shape[d]
    }

    /// Immutable view of the underlying buffer (row-major).
    #[inline]
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    #[inline]
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consume the tensor and return its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Reinterpret the buffer under a new shape with the same element count.
    ///
    /// # Panics
    /// Panics if the element counts differ.
    pub fn reshape(mut self, shape: &[usize]) -> Self {
        let numel: usize = shape.iter().product();
        assert_eq!(
            self.data.len(),
            numel,
            "reshape: cannot view {:?} ({} elems) as {:?} ({} elems)",
            self.shape,
            self.data.len(),
            shape,
            numel
        );
        self.shape = shape.to_vec();
        self
    }

    /// In-place variant of [`Tensor::reshape`] for borrowed tensors.
    pub fn reshape_in_place(&mut self, shape: &[usize]) {
        let numel: usize = shape.iter().product();
        assert_eq!(self.data.len(), numel, "reshape_in_place: element count mismatch");
        self.shape = shape.to_vec();
    }

    /// Value at a multi-dimensional index.
    ///
    /// Intended for tests and small reads; hot code should index `data()`.
    pub fn at(&self, idx: &[usize]) -> f32 {
        self.data[self.flat_index(idx)]
    }

    /// Set the value at a multi-dimensional index.
    pub fn set(&mut self, idx: &[usize], value: f32) {
        let flat = self.flat_index(idx);
        self.data[flat] = value;
    }

    fn flat_index(&self, idx: &[usize]) -> usize {
        assert_eq!(idx.len(), self.shape.len(), "index rank mismatch");
        let mut flat = 0usize;
        for (d, (&i, &s)) in idx.iter().zip(self.shape.iter()).enumerate() {
            assert!(i < s, "index {} out of bounds for dim {} of size {}", i, d, s);
            flat = flat * s + i;
        }
        flat
    }

    /// Borrow row `r` of a 2-D tensor as a slice.
    ///
    /// # Panics
    /// Panics if the tensor is not 2-D or `r` is out of range.
    pub fn row(&self, r: usize) -> &[f32] {
        assert_eq!(self.ndim(), 2, "row() requires a 2-D tensor");
        let cols = self.shape[1];
        &self.data[r * cols..(r + 1) * cols]
    }

    /// Mutable borrow of row `r` of a 2-D tensor.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        assert_eq!(self.ndim(), 2, "row_mut() requires a 2-D tensor");
        let cols = self.shape[1];
        &mut self.data[r * cols..(r + 1) * cols]
    }

    /// Copy a contiguous range of rows of a 2-D tensor into a new tensor.
    pub fn rows(&self, start: usize, end: usize) -> Tensor {
        assert_eq!(self.ndim(), 2, "rows() requires a 2-D tensor");
        assert!(start <= end && end <= self.shape[0], "row range out of bounds");
        let cols = self.shape[1];
        Tensor::from_vec(&[end - start, cols], self.data[start * cols..end * cols].to_vec())
    }

    /// Transpose of a 2-D tensor (allocates).
    pub fn transpose2(&self) -> Tensor {
        assert_eq!(self.ndim(), 2, "transpose2() requires a 2-D tensor");
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(&[n, m], out)
    }

    /// `true` iff any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Maximum absolute difference against another tensor of the same shape.
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape, other.shape, "max_abs_diff: shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.shape(), &[2, 3]);
        assert_eq!(t.numel(), 6);
        assert_eq!(t.at(&[1, 2]), 6.0);
        assert_eq!(t.row(0), &[1., 2., 3.]);
    }

    #[test]
    #[should_panic(expected = "data length")]
    fn from_vec_rejects_bad_len() {
        let _ = Tensor::from_vec(&[2, 2], vec![1.0; 3]);
    }

    #[test]
    fn zeros_ones_full() {
        assert!(Tensor::zeros(&[4]).data().iter().all(|&v| v == 0.0));
        assert!(Tensor::ones(&[4]).data().iter().all(|&v| v == 1.0));
        assert!(Tensor::full(&[4], 2.5).data().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(&[2, 3], (0..6).map(|v| v as f32).collect());
        let r = t.clone().reshape(&[3, 2]);
        assert_eq!(r.shape(), &[3, 2]);
        assert_eq!(r.data(), t.data());
    }

    #[test]
    #[should_panic(expected = "reshape")]
    fn reshape_rejects_count_mismatch() {
        let _ = Tensor::zeros(&[2, 3]).reshape(&[4, 2]);
    }

    #[test]
    fn set_and_at() {
        let mut t = Tensor::zeros(&[2, 2, 2]);
        t.set(&[1, 0, 1], 7.0);
        assert_eq!(t.at(&[1, 0, 1]), 7.0);
        assert_eq!(t.data()[5], 7.0);
    }

    #[test]
    fn transpose2_is_involution() {
        let t = Tensor::from_vec(&[2, 3], vec![1., 2., 3., 4., 5., 6.]);
        let tt = t.transpose2();
        assert_eq!(tt.shape(), &[3, 2]);
        assert_eq!(tt.at(&[2, 1]), 6.0);
        assert_eq!(tt.transpose2(), t);
    }

    #[test]
    fn rows_slice() {
        let t = Tensor::from_vec(&[3, 2], vec![0., 1., 2., 3., 4., 5.]);
        let mid = t.rows(1, 3);
        assert_eq!(mid.shape(), &[2, 2]);
        assert_eq!(mid.data(), &[2., 3., 4., 5.]);
    }

    #[test]
    fn non_finite_detection() {
        let mut t = Tensor::zeros(&[3]);
        assert!(!t.has_non_finite());
        t.data_mut()[1] = f32::NAN;
        assert!(t.has_non_finite());
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tensor::from_vec(&[2], vec![1.0, 2.0]);
        let b = Tensor::from_vec(&[2], vec![1.5, 1.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
    }
}
