//! # geofm-tensor
//!
//! Dense `f32` tensors and the rayon-parallel compute kernels that back the
//! whole `geofm` deep-learning stack.
//!
//! The design goals, in order:
//!
//! 1. **Predictability** — every tensor is a contiguous, row-major `Vec<f32>`
//!    plus a shape. There are no views, strides, or lazy graphs; an operation
//!    either works in place or returns a freshly allocated tensor. This is
//!    what makes the FSDP flat-parameter machinery in `geofm-fsdp` trivial to
//!    reason about (a parameter *is* its buffer).
//! 2. **Throughput** — the hot kernels (`matmul` and friends) are blocked and
//!    parallelised with rayon using the `i-k-j` loop order so the inner loop
//!    is a vectorisable AXPY over contiguous memory.
//! 3. **Determinism** — all random initialisation goes through seedable RNGs
//!    so distributed-equivalence tests can compare runs bit-for-bit.
//!
//! The crate deliberately has no autograd tape: layers in `geofm-nn` implement
//! explicit `forward`/`backward` methods, which keeps peak memory obvious and
//! lets the distributed engine schedule per-unit communication exactly like
//! PyTorch FSDP schedules its wrapped modules.

pub mod matmul;
pub mod ops;
pub mod random;
pub mod tensor;

pub use matmul::{bmm, bmm_a_bt, bmm_at_b, matmul, matmul_a_bt, matmul_at_b};
pub use random::TensorRng;
pub use tensor::Tensor;

/// Convenience result alias used across the workspace for shape errors.
pub type ShapeResult<T> = Result<T, ShapeError>;

/// Error raised when tensor shapes are incompatible with an operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShapeError {
    /// Human-readable description of the mismatch.
    pub msg: String,
}

impl std::fmt::Display for ShapeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "shape error: {}", self.msg)
    }
}

impl std::error::Error for ShapeError {}

impl ShapeError {
    /// Create a new shape error from anything displayable.
    pub fn new(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}
