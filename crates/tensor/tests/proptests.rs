//! Property-based tests for tensor algebra invariants.

use geofm_tensor::{matmul, matmul_a_bt, matmul_at_b, Tensor};
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    proptest::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(&[rows, cols], v))
}

fn dims() -> impl Strategy<Value = (usize, usize, usize)> {
    (1usize..12, 1usize..12, 1usize..12)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_distributes_over_addition((m, k, n) in dims(), seed in 0u64..1000) {
        let mut rng = geofm_tensor::TensorRng::seed_from(seed);
        let a = rng.randn(&[m, k], 1.0);
        let b1 = rng.randn(&[k, n], 1.0);
        let b2 = rng.randn(&[k, n], 1.0);
        let lhs = matmul(&a, &b1.add(&b2));
        let rhs = matmul(&a, &b1).add(&matmul(&a, &b2));
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn matmul_scalar_commutes((m, k, n) in dims(), seed in 0u64..1000, alpha in -3.0f32..3.0) {
        let mut rng = geofm_tensor::TensorRng::seed_from(seed);
        let a = rng.randn(&[m, k], 1.0);
        let b = rng.randn(&[k, n], 1.0);
        let lhs = matmul(&a.scale(alpha), &b);
        let rhs = matmul(&a, &b).scale(alpha);
        prop_assert!(lhs.max_abs_diff(&rhs) < 1e-3);
    }

    #[test]
    fn transpose_variants_agree((m, k, n) in dims(), seed in 0u64..1000) {
        let mut rng = geofm_tensor::TensorRng::seed_from(seed);
        let a = rng.randn(&[m, k], 1.0);
        let b = rng.randn(&[k, n], 1.0);
        let direct = matmul(&a, &b);
        // (Aᵀ)ᵀ·B via the fused kernel must equal A·B.
        let via_at = matmul_at_b(&a.transpose2(), &b);
        prop_assert!(direct.max_abs_diff(&via_at) < 1e-3);
        // A·(Bᵀ)ᵀ via the fused kernel must equal A·B.
        let via_bt = matmul_a_bt(&a, &b.transpose2());
        prop_assert!(direct.max_abs_diff(&via_bt) < 1e-3);
    }

    #[test]
    fn softmax_rows_are_probabilities(t in tensor_strategy(4, 9)) {
        let mut s = t.clone();
        s.softmax_rows_inplace();
        for r in 0..4 {
            let row = s.row(r);
            let sum: f32 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn softmax_is_shift_invariant(t in tensor_strategy(3, 5), shift in -50.0f32..50.0) {
        let mut a = t.clone();
        a.softmax_rows_inplace();
        let mut b = t.map(|v| v + shift);
        b.softmax_rows_inplace();
        prop_assert!(a.max_abs_diff(&b) < 1e-4);
    }

    #[test]
    fn sum_rows_matches_total(t in tensor_strategy(6, 7)) {
        let per_col = t.sum_rows();
        prop_assert!((per_col.sum() - t.sum()).abs() < 1e-2);
    }

    #[test]
    fn gather_then_scatter_restores_selected_rows(seed in 0u64..1000) {
        let mut rng = geofm_tensor::TensorRng::seed_from(seed);
        let base = rng.randn(&[8, 5], 1.0);
        let idx: Vec<usize> = (0..8).filter(|i| i % 2 == 0).collect();
        let picked = base.gather_rows(&idx);
        let mut rebuilt = Tensor::zeros(&[8, 5]);
        rebuilt.scatter_add_rows(&idx, &picked);
        for &i in &idx {
            for j in 0..5 {
                prop_assert!((rebuilt.at(&[i, j]) - base.at(&[i, j])).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn l2_norm_triangle_inequality(seed in 0u64..1000) {
        let mut rng = geofm_tensor::TensorRng::seed_from(seed);
        let a = rng.randn(&[64], 1.0);
        let b = rng.randn(&[64], 1.0);
        prop_assert!(a.add(&b).l2_norm() <= a.l2_norm() + b.l2_norm() + 1e-4);
    }
}
