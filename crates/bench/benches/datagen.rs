//! Synthetic-scene generation benchmarks (the "IO" producer of the
//! reproduction) and loader throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geofm_bench::quick_criterion;
use geofm_data::{DataLoader, DatasetKind, SceneDataset, SceneRenderer};
use std::hint::black_box;
use std::sync::Arc;

fn bench_render(c: &mut Criterion) {
    let mut group = c.benchmark_group("render_class");
    for &img in &[16usize, 48] {
        let r = SceneRenderer::new(img, 3, 7);
        group.bench_with_input(BenchmarkId::new("batch8", img), &img, |b, _| {
            b.iter(|| black_box(r.render_class(3, 8, 0)))
        });
    }
    group.finish();
}

fn bench_dataset_generation(c: &mut Criterion) {
    c.bench_function("generate_ucm_64", |b| {
        b.iter(|| black_box(SceneDataset::generate(DatasetKind::Ucm, 64, 24, 3, 0, 1)))
    });
}

fn bench_loader(c: &mut Criterion) {
    let ds = Arc::new(SceneDataset::generate(DatasetKind::Aid, 128, 24, 3, 0, 2));
    let mut group = c.benchmark_group("loader_epoch");
    for &workers in &[1usize, 2, 4] {
        let ds = Arc::clone(&ds);
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, move |b, &w| {
            let ds = Arc::clone(&ds);
            b.iter(|| {
                let loader = DataLoader::new(Arc::clone(&ds), 16, w, 3);
                black_box(loader.count())
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_render, bench_dataset_generation, bench_loader
}
criterion_main!(benches);
