//! Dense-kernel benchmarks: the matmul variants and attention block.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geofm_bench::quick_criterion;
use geofm_nn::{MultiHeadAttention, TransformerBlock};
use geofm_tensor::{bmm, matmul, matmul_a_bt, matmul_at_b, TensorRng};
use std::hint::black_box;

fn bench_matmul_variants(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    let mut rng = TensorRng::seed_from(1);
    for &n in &[32usize, 96, 192] {
        let a = rng.randn(&[n, n], 1.0);
        let b = rng.randn(&[n, n], 1.0);
        group.bench_with_input(BenchmarkId::new("nn", n), &n, |bch, _| {
            bch.iter(|| black_box(matmul(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("at_b", n), &n, |bch, _| {
            bch.iter(|| black_box(matmul_at_b(&a, &b)))
        });
        group.bench_with_input(BenchmarkId::new("a_bt", n), &n, |bch, _| {
            bch.iter(|| black_box(matmul_a_bt(&a, &b)))
        });
    }
    group.finish();
}

fn bench_bmm(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(2);
    let a = rng.randn(&[16, 64, 12], 1.0);
    let b = rng.randn(&[16, 12, 64], 1.0);
    c.bench_function("bmm_16x64x12", |bch| bch.iter(|| black_box(bmm(&a, &b))));
}

fn bench_attention(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(3);
    let x = rng.randn(&[8, 64, 96], 1.0);
    let dy = rng.randn(&[8, 64, 96], 1.0);
    let mut attn = MultiHeadAttention::new(96, 8, &mut rng, "b");
    c.bench_function("attention_fwd", |bch| {
        bch.iter(|| black_box(attn.forward_inference(&x)))
    });
    c.bench_function("attention_fwd_bwd", |bch| {
        bch.iter(|| {
            let _ = attn.forward(&x);
            black_box(attn.backward(&dy))
        })
    });
}

fn bench_block(c: &mut Criterion) {
    let mut rng = TensorRng::seed_from(4);
    let x = rng.randn(&[8, 64, 96], 1.0);
    let dy = rng.randn(&[8, 64, 96], 1.0);
    let mut blk = TransformerBlock::new(96, 384, 8, &mut rng, "b");
    c.bench_function("transformer_block_step", |bch| {
        bch.iter(|| {
            let _ = blk.forward(&x);
            black_box(blk.backward(&dy))
        })
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_matmul_variants, bench_bmm, bench_attention, bench_block
}
criterion_main!(benches);
