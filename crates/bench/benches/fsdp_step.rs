//! Distributed-step benchmarks per sharding strategy, plus the
//! unit-granularity ablation (per-block FSDP units vs one whole-model flat
//! unit — the message-sizing trade-off §IV-C discusses for DDP vs FSDP)
//! and the comm/compute overlap on/off comparison (the knob `figU` sweeps
//! in the DES, here measured on the real rank-thread engine).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geofm_bench::quick_criterion;
use geofm_fsdp::{run_data_parallel, FsdpConfig, ShardingStrategy};
use geofm_nn::Module;
use geofm_tensor::TensorRng;
use geofm_vit::{VitConfig, VitModel};
use std::hint::black_box;

fn tiny() -> VitConfig {
    VitConfig {
        name: "bench".into(),
        width: 32,
        depth: 2,
        mlp: 64,
        heads: 4,
        patch: 4,
        img: 8,
        channels: 1,
    }
}

fn run_steps(strategy: ShardingStrategy, world: usize, whole_model_unit: bool, overlap: bool) {
    let cfg = tiny();
    let report = run_data_parallel(
        if overlap { FsdpConfig::overlapped(strategy) } else { FsdpConfig::tuned(strategy) },
        world,
        0.01,
        2,
        move |_| {
            let mut rng = TensorRng::seed_from(11);
            let cfg = tiny();
            let mut m = VitModel::new(&cfg, &mut rng);
            let units = if whole_model_unit {
                vec![m.num_params()]
            } else {
                m.unit_param_counts()
            };
            (m, units)
        },
        move |m, rank, step| {
            let mut rng = TensorRng::seed_from(100 + step as u64);
            let imgs = rng.randn(&[4, cfg.channels * 64], 1.0);
            let per = 4 / world;
            let xl = imgs.rows(rank * per, (rank + 1) * per);
            m.zero_grad();
            let enc = m.forward(&xl);
            let n = enc.numel() as f32;
            let loss = enc.sum_sq() / n;
            m.backward(&enc.scale(2.0 / n));
            loss
        },
        |_| 1e-4,
    );
    black_box(report.mean_losses);
}

fn bench_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("dist_step");
    for strategy in [
        ShardingStrategy::NoShard,
        ShardingStrategy::ddp_default(),
        ShardingStrategy::FullShard,
        ShardingStrategy::ShardGradOp,
        ShardingStrategy::Hybrid { shard_size: 2 },
    ] {
        group.bench_with_input(
            BenchmarkId::new("strategy", strategy.name()),
            &strategy,
            |b, &s| b.iter(|| run_steps(s, 4, false, false)),
        );
    }
    group.finish();
}

fn bench_unit_granularity(c: &mut Criterion) {
    let mut group = c.benchmark_group("unit_granularity");
    group.bench_function("per_block_units", |b| {
        b.iter(|| run_steps(ShardingStrategy::FullShard, 4, false, false))
    });
    group.bench_function("whole_model_unit", |b| {
        b.iter(|| run_steps(ShardingStrategy::FullShard, 4, true, false))
    });
    group.finish();
}

fn bench_overlap(c: &mut Criterion) {
    let mut group = c.benchmark_group("overlap");
    for strategy in [
        ShardingStrategy::NoShard,
        ShardingStrategy::FullShard,
        ShardingStrategy::ShardGradOp,
        ShardingStrategy::Hybrid { shard_size: 2 },
    ] {
        for (mode, overlap) in [("overlap_off", false), ("overlap_on", true)] {
            group.bench_with_input(
                BenchmarkId::new(strategy.name(), mode),
                &overlap,
                |b, &on| b.iter(|| run_steps(strategy, 4, false, on)),
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_strategies, bench_unit_granularity, bench_overlap
}
criterion_main!(benches);
