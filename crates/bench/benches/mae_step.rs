//! End-to-end MAE pretraining step benchmarks across the tiny model family
//! — the reproduction's analogue of the paper's images-per-second baselines
//! (Table I models measured in §IV).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geofm_bench::quick_criterion;
use geofm_mae::{MaeConfig, MaePretrainer};
use geofm_tensor::TensorRng;
use geofm_vit::VitConfig;
use std::hint::black_box;

fn bench_mae_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("mae_pretrain_step");
    for cfg in VitConfig::tiny_family() {
        let mae = MaeConfig::tiny(cfg.clone());
        let mut rng = TensorRng::seed_from(1);
        let mut trainer = MaePretrainer::new(&mae, 1e-3, 1000, &mut rng);
        let mut data_rng = TensorRng::seed_from(2);
        let imgs = data_rng.randn(&[8, cfg.channels * cfg.img * cfg.img], 1.0);
        group.bench_with_input(BenchmarkId::new("bs8", &cfg.name), &cfg, |b, _| {
            b.iter(|| black_box(trainer.step(&imgs, &mut data_rng).loss))
        });
    }
    group.finish();
}

fn bench_probe_features(c: &mut Criterion) {
    use geofm_mae::LinearProbe;
    use geofm_vit::VitModel;
    let cfg = &VitConfig::tiny_family()[1];
    let mut rng = TensorRng::seed_from(3);
    let encoder = VitModel::new(cfg, &mut rng);
    let imgs = rng.randn(&[32, cfg.channels * cfg.img * cfg.img], 1.0);
    c.bench_function("extract_features_32", |b| {
        b.iter(|| black_box(LinearProbe::extract_features(&encoder, &imgs, 16)))
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_mae_family, bench_probe_features
}
criterion_main!(benches);
