//! DES throughput benchmarks: one simulated step of the paper's largest
//! configurations (the simulator itself must stay cheap — the figure
//! binaries run hundreds of configurations).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geofm_bench::quick_criterion;
use geofm_frontier::{simulate, FrontierMachine, MaeWorkload, SimConfig, VitWorkload};
use geofm_fsdp::ShardingStrategy;
use geofm_vit::{VitConfig, VitVariant};
use std::hint::black_box;

fn bench_simulate_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulate_step");
    for v in [VitVariant::Base, VitVariant::B3, VitVariant::B15] {
        let wl = VitWorkload::build(&VitConfig::table1(v), 32, 224);
        group.bench_with_input(BenchmarkId::new("full_shard_64n", format!("{:?}", v)), &v, |b, _| {
            b.iter(|| {
                black_box(simulate(&SimConfig::tuned(
                    FrontierMachine::new(64),
                    ShardingStrategy::FullShard,
                    wl.clone(),
                )))
            })
        });
    }
    group.finish();
}

fn bench_simulate_mae(c: &mut Criterion) {
    let wl = MaeWorkload::build(&VitConfig::table1(VitVariant::B3), 32, 0.75);
    c.bench_function("simulate_mae3b_64n", |b| {
        b.iter(|| {
            black_box(simulate(&SimConfig::tuned(
                FrontierMachine::new(64),
                ShardingStrategy::NoShard,
                wl.clone(),
            )))
        })
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_simulate_models, bench_simulate_mae
}
criterion_main!(benches);
