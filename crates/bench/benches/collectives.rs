//! Collective-algorithm benchmarks: direct (chunk-parallel) vs ring
//! all-reduce across rank counts and message sizes — the ablation behind
//! choosing the direct algorithm as the engine default.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use geofm_bench::quick_criterion;
use geofm_collectives::{Algorithm, Group};
use std::hint::black_box;

fn run_all_reduce(ranks: usize, elems: usize, algorithm: Algorithm) {
    let handles = Group::create(ranks);
    std::thread::scope(|s| {
        for h in handles {
            s.spawn(move || {
                let h = h.with_algorithm(algorithm);
                let mut buf = vec![h.rank() as f32; elems];
                h.all_reduce(&mut buf);
                black_box(buf[0]);
            });
        }
    });
}

fn bench_all_reduce_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("all_reduce");
    for &ranks in &[2usize, 4] {
        for &elems in &[1024usize, 65_536] {
            group.bench_with_input(
                BenchmarkId::new(format!("direct_r{}", ranks), elems),
                &elems,
                |b, &e| b.iter(|| run_all_reduce(ranks, e, Algorithm::Direct)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("ring_r{}", ranks), elems),
                &elems,
                |b, &e| b.iter(|| run_all_reduce(ranks, e, Algorithm::Ring)),
            );
        }
    }
    group.finish();
}

fn bench_all_gather(c: &mut Criterion) {
    c.bench_function("all_gather_4r_16k", |b| {
        b.iter(|| {
            let handles = Group::create(4);
            std::thread::scope(|s| {
                for h in handles {
                    s.spawn(move || {
                        let local = vec![h.rank() as f32; 16_384];
                        let mut out = Vec::new();
                        h.all_gather(&local, &mut out);
                        black_box(out.len());
                    });
                }
            });
        })
    });
}

criterion_group! {
    name = benches;
    config = quick_criterion();
    targets = bench_all_reduce_algorithms, bench_all_gather
}
criterion_main!(benches);
