//! # geofm-bench
//!
//! Criterion benchmarks for the `geofm` workspace. Each bench file covers
//! one performance-critical layer:
//!
//! * `kernels` — matmul variants and attention forward/backward
//! * `collectives` — direct vs ring all-reduce across rank counts
//! * `fsdp_step` — full distributed step per sharding strategy, plus the
//!   unit-granularity ablation (per-block units vs one whole-model unit)
//! * `simulator` — DES throughput for the paper's largest configurations
//! * `datagen` — synthetic scene rendering
//! * `mae_step` — end-to-end MAE pretraining step for the tiny family
//!
//! All benches use reduced sample counts so `cargo bench --workspace`
//! completes in minutes on one core.

use criterion::Criterion;

/// Shared Criterion configuration: small sample counts, short measurement
/// windows (the suite must run on a single CPU core).
pub fn quick_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(std::time::Duration::from_millis(700))
        .warm_up_time(std::time::Duration::from_millis(200))
        .configure_from_args()
}
