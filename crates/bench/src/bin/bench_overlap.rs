//! Overlap perf-regression runner: times the real rank-thread FSDP engine
//! with the comm/compute overlap engine off and on, per sharding strategy,
//! and emits `BENCH_overlap.json` with the median ns/step of each cell.
//!
//! Unlike the Criterion benches (which interleave everything into one HTML
//! report), this runner produces a small machine-readable artifact CI can
//! upload and diff across commits — the perf half of the overlap lock-in,
//! next to `tests/overlap_equivalence.rs`'s correctness half. Absolute
//! numbers are hardware-noise; the artifact exists so a commit that
//! silently serializes the pipeline again (overlap-on median drifting up
//! to the overlap-off median) shows up in review.
//!
//! Usage: `bench_overlap [OUT.json]` (default `BENCH_overlap.json`).

use geofm_fsdp::{run_data_parallel, FsdpConfig, ShardingStrategy};
use geofm_nn::Module;
use geofm_tensor::TensorRng;
use geofm_vit::{VitConfig, VitModel};
use std::time::Instant;

// STEPS is deliberately large relative to world spawn/teardown: each timed
// rep launches a fresh world (plus per-rank comm threads when overlap is
// on), and at small STEPS that fixed, *asymmetric* setup cost leaks into
// the per-step figure of the overlap-on cell. 48 steps amortises it below
// the noise floor, and 31 reps keeps the paired-delta median stable while
// the whole four-strategy run stays around half a minute.
const WORLD: usize = 4;
const STEPS: usize = 48;
const REPS: usize = 31;

fn tiny() -> VitConfig {
    VitConfig {
        name: "bench".into(),
        width: 32,
        depth: 2,
        mlp: 64,
        heads: 4,
        patch: 4,
        img: 8,
        channels: 1,
    }
}

fn run_steps(strategy: ShardingStrategy, overlap: bool) {
    let cfg = tiny();
    let report = run_data_parallel(
        if overlap { FsdpConfig::overlapped(strategy) } else { FsdpConfig::tuned(strategy) },
        WORLD,
        0.01,
        STEPS,
        move |_| {
            let mut rng = TensorRng::seed_from(11);
            let mut m = VitModel::new(&tiny(), &mut rng);
            let units = m.unit_param_counts();
            (m, units)
        },
        move |m, rank, step| {
            let mut rng = TensorRng::seed_from(100 + step as u64);
            let imgs = rng.randn(&[4, cfg.channels * 64], 1.0);
            let per = 4 / WORLD;
            let xl = imgs.rows(rank * per, (rank + 1) * per);
            m.zero_grad();
            let enc = m.forward(&xl);
            let n = enc.numel() as f32;
            let loss = enc.sum_sq() / n;
            m.backward(&enc.scale(2.0 / n));
            loss
        },
        |_| 1e-4,
    );
    std::hint::black_box(report.mean_losses);
}

fn time_one(strategy: ShardingStrategy, overlap: bool) -> u64 {
    let t0 = Instant::now();
    run_steps(strategy, overlap);
    t0.elapsed().as_nanos() as u64 / STEPS as u64
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Median ns/step for the off/on pair over `REPS` timed repetitions (each
/// a full `STEPS`-step distributed run, so spawn/teardown amortises across
/// steps), plus the **median paired delta** (on − off within each rep).
/// The two cells are timed *interleaved*, alternating which goes first
/// each rep, so slow machine-noise drift (thermal, background load) lands
/// inside every pair and cancels in the delta — the per-cell medians keep
/// the absolute scale, the paired delta is the trustworthy comparison.
fn median_pair_ns_per_step(strategy: ShardingStrategy) -> (u64, u64, i64) {
    // untimed warmups to fault in code paths and thread stacks
    run_steps(strategy, false);
    run_steps(strategy, true);
    let mut off = Vec::with_capacity(REPS);
    let mut on = Vec::with_capacity(REPS);
    for rep in 0..REPS {
        if rep % 2 == 0 {
            off.push(time_one(strategy, false));
            on.push(time_one(strategy, true));
        } else {
            on.push(time_one(strategy, true));
            off.push(time_one(strategy, false));
        }
    }
    let mut deltas: Vec<i64> =
        on.iter().zip(&off).map(|(&a, &b)| a as i64 - b as i64).collect();
    deltas.sort_unstable();
    let delta = deltas[deltas.len() / 2];
    (median(&mut off), median(&mut on), delta)
}

fn main() {
    let out = std::env::args().nth(1).unwrap_or_else(|| "BENCH_overlap.json".into());
    let strategies = [
        ShardingStrategy::NoShard,
        ShardingStrategy::FullShard,
        ShardingStrategy::ShardGradOp,
        ShardingStrategy::Hybrid { shard_size: 2 },
    ];

    println!(
        "BENCH overlap — median ns/step, world {WORLD}, {REPS} interleaved reps x {STEPS} steps"
    );
    println!(
        "{:>14} {:>14} {:>14} {:>8} {:>12}",
        "strategy", "off_ns", "on_ns", "on/off", "pair_delta"
    );
    let mut entries = Vec::new();
    for strategy in strategies {
        let (off, on, delta) = median_pair_ns_per_step(strategy);
        assert!(off > 0 && on > 0, "{}: degenerate timing", strategy.name());
        println!(
            "{:>14} {:>14} {:>14} {:>8.2} {:>12}",
            strategy.name(),
            off,
            on,
            on as f64 / off as f64,
            delta
        );
        entries.push(format!(
            "    {{\"strategy\": \"{}\", \"overlap_off_ns_per_step\": {}, \
             \"overlap_on_ns_per_step\": {}, \"median_paired_delta_ns\": {}}}",
            strategy.name(),
            off,
            on,
            delta
        ));
    }

    let json = format!(
        "{{\n  \"bench\": \"fsdp_step_overlap\",\n  \"world\": {WORLD},\n  \
         \"steps_per_rep\": {STEPS},\n  \"reps\": {REPS},\n  \"unit\": \"ns_per_step\",\n  \
         \"rows\": [\n{}\n  ]\n}}\n",
        entries.join(",\n")
    );
    std::fs::write(&out, json).expect("cannot write BENCH_overlap.json");
    println!("  -> wrote {out}");
}
