//! Perf-budget gate over `BENCH_overlap.json` — the CI teeth behind the
//! overlap engine. Two checks, both against numbers the paired-interleaved
//! bench runner just produced:
//!
//! 1. **Overlap must not lose.** For every sharded strategy the median
//!    paired delta (overlap-on minus overlap-off, measured within the same
//!    rep so machine drift cancels) must not exceed the noise floor,
//!    `NOISE_FRAC` of the overlap-off median. On a single-core runner the
//!    overlap engine cannot beat the blocking path by parallelism — total
//!    wall-clock equals total CPU work — so "win" degrades to "parity
//!    within noise"; on multi-core hardware the same gate tightens into a
//!    real win requirement because the structural overlap shows up as a
//!    negative delta. A commit that re-serializes the pipeline (mutexed
//!    queue, per-job allocation, eager wakeups) blows well past the floor.
//! 2. **No silent regression vs the committed baseline.** Both the off and
//!    on ns/step medians must stay within `REGRESSION_FRAC` of
//!    `results/BENCH_overlap.json`. This catches the other failure mode:
//!    both cells getting slower together, which check 1 is blind to.
//!
//! JSON parsing is hand-rolled against the exact shape `bench_overlap`
//! emits (no new dependencies; the format is ours).
//!
//! Usage: `perf_budget <current.json> [baseline.json]`
//! Exit status 0 = within budget, 1 = budget violated, 2 = bad input.

use std::process::ExitCode;

/// Floor for the on-vs-off paired delta, as a fraction of the
/// overlap-off median. On the single-core CI runner the async machinery
/// plus scheduler stagger measures +2–4% with ±3% run-to-run drift of
/// the paired-delta median itself; 5% sits just above that envelope
/// while staying far below the regression this gate exists to catch —
/// the old mutex/condvar queue engine measured +17–20% on the same
/// bench. On a multi-core runner real overlap pulls the delta negative
/// and the same floor tightens into a strict win requirement.
const NOISE_FRAC: f64 = 0.05;

/// Allowed regression of either cell's ns/step median vs the committed
/// baseline artifact.
const REGRESSION_FRAC: f64 = 0.05;

#[derive(Debug, Clone, PartialEq)]
struct Row {
    strategy: String,
    off_ns: u64,
    on_ns: u64,
    paired_delta_ns: i64,
}

/// Extract the string value of `"key": "value"` from a JSON object body.
fn str_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let rest = &obj[obj.find(&pat)? + pat.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    Some(rest[..rest.find('"')?].to_string())
}

/// Extract the (possibly negative) integer value of `"key": n`.
fn int_field(obj: &str, key: &str) -> Option<i64> {
    let pat = format!("\"{key}\"");
    let rest = &obj[obj.find(&pat)? + pat.len()..];
    let rest = rest.trim_start().strip_prefix(':')?.trim_start();
    let end = rest
        .find(|c: char| !c.is_ascii_digit() && c != '-')
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Parse the `rows` array of a `BENCH_overlap.json` document. Tolerates a
/// missing `median_paired_delta_ns` (older artifacts) by deriving it as
/// `on - off` — without pairing that is the best available estimate.
fn parse_rows(doc: &str) -> Result<Vec<Row>, String> {
    let rows_at = doc.find("\"rows\"").ok_or("no \"rows\" key")?;
    let body = &doc[rows_at..];
    let open = body.find('[').ok_or("no rows array")?;
    let close = body.find(']').ok_or("unterminated rows array")?;
    let mut rows = Vec::new();
    let mut rest = &body[open + 1..close];
    while let Some(start) = rest.find('{') {
        let end = rest[start..].find('}').ok_or("unterminated row object")? + start;
        let obj = &rest[start..=end];
        let off = int_field(obj, "overlap_off_ns_per_step")
            .ok_or("row missing overlap_off_ns_per_step")?;
        let on = int_field(obj, "overlap_on_ns_per_step")
            .ok_or("row missing overlap_on_ns_per_step")?;
        if off <= 0 || on <= 0 {
            return Err(format!("degenerate timings in row: {obj}"));
        }
        rows.push(Row {
            strategy: str_field(obj, "strategy").ok_or("row missing strategy")?,
            off_ns: off as u64,
            on_ns: on as u64,
            paired_delta_ns: int_field(obj, "median_paired_delta_ns").unwrap_or(on - off),
        });
        rest = &rest[end + 1..];
    }
    if rows.is_empty() {
        return Err("rows array is empty".into());
    }
    Ok(rows)
}

/// Strategies where the overlap engine actually pipelines collectives
/// against compute and the gate demands parity-or-better. `no_shard`
/// reports but does not gate: its single fused all-reduce leaves nothing
/// to overlap, so its delta is pure machinery noise.
fn gated(strategy: &str) -> bool {
    !strategy.eq_ignore_ascii_case("no_shard")
}

fn check_overlap_wins(rows: &[Row]) -> Vec<String> {
    let mut violations = Vec::new();
    for r in rows {
        let floor = (r.off_ns as f64 * NOISE_FRAC) as i64;
        let verdict = if !gated(&r.strategy) {
            "info"
        } else if r.paired_delta_ns > floor {
            violations.push(format!(
                "{}: overlap-on slower than overlap-off by {} ns/step \
                 (paired median; noise floor {} ns)",
                r.strategy, r.paired_delta_ns, floor
            ));
            "FAIL"
        } else {
            "ok"
        };
        println!(
            "  {:>14}: off {:>10} ns  on {:>10} ns  paired-delta {:>8} ns  [{}]",
            r.strategy, r.off_ns, r.on_ns, r.paired_delta_ns, verdict
        );
    }
    violations
}

fn check_baseline(rows: &[Row], baseline: &[Row]) -> Vec<String> {
    let mut violations = Vec::new();
    for r in rows {
        let Some(b) = baseline.iter().find(|b| b.strategy == r.strategy) else {
            println!("  {:>14}: not in baseline, skipping", r.strategy);
            continue;
        };
        for (label, cur, base) in
            [("overlap-off", r.off_ns, b.off_ns), ("overlap-on", r.on_ns, b.on_ns)]
        {
            let limit = (base as f64 * (1.0 + REGRESSION_FRAC)) as u64;
            if cur > limit {
                violations.push(format!(
                    "{} {}: {} ns/step vs baseline {} ns/step (limit {})",
                    r.strategy, label, cur, base, limit
                ));
            }
        }
    }
    violations
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    let Some(current_path) = args.next() else {
        eprintln!("usage: perf_budget <current.json> [baseline.json]");
        return ExitCode::from(2);
    };
    let baseline_path = args.next();

    let doc = match std::fs::read_to_string(&current_path) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("perf_budget: cannot read {current_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let rows = match parse_rows(&doc) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("perf_budget: cannot parse {current_path}: {e}");
            return ExitCode::from(2);
        }
    };

    println!("perf_budget: overlap-on vs overlap-off ({current_path})");
    let mut violations = check_overlap_wins(&rows);

    if let Some(bp) = baseline_path {
        match std::fs::read_to_string(&bp) {
            Ok(bdoc) => match parse_rows(&bdoc) {
                Ok(baseline) => {
                    println!(
                        "perf_budget: regression vs baseline ({bp}, limit +{:.0}%)",
                        REGRESSION_FRAC * 100.0
                    );
                    violations.extend(check_baseline(&rows, &baseline));
                }
                Err(e) => {
                    eprintln!("perf_budget: cannot parse baseline {bp}: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("perf_budget: cannot read baseline {bp}: {e}");
                return ExitCode::from(2);
            }
        }
    }

    if violations.is_empty() {
        println!("perf_budget: PASS");
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            eprintln!("perf_budget: VIOLATION: {v}");
        }
        ExitCode::from(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DOC: &str = r#"{
  "bench": "fsdp_step_overlap",
  "world": 4,
  "rows": [
    {"strategy": "no_shard", "overlap_off_ns_per_step": 1000, "overlap_on_ns_per_step": 1100, "median_paired_delta_ns": 90},
    {"strategy": "full_shard", "overlap_off_ns_per_step": 2000, "overlap_on_ns_per_step": 1990, "median_paired_delta_ns": -12}
  ]
}"#;

    #[test]
    fn parses_rows() {
        let rows = parse_rows(DOC).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].strategy, "no_shard");
        assert_eq!(rows[0].off_ns, 1000);
        assert_eq!(rows[1].paired_delta_ns, -12);
    }

    #[test]
    fn missing_delta_field_falls_back_to_on_minus_off() {
        let doc = r#"{"rows": [{"strategy": "full_shard",
            "overlap_off_ns_per_step": 500, "overlap_on_ns_per_step": 520}]}"#;
        let rows = parse_rows(doc).unwrap();
        assert_eq!(rows[0].paired_delta_ns, 20);
    }

    #[test]
    fn no_shard_delta_does_not_gate_but_sharded_does() {
        let rows = parse_rows(DOC).unwrap();
        // no_shard's 9% delta is informational; full_shard is negative → ok.
        assert!(check_overlap_wins(&rows).is_empty());
        let mut bad = rows.clone();
        bad[1].paired_delta_ns = 200; // 10% of off, above the noise floor
        assert_eq!(check_overlap_wins(&bad).len(), 1);
    }

    #[test]
    fn delta_within_noise_floor_passes() {
        let mut rows = parse_rows(DOC).unwrap();
        rows[1].paired_delta_ns = (rows[1].off_ns as f64 * NOISE_FRAC) as i64;
        assert!(check_overlap_wins(&rows).is_empty());
    }

    #[test]
    fn baseline_regression_detected_per_cell() {
        let baseline = parse_rows(DOC).unwrap();
        let mut current = baseline.clone();
        assert!(check_baseline(&current, &baseline).is_empty());
        current[1].on_ns = (baseline[1].on_ns as f64 * 1.06) as u64;
        let v = check_baseline(&current, &baseline);
        assert_eq!(v.len(), 1);
        assert!(v[0].contains("full_shard overlap-on"));
    }

    #[test]
    fn strategy_absent_from_baseline_is_skipped() {
        let baseline = parse_rows(DOC).unwrap();
        let extra = r#"{"rows": [{"strategy": "hybrid_2",
            "overlap_off_ns_per_step": 900, "overlap_on_ns_per_step": 880}]}"#;
        let current = parse_rows(extra).unwrap();
        assert!(check_baseline(&current, &baseline).is_empty());
    }

    #[test]
    fn malformed_documents_error() {
        assert!(parse_rows("{}").is_err());
        assert!(parse_rows(r#"{"rows": []}"#).is_err());
        assert!(parse_rows(r#"{"rows": [{"strategy": "x"}]}"#).is_err());
        assert!(parse_rows(
            r#"{"rows": [{"strategy": "x", "overlap_off_ns_per_step": 0,
               "overlap_on_ns_per_step": 5}]}"#
        )
        .is_err());
    }
}
