//! Microbenchmark of the async submission machinery itself: steady-state
//! async all-reduce (steal path, pooled buffers) vs the same collective
//! called blocking, on a 2-rank group. The difference is the pure per-job
//! overhead of the nonblocking path — job cell, ring publish, claim,
//! result handoff — with the collective cost common to both sides.
//!
//! Usage: `bench_comm_path [iters]` (default 20000).

use geofm_collectives::{CellPoolStats, CommThread, Group};
use std::time::Instant;

fn main() {
    let iters: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let world: usize = std::env::args().nth(2).and_then(|s| s.parse().ok()).unwrap_or(2);
    // mode: "both" (default), "blocking" or "async" — single-path runs let
    // an external tool attribute context switches to one path
    let mode = std::env::args().nth(3).unwrap_or_else(|| "both".into());
    for len in [64usize, 1024, 8192] {
        let handles = Group::create(world);
        let results: Vec<(u64, u64, CellPoolStats)> = std::thread::scope(|s| {
            let joins: Vec<_> = handles
                .into_iter()
                .map(|h| {
                    let mode = mode.clone();
                    s.spawn(move || {
                        let data = vec![1.0f32; len];
                        let mut scratch = data.clone();
                        // warmup both paths
                        let comm = CommThread::spawn();
                        let g = comm.register(&h);
                        for _ in 0..100 {
                            h.try_all_reduce(&mut scratch).unwrap();
                            comm.recycle(comm.all_reduce_async(&g, &data).wait().unwrap());
                        }
                        let mut blocking = 0;
                        if mode != "async" {
                            let t0 = Instant::now();
                            for _ in 0..iters {
                                scratch.copy_from_slice(&data);
                                h.try_all_reduce(&mut scratch).unwrap();
                            }
                            blocking = t0.elapsed().as_nanos() as u64 / iters as u64;
                        }
                        let mut asynced = 0;
                        if mode != "blocking" {
                            let t0 = Instant::now();
                            for _ in 0..iters {
                                comm.recycle(comm.all_reduce_async(&g, &data).wait().unwrap());
                            }
                            asynced = t0.elapsed().as_nanos() as u64 / iters as u64;
                        }
                        let cells = comm.cell_stats();
                        comm.join();
                        (blocking, asynced, cells)
                    })
                })
                .collect();
            joins.into_iter().map(|j| j.join().unwrap()).collect()
        });
        let (b, a, cells) = results[0];
        // steady-state pool health: in the pooled path `allocs` must stay a
        // tiny warmup constant while `reuses` tracks `takes` — a per-op
        // alloc regression shows up here long before it moves the ns/op
        let reuse_pct = if cells.takes == 0 { 0.0 } else { 100.0 * cells.reuses as f64 / cells.takes as f64 };
        println!(
            "len {len:>5}: blocking {b:>7} ns/op  async-steal {a:>7} ns/op  delta {:>6} ns/op  \
             cells: {} takes / {} reuses ({reuse_pct:.1}%) / {} allocs",
            a as i64 - b as i64,
            cells.takes,
            cells.reuses,
            cells.allocs
        );
    }
}
