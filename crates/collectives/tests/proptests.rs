//! Property tests: collectives must agree with their sequential reference
//! for arbitrary rank counts, buffer lengths, and contents.

use geofm_collectives::{Algorithm, Group};
use proptest::prelude::*;

fn reference_sum(inputs: &[Vec<f32>]) -> Vec<f32> {
    let len = inputs[0].len();
    let mut out = vec![0.0f32; len];
    for input in inputs {
        for (o, &v) in out.iter_mut().zip(input) {
            *o += v;
        }
    }
    out
}

fn run_all_reduce(inputs: Vec<Vec<f32>>, algorithm: Algorithm) -> Vec<Vec<f32>> {
    let ranks = inputs.len();
    let handles = Group::create(ranks);
    let results: Vec<std::sync::Mutex<Vec<f32>>> =
        (0..ranks).map(|_| std::sync::Mutex::new(Vec::new())).collect();
    std::thread::scope(|s| {
        for (h, input) in handles.into_iter().zip(inputs.iter()) {
            let results = &results;
            let mut buf = input.clone();
            s.spawn(move || {
                let h = h.with_algorithm(algorithm);
                let rank = h.rank();
                h.all_reduce(&mut buf);
                *results[rank].lock().unwrap() = buf;
            });
        }
    });
    results.into_iter().map(|m| m.into_inner().unwrap()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn all_reduce_matches_reference(
        ranks in 1usize..6,
        len in 1usize..40,
        seed in 0u64..1000,
    ) {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 33) as f32 / (1u64 << 31) as f32) - 1.0
        };
        let inputs: Vec<Vec<f32>> =
            (0..ranks).map(|_| (0..len).map(|_| next() * 4.0).collect()).collect();
        let expect = reference_sum(&inputs);
        for algorithm in [Algorithm::Direct, Algorithm::Ring] {
            let results = run_all_reduce(inputs.clone(), algorithm);
            for (r, res) in results.iter().enumerate() {
                for (a, e) in res.iter().zip(&expect) {
                    prop_assert!((a - e).abs() < 1e-3,
                        "{:?} rank {}: {} vs {}", algorithm, r, a, e);
                }
            }
        }
    }

    #[test]
    fn reduce_scatter_concatenation_is_all_reduce(
        ranks in 1usize..5,
        len in 1usize..30,
        seed in 0u64..1000,
    ) {
        let inputs: Vec<Vec<f32>> = (0..ranks)
            .map(|r| (0..len).map(|i| ((seed as usize + r * 31 + i * 7) % 13) as f32).collect())
            .collect();
        let expect = reference_sum(&inputs);
        let handles = Group::create(ranks);
        let results: Vec<std::sync::Mutex<Vec<f32>>> =
            (0..ranks).map(|_| std::sync::Mutex::new(Vec::new())).collect();
        std::thread::scope(|s| {
            for (h, input) in handles.into_iter().zip(inputs.iter()) {
                let results = &results;
                s.spawn(move || {
                    let rank = h.rank();
                    let mut shard = Vec::new();
                    h.reduce_scatter(input, &mut shard);
                    *results[rank].lock().unwrap() = shard;
                });
            }
        });
        let concat: Vec<f32> =
            results.into_iter().flat_map(|m| m.into_inner().unwrap()).collect();
        prop_assert_eq!(concat, expect);
    }

    #[test]
    fn broadcast_propagates_any_root(
        ranks in 1usize..6,
        len in 1usize..20,
        root_sel in 0usize..100,
    ) {
        let root = root_sel % ranks;
        let handles = Group::create(ranks);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let mut buf = if h.rank() == root {
                        (0..len).map(|i| i as f32 + 0.5).collect::<Vec<_>>()
                    } else {
                        vec![0.0; len]
                    };
                    h.broadcast(&mut buf, root);
                    for (i, v) in buf.iter().enumerate() {
                        assert_eq!(*v, i as f32 + 0.5);
                    }
                });
            }
        });
    }
}
