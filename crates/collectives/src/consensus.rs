//! Fallible survivor-set consensus for elastic resharding.
//!
//! When a rank is lost permanently, the survivors must agree on *exactly*
//! which ranks continue before any of them re-partitions state — two ranks
//! resharding against different survivor sets would silently corrupt the
//! model. This module is the agreement round the elastic trainer runs
//! between draining the old world and building the new one.
//!
//! The protocol is two-phase over shared atomic slots (the same
//! shared-memory substrate the rest of `geofm-collectives` uses):
//!
//! 1. **View phase.** Every survivor posts its local *view* — a bitmask of
//!    the ranks it believes alive — then waits (bounded) for a view from
//!    every rank in that view. Dead ranks never post, so a survivor whose
//!    view still contains a dead rank times out instead of hanging.
//! 2. **Decision phase.** Each survivor computes its candidate set as the
//!    intersection of every view it collected, posts the candidate, and
//!    waits for the decision of every candidate member. All collected
//!    decisions must equal its own; any disagreement is an error, never a
//!    silent minority reshard.
//!
//! The round is deliberately **fallible**: a timeout, an empty or
//! self-excluding intersection, or a decision mismatch all surface as
//! [`ConsensusError`]. The caller (the trainer's restart loop) treats any
//! error as "no agreement — do not reshard", falling back to a structured
//! failure rather than risking a split world. Agreement is only declared
//! when every member of the agreed set has observably posted that same
//! set.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Slot flag: the low 63 bits carry the rank bitmask, bit 63 says "posted".
const POSTED: u64 = 1 << 63;
const MASK: u64 = POSTED - 1;

/// Why a consensus round failed for one participant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConsensusError {
    /// A rank this participant was waiting on never posted within the
    /// timeout (dead, or partitioned from the round).
    Timeout {
        /// The participant that gave up.
        rank: usize,
        /// The lowest awaited rank that never posted.
        waiting_on: usize,
    },
    /// The intersection of collected views came back empty.
    EmptyIntersection {
        /// The participant that observed it.
        rank: usize,
    },
    /// The agreed candidate set does not contain this participant — the
    /// rest of the world voted it out.
    Excluded {
        /// The excluded participant.
        rank: usize,
        /// The candidate set that excludes it.
        candidate: u64,
    },
    /// Another candidate member posted a different decision: the views were
    /// split and no coherent survivor set exists this round.
    Mismatch {
        /// The participant that observed the split.
        rank: usize,
        /// Its own candidate mask.
        ours: u64,
        /// The disagreeing peer's decision mask.
        theirs: u64,
        /// The disagreeing peer.
        peer: usize,
    },
}

impl std::fmt::Display for ConsensusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Timeout { rank, waiting_on } => {
                write!(f, "rank {rank}: consensus timeout waiting on rank {waiting_on}")
            }
            Self::EmptyIntersection { rank } => {
                write!(f, "rank {rank}: survivor views intersect to the empty set")
            }
            Self::Excluded { rank, candidate } => {
                write!(f, "rank {rank}: excluded from agreed survivor set {candidate:#b}")
            }
            Self::Mismatch { rank, ours, theirs, peer } => write!(
                f,
                "rank {rank}: decision split — ours {ours:#b}, rank {peer} decided {theirs:#b}"
            ),
        }
    }
}

impl std::error::Error for ConsensusError {}

/// One shared consensus round. Build it once (per reshard attempt), hand a
/// reference to every survivor thread, and have each call
/// [`SurvivorConsensus::propose`] with its local view.
#[derive(Debug)]
pub struct SurvivorConsensus {
    views: Vec<AtomicU64>,
    decisions: Vec<AtomicU64>,
    timeout: Duration,
}

impl SurvivorConsensus {
    /// A round for a world of `world` ranks (≤ 63 — the mask is one u64).
    /// `timeout` bounds each wait phase; a dead rank costs one timeout,
    /// never a hang.
    pub fn new(world: usize, timeout: Duration) -> Self {
        assert!(world > 0 && world <= 63, "world must fit a 63-bit mask");
        Self {
            views: (0..world).map(|_| AtomicU64::new(0)).collect(),
            decisions: (0..world).map(|_| AtomicU64::new(0)).collect(),
            timeout,
        }
    }

    /// The bitmask with bits `0..world` set — "everyone is alive".
    pub fn full_mask(world: usize) -> u64 {
        assert!(world <= 63);
        (1u64 << world) - 1
    }

    /// Run the round as participant `rank` with local view `view` (bitmask
    /// of ranks believed alive; must contain `rank` itself). On success
    /// every `Ok` holds the identical agreed survivor mask.
    pub fn propose(&self, rank: usize, view: u64) -> Result<u64, ConsensusError> {
        assert!(rank < self.views.len(), "rank out of range");
        assert!(view & (1 << rank) != 0, "a participant must believe itself alive");
        assert_eq!(view & !MASK, 0, "view uses reserved bits");
        self.views[rank].store(POSTED | view, Ordering::Release);

        // Phase 1: collect a view from every rank we believe alive.
        let collected = self.await_posted(rank, view, &self.views)?;
        let mut candidate = MASK;
        for &(_, v) in &collected {
            candidate &= v;
        }
        candidate &= view;
        if candidate == 0 {
            return Err(ConsensusError::EmptyIntersection { rank });
        }
        if candidate & (1 << rank) == 0 {
            return Err(ConsensusError::Excluded { rank, candidate });
        }

        // Phase 2: publish the candidate and verify every member of it
        // decided the same set.
        self.decisions[rank].store(POSTED | candidate, Ordering::Release);
        let decided = self.await_posted(rank, candidate, &self.decisions)?;
        for &(peer, d) in &decided {
            if d != candidate {
                return Err(ConsensusError::Mismatch { rank, ours: candidate, theirs: d, peer });
            }
        }
        Ok(candidate)
    }

    /// Wait (bounded) until every rank in `mask` has posted into `slots`;
    /// return the posted masks.
    fn await_posted(
        &self,
        rank: usize,
        mask: u64,
        slots: &[AtomicU64],
    ) -> Result<Vec<(usize, u64)>, ConsensusError> {
        let deadline = Instant::now() + self.timeout;
        loop {
            let mut missing = None;
            let mut out = Vec::new();
            for (r, slot) in slots.iter().enumerate() {
                if mask & (1 << r) == 0 {
                    continue;
                }
                let v = slot.load(Ordering::Acquire);
                if v & POSTED == 0 {
                    missing = Some(r);
                    break;
                }
                out.push((r, v & MASK));
            }
            match missing {
                None => return Ok(out),
                Some(waiting_on) => {
                    if Instant::now() >= deadline {
                        return Err(ConsensusError::Timeout { rank, waiting_on });
                    }
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_round(
        world: usize,
        views: Vec<Option<u64>>, // None = dead rank, never votes
        timeout: Duration,
    ) -> Vec<Option<Result<u64, ConsensusError>>> {
        let round = SurvivorConsensus::new(world, timeout);
        let mut out: Vec<Option<Result<u64, ConsensusError>>> = (0..world).map(|_| None).collect();
        std::thread::scope(|s| {
            let handles: Vec<_> = views
                .iter()
                .enumerate()
                .map(|(rank, view)| {
                    let round = &round;
                    let view = *view;
                    s.spawn(move || view.map(|v| round.propose(rank, v)))
                })
                .collect();
            for (rank, h) in handles.into_iter().enumerate() {
                out[rank] = h.join().unwrap();
            }
        });
        out
    }

    #[test]
    fn unanimous_world_agrees_on_itself() {
        let full = SurvivorConsensus::full_mask(4);
        let res = run_round(4, vec![Some(full); 4], Duration::from_secs(5));
        for (rank, r) in res.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap().as_ref().unwrap(), &full, "rank {rank}");
        }
    }

    #[test]
    fn survivors_agree_excluding_the_dead_rank() {
        // rank 3 is dead: it never votes, and every survivor's view
        // excludes it, so nobody waits on it and agreement is fast.
        let survivors = 0b0111u64;
        let res = run_round(4, vec![Some(survivors), Some(survivors), Some(survivors), None], {
            Duration::from_secs(5)
        });
        for r in res.iter().take(3) {
            assert_eq!(r.as_ref().unwrap().as_ref().unwrap(), &survivors);
        }
        assert!(res[3].is_none());
    }

    #[test]
    fn stale_view_of_a_dead_rank_times_out_not_hangs() {
        // rank 1 still believes dead rank 3 is alive → bounded timeout for
        // rank 1 in the view phase; and since ranks 0/2's candidate
        // includes rank 1 — who never reaches the decision phase — they
        // time out there. Nobody agrees, nobody hangs: the caller retries
        // the round once views have converged.
        let t0 = Instant::now();
        let res = run_round(
            4,
            vec![Some(0b0111), Some(0b1111), Some(0b0111), None],
            Duration::from_millis(100),
        );
        assert!(t0.elapsed() < Duration::from_secs(5), "must not hang");
        assert_eq!(
            res[1].as_ref().unwrap().as_ref().unwrap_err(),
            &ConsensusError::Timeout { rank: 1, waiting_on: 3 }
        );
        for rank in [0, 2] {
            assert_eq!(
                res[rank].as_ref().unwrap().as_ref().unwrap_err(),
                &ConsensusError::Timeout { rank, waiting_on: 1 },
                "rank {rank} must time out on rank 1's missing decision"
            );
        }
    }

    #[test]
    fn majority_evicts_a_suspect_who_still_votes() {
        // ranks 0–2 exclude rank 3 from their views; rank 3 votes for a
        // world that includes itself. The intersection evicts it: the
        // majority agrees on {0,1,2}, rank 3 learns it is excluded.
        let res = run_round(
            4,
            vec![Some(0b0111), Some(0b0111), Some(0b0111), Some(0b1111)],
            Duration::from_secs(5),
        );
        for r in res.iter().take(3) {
            assert_eq!(r.as_ref().unwrap().as_ref().unwrap(), &0b0111);
        }
        assert_eq!(
            res[3].as_ref().unwrap().as_ref().unwrap_err(),
            &ConsensusError::Excluded { rank: 3, candidate: 0b0111 }
        );
    }

    #[test]
    fn split_views_never_declare_minority_agreement() {
        // Views are split such that candidates differ across participants:
        // v0 = v2 = {0,1,2}, v1 = {0,1,2,3}, v3 = {0,1,3}. Ranks 0/2
        // compute candidate {0,1,2}; ranks 1/3 compute {0,1}. No subset may
        // quietly win: every outcome must be an error.
        let res = run_round(
            4,
            vec![Some(0b0111), Some(0b1111), Some(0b0111), Some(0b1011)],
            Duration::from_secs(5),
        );
        let mut errors = 0;
        for (rank, r) in res.iter().enumerate() {
            let r = r.as_ref().unwrap();
            assert!(r.is_err(), "rank {rank} must not declare agreement, got {r:?}");
            errors += 1;
        }
        assert_eq!(errors, 4);
        // and at least one participant names the split explicitly
        assert!(res.iter().any(|r| matches!(
            r.as_ref().unwrap(),
            Err(ConsensusError::Mismatch { .. })
        )));
    }

    #[test]
    fn empty_intersection_is_reported() {
        // Two participants with disjoint-except-self views: each one's
        // candidate intersection empties out (or excludes it).
        let res = run_round(2, vec![Some(0b01), Some(0b11)], Duration::from_millis(100));
        // rank 0's view is {0}: candidate {0}, agrees with itself alone.
        assert_eq!(res[0].as_ref().unwrap().as_ref().unwrap(), &0b01);
        // rank 1 waits on rank 0's view, intersects to {0}, excluding itself.
        assert_eq!(
            res[1].as_ref().unwrap().as_ref().unwrap_err(),
            &ConsensusError::Excluded { rank: 1, candidate: 0b01 }
        );
    }
}
