//! Adaptive collective timeouts.
//!
//! A fixed `with_timeout` bound has to be set pessimistically (minutes on a
//! real machine) or it false-positives on the first slow step; set that
//! loosely, a hung collective wastes the whole bound before detection. The
//! fix used by production trainers is to time out *relative to observed
//! latency*: track an EWMA of how long this rank's collectives actually
//! take and declare a peer lost once a wait exceeds a small multiple of
//! that. [`AdaptiveTimeout`] implements the tracker; [`super::group::RankHandle`]
//! consults it (combined with the static bound as a warmup fallback and
//! hard cap) on every internal barrier wait.

use geofm_telemetry::MetricsRegistry;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// EWMA smoothing factor: weight of the newest sample.
const ALPHA: f64 = 0.2;

/// Tuning for [`AdaptiveTimeout`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveTimeoutConfig {
    /// Never time out faster than this, however fast the EWMA says
    /// collectives are — guards against scheduler-noise false positives.
    pub floor: Duration,
    /// Timeout = `multiplier × EWMA` (clamped to `floor`). Production
    /// trainers use 5–20×; the default is 16.
    pub multiplier: f64,
    /// Number of observations before the adaptive bound activates; until
    /// then the handle falls back to its static timeout.
    pub warmup: u32,
}

impl Default for AdaptiveTimeoutConfig {
    fn default() -> Self {
        Self { floor: Duration::from_millis(50), multiplier: 16.0, warmup: 8 }
    }
}

/// Lock-free EWMA of per-collective latency, shared by all of a rank's
/// group handles so world/shard/replica collectives feed one estimate.
///
/// The EWMA is stored as `f64` bits in an `AtomicU64` and updated with a
/// CAS loop; a lost race just drops one sample's weight, which is fine for
/// a smoothed estimate.
#[derive(Debug)]
pub struct AdaptiveTimeout {
    cfg: AdaptiveTimeoutConfig,
    ewma_ns: AtomicU64,
    samples: AtomicU64,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl AdaptiveTimeout {
    /// New tracker with no observations.
    pub fn new(cfg: AdaptiveTimeoutConfig) -> Self {
        Self { cfg, ewma_ns: AtomicU64::new(0f64.to_bits()), samples: AtomicU64::new(0), metrics: None }
    }

    /// Record observed latencies into `metrics` as the
    /// `comm.collective.ns` histogram (per-rank registries give per-rank
    /// distributions; a shared registry gives the world view).
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// The tracker's configuration.
    pub fn config(&self) -> AdaptiveTimeoutConfig {
        self.cfg
    }

    /// Feed one observed collective latency.
    pub fn observe(&self, elapsed: Duration) {
        let ns = elapsed.as_nanos() as f64;
        let first = self.samples.fetch_add(1, Ordering::AcqRel) == 0;
        let mut cur = self.ewma_ns.load(Ordering::Acquire);
        loop {
            let old = f64::from_bits(cur);
            let new = if first { ns } else { old + ALPHA * (ns - old) };
            match self.ewma_ns.compare_exchange_weak(
                cur,
                new.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
        if let Some(m) = &self.metrics {
            m.histogram("comm.collective.ns").record(elapsed.as_nanos() as u64);
        }
    }

    /// Forget everything observed so far: EWMA back to zero, sample count
    /// back into the warmup window. Called after an elastic recovery or
    /// reshard — latencies measured in the old world (possibly inflated by
    /// the dying rank) must not set the timeout bound for the new one.
    pub fn reset(&self) {
        self.samples.store(0, Ordering::Release);
        self.ewma_ns.store(0f64.to_bits(), Ordering::Release);
    }

    /// Observations recorded so far.
    pub fn samples(&self) -> u64 {
        self.samples.load(Ordering::Acquire)
    }

    /// Current smoothed per-collective latency.
    pub fn ewma(&self) -> Duration {
        Duration::from_nanos(f64::from_bits(self.ewma_ns.load(Ordering::Acquire)) as u64)
    }

    /// The adaptive bound: `max(floor, multiplier × EWMA)`, or `None`
    /// while still inside the warmup window.
    pub fn current(&self) -> Option<Duration> {
        if self.samples() < u64::from(self.cfg.warmup) {
            return None;
        }
        let ewma = f64::from_bits(self.ewma_ns.load(Ordering::Acquire));
        let bound = Duration::from_nanos((ewma * self.cfg.multiplier) as u64);
        Some(bound.max(self.cfg.floor))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_gates_activation() {
        let t = AdaptiveTimeout::new(AdaptiveTimeoutConfig {
            floor: Duration::from_millis(1),
            multiplier: 10.0,
            warmup: 3,
        });
        assert_eq!(t.current(), None);
        t.observe(Duration::from_millis(2));
        t.observe(Duration::from_millis(2));
        assert_eq!(t.current(), None, "still warming up");
        t.observe(Duration::from_millis(2));
        let bound = t.current().expect("warmed up");
        // EWMA = 2 ms exactly (identical samples), bound = 20 ms
        assert!(bound >= Duration::from_millis(19) && bound <= Duration::from_millis(21), "{bound:?}");
    }

    #[test]
    fn floor_is_respected() {
        let t = AdaptiveTimeout::new(AdaptiveTimeoutConfig {
            floor: Duration::from_millis(100),
            multiplier: 2.0,
            warmup: 1,
        });
        t.observe(Duration::from_micros(10));
        assert_eq!(t.current(), Some(Duration::from_millis(100)));
    }

    #[test]
    fn ewma_tracks_shift_in_latency() {
        let t = AdaptiveTimeout::new(AdaptiveTimeoutConfig {
            floor: Duration::from_nanos(1),
            multiplier: 1.0,
            warmup: 1,
        });
        for _ in 0..50 {
            t.observe(Duration::from_millis(1));
        }
        let before = t.ewma();
        for _ in 0..50 {
            t.observe(Duration::from_millis(10));
        }
        let after = t.ewma();
        assert!(before < Duration::from_millis(2), "{before:?}");
        assert!(after > Duration::from_millis(8), "EWMA must converge upward: {after:?}");
    }

    #[test]
    fn reset_returns_to_warmup() {
        let t = AdaptiveTimeout::new(AdaptiveTimeoutConfig {
            floor: Duration::from_millis(1),
            multiplier: 10.0,
            warmup: 2,
        });
        t.observe(Duration::from_millis(500));
        t.observe(Duration::from_millis(500));
        assert!(t.current().is_some(), "warmed up on stale world");
        t.reset();
        assert_eq!(t.current(), None, "back inside warmup after reset");
        assert_eq!(t.samples(), 0);
        assert_eq!(t.ewma(), Duration::ZERO);
        // fresh observations rebuild the estimate from scratch
        t.observe(Duration::from_millis(1));
        t.observe(Duration::from_millis(1));
        let bound = t.current().expect("re-warmed");
        assert!(bound < Duration::from_millis(50), "stale 500 ms EWMA must be gone: {bound:?}");
    }

    #[test]
    fn histogram_is_fed_when_metrics_attached() {
        let m = Arc::new(MetricsRegistry::new());
        let t = AdaptiveTimeout::new(AdaptiveTimeoutConfig::default()).with_metrics(Arc::clone(&m));
        t.observe(Duration::from_millis(1));
        t.observe(Duration::from_millis(2));
        assert_eq!(m.histogram("comm.collective.ns").count(), 2);
    }
}
