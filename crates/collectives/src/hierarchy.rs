//! Group hierarchies for HYBRID_SHARD: a *shard group* (model sharded across
//! its ranks, all-gather/reduce-scatter inside) and a *replica group*
//! (model replicated across groups, all-reduce between them) — §III-C of the
//! paper.

use crate::adaptive::{AdaptiveTimeout, AdaptiveTimeoutConfig};
use crate::group::{Group, RankHandle};
use crate::guard::SabotageCell;
use crate::traffic::TrafficCounter;
use geofm_telemetry::MetricsRegistry;
use std::sync::Arc;
use std::time::Duration;

/// Shape of a two-level hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HierarchyLayout {
    /// Total ranks.
    pub world: usize,
    /// Ranks per shard group (the paper's "sharding-group" size).
    pub shard_size: usize,
}

impl HierarchyLayout {
    /// Number of shard groups (= replica-group size).
    pub fn num_shard_groups(&self) -> usize {
        self.world / self.shard_size
    }
}

/// One rank's handles to all three groups.
#[derive(Debug, Clone)]
pub struct RankGroups {
    /// Global rank.
    pub rank: usize,
    /// The full world group.
    pub world: RankHandle,
    /// This rank's shard group (contiguous ranks; size = `shard_size`).
    pub shard: RankHandle,
    /// This rank's replica group (same shard position across shard groups).
    pub replica: RankHandle,
}

impl RankGroups {
    /// Bound every barrier wait in all three groups' collectives (see
    /// [`RankHandle::with_timeout`]). Used by the resilient trainer so a
    /// lost rank surfaces as `Err(RankLost)` instead of a deadlock.
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.world = self.world.with_timeout(timeout);
        self.shard = self.shard.with_timeout(timeout);
        self.replica = self.replica.with_timeout(timeout);
        self
    }

    /// Attach one shared [`AdaptiveTimeout`] tracker to all three handles:
    /// every collective this rank runs — world, shard or replica — feeds a
    /// single latency EWMA, and once warmed up the adaptive bound tightens
    /// the static timeout on all of them (see
    /// [`RankHandle::with_adaptive`]). Pass a metrics registry to record
    /// observed latencies as the `comm.collective.ns` histogram.
    pub fn with_adaptive_timeout(
        mut self,
        cfg: AdaptiveTimeoutConfig,
        metrics: Option<Arc<MetricsRegistry>>,
    ) -> Self {
        let mut tracker = AdaptiveTimeout::new(cfg);
        if let Some(m) = metrics {
            tracker = tracker.with_metrics(m);
        }
        let tracker = Arc::new(tracker);
        self.world = self.world.with_adaptive(Arc::clone(&tracker));
        self.shard = self.shard.with_adaptive(Arc::clone(&tracker));
        self.replica = self.replica.with_adaptive(tracker);
        self
    }

    /// Like [`RankGroups::with_adaptive_timeout`], but attaching a tracker
    /// the **caller** owns. The elastic trainer uses this to keep one
    /// tracker per rank alive across restart attempts so it can
    /// [`AdaptiveTimeout::reset`] them all after an elastic recovery or
    /// reshard — latencies learned in the old world (inflated by a dying
    /// peer) must not time out healthy collectives in the new one.
    pub fn with_adaptive_tracker(mut self, tracker: Arc<AdaptiveTimeout>) -> Self {
        self.world = self.world.with_adaptive(Arc::clone(&tracker));
        self.shard = self.shard.with_adaptive(Arc::clone(&tracker));
        self.replica = self.replica.with_adaptive(tracker);
        self
    }

    /// Emulate a degraded link for this rank across all three groups (see
    /// [`RankHandle::set_link_slowdown`]). `1.0` restores a healthy link.
    pub fn set_link_slowdown(&self, slowdown: f64) {
        self.world.set_link_slowdown(slowdown);
        self.shard.set_link_slowdown(slowdown);
        self.replica.set_link_slowdown(slowdown);
    }

    /// Enable (or disable) post-reduce checksum verification on all three
    /// handles (see [`RankHandle::with_checksums`]). All ranks of the
    /// hierarchy must agree on the setting (SPMD contract).
    pub fn with_checksums(mut self, verify: bool) -> Self {
        self.world = self.world.with_checksums(verify);
        self.shard = self.shard.with_checksums(verify);
        self.replica = self.replica.with_checksums(verify);
        self
    }

    /// Share one [`SabotageCell`] across all three handles so an armed
    /// bit flip hits this rank's *next* reduce, whichever group runs it —
    /// mirroring how the link-slowdown injector is shared. Wired by
    /// [`ProcessGroups::hierarchy_with_traffic`]; exposed for tests that
    /// build handles directly.
    pub fn with_shared_sabotage(mut self, cell: Arc<SabotageCell>) -> Self {
        self.world = self.world.with_sabotage(Arc::clone(&cell));
        self.shard = self.shard.with_sabotage(Arc::clone(&cell));
        self.replica = self.replica.with_sabotage(cell);
        self
    }

    /// Arm a one-shot bit flip in this rank's next reduce contribution
    /// (see [`RankHandle::arm_bitflip`]). Safe to call from the fault
    /// driver while the rank's worker thread holds its own clone.
    pub fn arm_bitflip(&self, bit: u32) {
        // the cell is shared across the three handles, so any one arms all
        self.world.arm_bitflip(bit);
    }

    /// Poison all three groups this rank belongs to. A dying rank calls
    /// this so every peer — whichever group it is currently blocked in —
    /// unblocks within one timeout period.
    pub fn poison_all(&self) {
        self.world.poison();
        self.shard.poison();
        self.replica.poison();
    }

    /// Whether any of this rank's groups has been poisoned.
    pub fn any_poisoned(&self) -> bool {
        self.world.is_poisoned() || self.shard.is_poisoned() || self.replica.is_poisoned()
    }
}

/// Factory for group hierarchies.
pub struct ProcessGroups;

impl ProcessGroups {
    /// Build the HYBRID hierarchy: contiguous shard groups of `shard_size`,
    /// replica groups across them. All groups share one traffic counter.
    ///
    /// # Panics
    /// Panics unless `shard_size` divides `world`.
    pub fn hierarchy(layout: HierarchyLayout) -> Vec<RankGroups> {
        Self::hierarchy_with_traffic(layout, Arc::new(TrafficCounter::new()))
    }

    /// [`ProcessGroups::hierarchy`] with a caller-supplied traffic counter,
    /// e.g. one backed by a shared telemetry registry.
    pub fn hierarchy_with_traffic(
        layout: HierarchyLayout,
        traffic: Arc<TrafficCounter>,
    ) -> Vec<RankGroups> {
        let HierarchyLayout { world, shard_size } = layout;
        assert!(world > 0 && shard_size > 0, "sizes must be positive");
        assert_eq!(world % shard_size, 0, "shard size {} must divide world {}", shard_size, world);
        let world_handles = Group::create_with_traffic(world, Arc::clone(&traffic));

        let groups = world / shard_size;
        // shard groups: one per contiguous block
        let mut shard_handles: Vec<Vec<RankHandle>> = (0..groups)
            .map(|_| Group::create_with_traffic(shard_size, Arc::clone(&traffic)))
            .collect();
        // replica groups: one per shard position
        let mut replica_handles: Vec<Vec<RankHandle>> = (0..shard_size)
            .map(|_| Group::create_with_traffic(groups, Arc::clone(&traffic)))
            .collect();

        world_handles
            .into_iter()
            .enumerate()
            .map(|(rank, world_h)| {
                let g = rank / shard_size;
                let p = rank % shard_size;
                // within shard group g, this rank sits at position p;
                // within replica group p, it sits at position g.
                let shard = shard_handles[g][p].clone();
                let replica = replica_handles[p][g].clone();
                // mark slots consumed (handles are clones sharing group state;
                // the position-indexing above is what assigns rank ids)
                let _ = (&mut shard_handles, &mut replica_handles);
                RankGroups { rank, world: world_h, shard, replica }
                    .with_shared_sabotage(Arc::new(SabotageCell::new()))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_counts() {
        let l = HierarchyLayout { world: 16, shard_size: 4 };
        assert_eq!(l.num_shard_groups(), 4);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn rejects_indivisible() {
        let _ = ProcessGroups::hierarchy(HierarchyLayout { world: 6, shard_size: 4 });
    }

    #[test]
    fn ranks_and_sizes_are_consistent() {
        let groups = ProcessGroups::hierarchy(HierarchyLayout { world: 8, shard_size: 2 });
        assert_eq!(groups.len(), 8);
        for (i, g) in groups.iter().enumerate() {
            assert_eq!(g.rank, i);
            assert_eq!(g.world.size(), 8);
            assert_eq!(g.world.rank(), i);
            assert_eq!(g.shard.size(), 2);
            assert_eq!(g.shard.rank(), i % 2);
            assert_eq!(g.replica.size(), 4);
            assert_eq!(g.replica.rank(), i / 2);
        }
    }

    #[test]
    fn hierarchical_all_reduce_equals_flat() {
        // reduce-scatter in shard group + all-reduce of shards in replica
        // group + all-gather in shard group ≡ world all-reduce.
        let layout = HierarchyLayout { world: 8, shard_size: 4 };
        let groups = ProcessGroups::hierarchy(layout);
        std::thread::scope(|s| {
            for g in groups {
                s.spawn(move || {
                    let base: Vec<f32> = (0..12).map(|i| (i + g.rank * 12) as f32).collect();
                    let expect: Vec<f32> = (0..12)
                        .map(|i| (0..8).map(|r| (i + r * 12) as f32).sum())
                        .collect();

                    // flat
                    let mut flat = base.clone();
                    g.world.all_reduce(&mut flat);
                    assert_eq!(flat, expect);

                    // hierarchical
                    let mut shard = Vec::new();
                    g.shard.reduce_scatter(&base, &mut shard);
                    g.replica.all_reduce(&mut shard);
                    let mut full = Vec::new();
                    g.shard.all_gather(&shard, &mut full);
                    assert_eq!(full, expect);
                });
            }
        });
    }

    #[test]
    fn shard_groups_are_isolated() {
        // an all-reduce within shard groups must not mix data across groups
        let groups = ProcessGroups::hierarchy(HierarchyLayout { world: 4, shard_size: 2 });
        std::thread::scope(|s| {
            for g in groups {
                s.spawn(move || {
                    let mut buf = vec![g.rank as f32];
                    g.shard.all_reduce(&mut buf);
                    let expect = if g.rank < 2 { 1.0 } else { 5.0 }; // 0+1 / 2+3
                    assert_eq!(buf[0], expect);
                });
            }
        });
    }

    #[test]
    fn armed_bitflip_fires_in_whichever_group_reduces_first() {
        use crate::guard::CollectiveError;

        // arm via the RankGroups-level injector; the shard-group
        // reduce-scatter (the first reduce FullShard runs) must trip, and
        // the verdict must name the culprit's *shard-local* rank.
        let groups = ProcessGroups::hierarchy(HierarchyLayout { world: 4, shard_size: 2 });
        std::thread::scope(|s| {
            for g in groups {
                s.spawn(move || {
                    let g = g.with_checksums(true);
                    if g.rank == 3 {
                        g.arm_bitflip(11);
                    }
                    let buf = vec![1.0f32; 8];
                    let mut out = Vec::new();
                    let r = g.shard.try_reduce_scatter(&buf, &mut out);
                    if g.rank >= 2 {
                        // rank 3 sits in shard group 1 at local rank 1
                        match r {
                            Err(CollectiveError::Corrupt(c)) => assert_eq!(c.rank, 1),
                            other => panic!("rank {}: expected Corrupt, got {other:?}", g.rank),
                        }
                    } else {
                        // shard group 0 saw only clean contributions
                        r.unwrap();
                    }
                    // the flip was consumed: the replica all-reduce is clean
                    let mut rep = vec![1.0f32; 4];
                    g.replica.try_all_reduce(&mut rep).unwrap();
                    assert!(rep.iter().all(|&v| v == 2.0));
                });
            }
        });
    }

    #[test]
    fn shared_traffic_counter_aggregates() {
        let groups = ProcessGroups::hierarchy(HierarchyLayout { world: 4, shard_size: 2 });
        let traffic = groups[0].world.traffic();
        std::thread::scope(|s| {
            for g in groups {
                s.spawn(move || {
                    let mut buf = vec![1.0f32; 10];
                    g.shard.all_reduce(&mut buf);
                    g.replica.all_reduce(&mut buf);
                });
            }
        });
        let snap = traffic.snapshot();
        assert_eq!(snap.calls, 8);
        assert!(snap.all_reduce > 0);
    }
}
