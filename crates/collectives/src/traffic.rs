//! Logical communication-volume accounting.
//!
//! Every collective records the bytes the *ring algorithm* for that
//! collective would move per rank on a real network. These counters are the
//! bridge between the real threaded engine (`geofm-fsdp`) and the Frontier
//! cost model (`geofm-frontier`): both speak "bytes per rank per collective
//! kind", and an integration test asserts they agree.
//!
//! Since the telemetry refactor, [`TrafficCounter`] is a façade over a
//! [`geofm_telemetry::MetricsRegistry`]: each kind owns a pair of counters
//! (`comm.<kind>.bytes`, `comm.<kind>.calls`), so communication volume shows
//! up in the same [`MetricsSnapshot`](geofm_telemetry::MetricsSnapshot) as
//! phase timings and loader gauges when a shared registry is supplied via
//! [`TrafficCounter::with_registry`]. The original `snapshot()`/`reset()`
//! API is preserved on top.

use geofm_telemetry::{Counter, MetricsRegistry};
use std::sync::Arc;

/// The collective operations used by the sharding strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Sum-reduce to all ranks.
    AllReduce,
    /// Concatenate per-rank shards to all ranks.
    AllGather,
    /// Sum-reduce, leaving each rank with one shard.
    ReduceScatter,
    /// One root's buffer to all ranks.
    Broadcast,
}

impl CollectiveKind {
    /// All kinds (for iteration in reports).
    pub const ALL: [CollectiveKind; 4] =
        [Self::AllReduce, Self::AllGather, Self::ReduceScatter, Self::Broadcast];

    /// Stable snake-case name, used as the metric-name stem.
    pub fn name(&self) -> &'static str {
        match self {
            Self::AllReduce => "all_reduce",
            Self::AllGather => "all_gather",
            Self::ReduceScatter => "reduce_scatter",
            Self::Broadcast => "broadcast",
        }
    }

    fn index(&self) -> usize {
        match self {
            Self::AllReduce => 0,
            Self::AllGather => 1,
            Self::ReduceScatter => 2,
            Self::Broadcast => 3,
        }
    }

    /// Ring-algorithm bytes moved **per rank** for a collective over
    /// `total_bytes` of payload among `n` ranks.
    ///
    /// * all-gather / reduce-scatter: `(n-1)/n · total`
    /// * all-reduce: `2(n-1)/n · total` (reduce-scatter + all-gather)
    /// * broadcast: `(n-1)/n · total` (pipelined ring)
    pub fn ring_bytes_per_rank(&self, total_bytes: u64, n: usize) -> u64 {
        if n <= 1 {
            return 0;
        }
        let frac = |b: u64| b * (n as u64 - 1) / n as u64;
        match self {
            Self::AllReduce => 2 * frac(total_bytes),
            Self::AllGather | Self::ReduceScatter | Self::Broadcast => frac(total_bytes),
        }
    }
}

/// Thread-safe accumulated traffic per collective kind, backed by a
/// [`MetricsRegistry`].
#[derive(Debug)]
pub struct TrafficCounter {
    registry: Arc<MetricsRegistry>,
    /// Cached handles indexed by [`CollectiveKind::index`]; recording stays
    /// lock-free even though the metrics live in a shared registry.
    bytes: [Arc<Counter>; 4],
    calls: [Arc<Counter>; 4],
}

impl Default for TrafficCounter {
    fn default() -> Self {
        Self::with_registry(Arc::new(MetricsRegistry::new()))
    }
}

/// An immutable snapshot of a [`TrafficCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficSnapshot {
    /// Bytes attributed to all-reduce.
    pub all_reduce: u64,
    /// Bytes attributed to all-gather.
    pub all_gather: u64,
    /// Bytes attributed to reduce-scatter.
    pub reduce_scatter: u64,
    /// Bytes attributed to broadcast.
    pub broadcast: u64,
    /// Number of collective calls.
    pub calls: u64,
}

impl TrafficSnapshot {
    /// Total bytes across all kinds.
    pub fn total(&self) -> u64 {
        self.all_reduce + self.all_gather + self.reduce_scatter + self.broadcast
    }
}

impl TrafficCounter {
    /// New zeroed counter over a private registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Counter recording into `registry` under `comm.<kind>.bytes` /
    /// `comm.<kind>.calls`, so communication volume appears alongside
    /// whatever else the caller registers there.
    pub fn with_registry(registry: Arc<MetricsRegistry>) -> Self {
        let handle = |suffix: &str| {
            CollectiveKind::ALL
                .map(|k| registry.counter(&format!("comm.{}.{}", k.name(), suffix)))
        };
        let bytes = handle("bytes");
        let calls = handle("calls");
        Self { registry, bytes, calls }
    }

    /// The registry backing this counter.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }

    /// Record one collective of `kind` moving `bytes` (per-rank logical).
    pub fn record(&self, kind: CollectiveKind, bytes: u64) {
        let i = kind.index();
        self.bytes[i].inc(bytes);
        self.calls[i].inc(1);
    }

    /// Bytes recorded for one kind.
    pub fn bytes_for(&self, kind: CollectiveKind) -> u64 {
        self.bytes[kind.index()].get()
    }

    /// Calls recorded for one kind.
    pub fn calls_for(&self, kind: CollectiveKind) -> u64 {
        self.calls[kind.index()].get()
    }

    /// Snapshot current totals.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            all_reduce: self.bytes_for(CollectiveKind::AllReduce),
            all_gather: self.bytes_for(CollectiveKind::AllGather),
            reduce_scatter: self.bytes_for(CollectiveKind::ReduceScatter),
            broadcast: self.bytes_for(CollectiveKind::Broadcast),
            calls: self.calls.iter().map(|c| c.get()).sum(),
        }
    }

    /// Reset this counter's metrics to zero (other metrics in a shared
    /// registry are untouched).
    pub fn reset(&self) {
        for c in self.bytes.iter().chain(&self.calls) {
            c.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_accounting_formulas() {
        // 8 ranks, 800 bytes total
        assert_eq!(CollectiveKind::AllGather.ring_bytes_per_rank(800, 8), 700);
        assert_eq!(CollectiveKind::ReduceScatter.ring_bytes_per_rank(800, 8), 700);
        assert_eq!(CollectiveKind::AllReduce.ring_bytes_per_rank(800, 8), 1400);
        assert_eq!(CollectiveKind::Broadcast.ring_bytes_per_rank(800, 8), 700);
    }

    #[test]
    fn single_rank_moves_nothing() {
        for k in CollectiveKind::ALL {
            assert_eq!(k.ring_bytes_per_rank(1000, 1), 0);
        }
    }

    #[test]
    fn record_and_snapshot() {
        let c = TrafficCounter::new();
        c.record(CollectiveKind::AllReduce, 100);
        c.record(CollectiveKind::AllGather, 50);
        c.record(CollectiveKind::AllReduce, 10);
        let s = c.snapshot();
        assert_eq!(s.all_reduce, 110);
        assert_eq!(s.all_gather, 50);
        assert_eq!(s.calls, 3);
        assert_eq!(s.total(), 160);
        assert_eq!(c.calls_for(CollectiveKind::AllReduce), 2);
        c.reset();
        assert_eq!(c.snapshot().total(), 0);
    }

    #[test]
    fn shared_registry_exposes_comm_metrics() {
        let reg = Arc::new(MetricsRegistry::new());
        let c = TrafficCounter::with_registry(reg.clone());
        c.record(CollectiveKind::ReduceScatter, 640);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("comm.reduce_scatter.bytes"), 640);
        assert_eq!(snap.counter("comm.reduce_scatter.calls"), 1);
        assert_eq!(snap.counter("comm.all_gather.bytes"), 0);
    }
}
