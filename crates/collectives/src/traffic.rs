//! Logical communication-volume accounting.
//!
//! Every collective records the bytes the *ring algorithm* for that
//! collective would move per rank on a real network. These counters are the
//! bridge between the real threaded engine (`geofm-fsdp`) and the Frontier
//! cost model (`geofm-frontier`): both speak "bytes per rank per collective
//! kind", and an integration test asserts they agree.

use std::sync::atomic::{AtomicU64, Ordering};

/// The collective operations used by the sharding strategies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CollectiveKind {
    /// Sum-reduce to all ranks.
    AllReduce,
    /// Concatenate per-rank shards to all ranks.
    AllGather,
    /// Sum-reduce, leaving each rank with one shard.
    ReduceScatter,
    /// One root's buffer to all ranks.
    Broadcast,
}

impl CollectiveKind {
    /// All kinds (for iteration in reports).
    pub const ALL: [CollectiveKind; 4] =
        [Self::AllReduce, Self::AllGather, Self::ReduceScatter, Self::Broadcast];

    /// Ring-algorithm bytes moved **per rank** for a collective over
    /// `total_bytes` of payload among `n` ranks.
    ///
    /// * all-gather / reduce-scatter: `(n-1)/n · total`
    /// * all-reduce: `2(n-1)/n · total` (reduce-scatter + all-gather)
    /// * broadcast: `(n-1)/n · total` (pipelined ring)
    pub fn ring_bytes_per_rank(&self, total_bytes: u64, n: usize) -> u64 {
        if n <= 1 {
            return 0;
        }
        let frac = |b: u64| b * (n as u64 - 1) / n as u64;
        match self {
            Self::AllReduce => 2 * frac(total_bytes),
            Self::AllGather | Self::ReduceScatter | Self::Broadcast => frac(total_bytes),
        }
    }
}

/// Thread-safe accumulated traffic per collective kind.
#[derive(Debug, Default)]
pub struct TrafficCounter {
    all_reduce: AtomicU64,
    all_gather: AtomicU64,
    reduce_scatter: AtomicU64,
    broadcast: AtomicU64,
    calls: AtomicU64,
}

/// An immutable snapshot of a [`TrafficCounter`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TrafficSnapshot {
    /// Bytes attributed to all-reduce.
    pub all_reduce: u64,
    /// Bytes attributed to all-gather.
    pub all_gather: u64,
    /// Bytes attributed to reduce-scatter.
    pub reduce_scatter: u64,
    /// Bytes attributed to broadcast.
    pub broadcast: u64,
    /// Number of collective calls.
    pub calls: u64,
}

impl TrafficSnapshot {
    /// Total bytes across all kinds.
    pub fn total(&self) -> u64 {
        self.all_reduce + self.all_gather + self.reduce_scatter + self.broadcast
    }
}

impl TrafficCounter {
    /// New zeroed counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one collective of `kind` moving `bytes` (per-rank logical).
    pub fn record(&self, kind: CollectiveKind, bytes: u64) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        match kind {
            CollectiveKind::AllReduce => self.all_reduce.fetch_add(bytes, Ordering::Relaxed),
            CollectiveKind::AllGather => self.all_gather.fetch_add(bytes, Ordering::Relaxed),
            CollectiveKind::ReduceScatter => {
                self.reduce_scatter.fetch_add(bytes, Ordering::Relaxed)
            }
            CollectiveKind::Broadcast => self.broadcast.fetch_add(bytes, Ordering::Relaxed),
        };
    }

    /// Snapshot current totals.
    pub fn snapshot(&self) -> TrafficSnapshot {
        TrafficSnapshot {
            all_reduce: self.all_reduce.load(Ordering::Relaxed),
            all_gather: self.all_gather.load(Ordering::Relaxed),
            reduce_scatter: self.reduce_scatter.load(Ordering::Relaxed),
            broadcast: self.broadcast.load(Ordering::Relaxed),
            calls: self.calls.load(Ordering::Relaxed),
        }
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.all_reduce.store(0, Ordering::Relaxed);
        self.all_gather.store(0, Ordering::Relaxed);
        self.reduce_scatter.store(0, Ordering::Relaxed);
        self.broadcast.store(0, Ordering::Relaxed);
        self.calls.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_accounting_formulas() {
        // 8 ranks, 800 bytes total
        assert_eq!(CollectiveKind::AllGather.ring_bytes_per_rank(800, 8), 700);
        assert_eq!(CollectiveKind::ReduceScatter.ring_bytes_per_rank(800, 8), 700);
        assert_eq!(CollectiveKind::AllReduce.ring_bytes_per_rank(800, 8), 1400);
        assert_eq!(CollectiveKind::Broadcast.ring_bytes_per_rank(800, 8), 700);
    }

    #[test]
    fn single_rank_moves_nothing() {
        for k in CollectiveKind::ALL {
            assert_eq!(k.ring_bytes_per_rank(1000, 1), 0);
        }
    }

    #[test]
    fn record_and_snapshot() {
        let c = TrafficCounter::new();
        c.record(CollectiveKind::AllReduce, 100);
        c.record(CollectiveKind::AllGather, 50);
        c.record(CollectiveKind::AllReduce, 10);
        let s = c.snapshot();
        assert_eq!(s.all_reduce, 110);
        assert_eq!(s.all_gather, 50);
        assert_eq!(s.calls, 3);
        assert_eq!(s.total(), 160);
        c.reset();
        assert_eq!(c.snapshot().total(), 0);
    }
}
