//! Process groups and the direct (chunk-parallel) collectives.
//!
//! Every collective comes in two flavours: the classic infallible form
//! (`all_reduce`, …) used by code that assumes a healthy world, and a
//! fallible `try_*` form that returns [`RankLost`] when a peer of the
//! group has died or stopped responding. The fallible path is what the
//! resilient FSDP trainer drives: a handle configured via
//! [`RankHandle::with_timeout`] bounds every internal barrier wait, and a
//! rank that detects a failure calls [`RankHandle::poison`] so all peers
//! unblock within one timeout period instead of deadlocking.
//!
//! The reduce-type collectives (`try_all_reduce`, `try_reduce_scatter`)
//! additionally carry a checksum layer against *silent data corruption*:
//! every rank publishes per-chunk CRC32s of its contribution before the
//! data exchange, and a handle configured via
//! [`RankHandle::with_checksums`] re-verifies every chunk it read after
//! the exchange. A detected bit flip surfaces as
//! [`CollectiveError::Corrupt`] on **every** rank — the collective still
//! completes all of its barriers, so the group is not poisoned and the
//! caller can recover in-band (discard the garbage result, roll back,
//! retry or skip). Verification is only implemented for the direct
//! algorithm; the ring path reports corruption-free transfers.

use crate::adaptive::AdaptiveTimeout;
use crate::barrier::{RankLost, SenseBarrier};
use crate::guard::{self, CollectiveError, CorruptPayload, SabotageCell};
use crate::ring;
use crate::traffic::{CollectiveKind, TrafficCounter};
use parking_lot::RwLock;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Which collective algorithm a handle uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Algorithm {
    /// Chunk-parallel shared-memory algorithm (default, work-optimal here).
    #[default]
    Direct,
    /// Classical 2(n−1)-step ring (matches RCCL's data movement).
    Ring,
}

/// Shared state of one process group.
#[derive(Debug)]
pub struct Group {
    size: usize,
    /// Per-rank contribution slots.
    mailboxes: Vec<RwLock<Vec<f32>>>,
    /// Per-chunk reduction results (chunk owner = rank index).
    chunk_results: Vec<RwLock<Vec<f32>>>,
    /// Published contribution checksums for the reduce collectives,
    /// sender-major: `checksums[sender * size + chunk]` is the CRC32 of
    /// `sender`'s true payload over `chunk_bounds(len, size, chunk)`.
    /// Rewritten by every checksummed reduce before its first barrier.
    checksums: Vec<AtomicU32>,
    /// Per-collective checksum-verification cost, recorded into the
    /// traffic counter's registry as the `guard.checksum.ns` histogram.
    checksum_ns: Arc<geofm_telemetry::Histogram>,
    barrier: SenseBarrier,
    traffic: Arc<TrafficCounter>,
}

/// One rank's handle to a [`Group`]. Collectives must be called by **every**
/// rank of the group, in the same order (standard SPMD contract).
#[derive(Debug, Clone)]
pub struct RankHandle {
    rank: usize,
    algorithm: Algorithm,
    timeout: Option<Duration>,
    adaptive: Option<Arc<AdaptiveTimeout>>,
    /// Emulated link slowdown factor for this rank, as `f64` bits (1.0 =
    /// healthy). Clones of a handle share it, so a fault injector can
    /// degrade a rank's link while its worker thread holds its own clone.
    link_slowdown: Arc<AtomicU64>,
    /// Whether this handle verifies contribution checksums after a reduce.
    /// SPMD contract: all ranks of a group must agree on this setting.
    verify_checksums: bool,
    /// One-shot in-flight corruption injector. Shared across a rank's
    /// handles (like `link_slowdown`) so the fault driver can arm it from
    /// outside the worker thread; consumed by the next reduce collective.
    sabotage: Arc<SabotageCell>,
    group: Arc<Group>,
}

/// `[start, end)` of the chunk owned by `rank` when `len` elements are split
/// across `n` ranks (remainder spread over the first ranks).
pub fn chunk_bounds(len: usize, n: usize, rank: usize) -> (usize, usize) {
    let base = len / n;
    let rem = len % n;
    let start = rank * base + rank.min(rem);
    let extra = usize::from(rank < rem);
    (start, start + base + extra)
}

impl Group {
    /// Create a group of `size` ranks sharing a fresh traffic counter.
    pub fn create(size: usize) -> Vec<RankHandle> {
        Self::create_with_traffic(size, Arc::new(TrafficCounter::new()))
    }

    /// Create a group whose collectives record into `traffic`.
    pub fn create_with_traffic(size: usize, traffic: Arc<TrafficCounter>) -> Vec<RankHandle> {
        assert!(size > 0, "group must have at least one rank");
        let group = Arc::new(Group {
            size,
            mailboxes: (0..size).map(|_| RwLock::new(Vec::new())).collect(),
            chunk_results: (0..size).map(|_| RwLock::new(Vec::new())).collect(),
            checksums: (0..size * size).map(|_| AtomicU32::new(0)).collect(),
            checksum_ns: traffic.registry().histogram("guard.checksum.ns"),
            barrier: SenseBarrier::new(size),
            traffic,
        });
        (0..size)
            .map(|rank| RankHandle {
                rank,
                algorithm: Algorithm::Direct,
                timeout: None,
                adaptive: None,
                link_slowdown: Arc::new(AtomicU64::new(1f64.to_bits())),
                verify_checksums: false,
                sabotage: Arc::new(SabotageCell::new()),
                group: Arc::clone(&group),
            })
            .collect()
    }

    /// Traffic counter shared by this group.
    pub fn traffic(&self) -> &Arc<TrafficCounter> {
        &self.traffic
    }
}

impl RankHandle {
    /// This rank's index within the group.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.group.size
    }

    /// Switch the collective algorithm (returns self for chaining).
    pub fn with_algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = algorithm;
        self
    }

    /// Bound every internal barrier wait of this handle's collectives. A
    /// wait that exceeds `timeout` poisons the group and returns
    /// [`RankLost::Timeout`] from the `try_*` call. `None` (the default)
    /// waits indefinitely but still observes poisoning by peers.
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    /// The configured static per-barrier timeout, if any.
    pub fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    /// Attach an adaptive timeout tracker. Every successful barrier wait
    /// feeds its latency EWMA; once warmed up, the adaptive bound
    /// (`multiplier × EWMA`, clamped to its floor) *tightens* the static
    /// timeout — the effective bound is the minimum of the two, with the
    /// static bound acting as warmup fallback and hard cap. Share one
    /// tracker across a rank's world/shard/replica handles so all its
    /// collectives feed one estimate.
    pub fn with_adaptive(mut self, adaptive: Arc<AdaptiveTimeout>) -> Self {
        self.adaptive = Some(adaptive);
        self
    }

    /// The attached adaptive timeout tracker, if any.
    pub fn adaptive(&self) -> Option<&Arc<AdaptiveTimeout>> {
        self.adaptive.as_ref()
    }

    /// The bound actually applied to the next barrier wait: the minimum of
    /// the static timeout and the (warmed-up) adaptive bound.
    pub fn effective_timeout(&self) -> Option<Duration> {
        let adaptive = self.adaptive.as_ref().and_then(|a| a.current());
        match (adaptive, self.timeout) {
            (Some(a), Some(s)) => Some(a.min(s)),
            (Some(a), None) => Some(a),
            (None, s) => s,
        }
    }

    /// Emulate a degraded link for this rank: every successful barrier
    /// wait is stretched by `slowdown` (1.0 = healthy). Shared with all
    /// clones of this handle.
    pub fn set_link_slowdown(&self, slowdown: f64) {
        self.link_slowdown.store(slowdown.max(1.0).to_bits(), Ordering::Release);
    }

    /// The currently emulated link slowdown factor.
    pub fn link_slowdown(&self) -> f64 {
        f64::from_bits(self.link_slowdown.load(Ordering::Acquire))
    }

    /// Enable (or disable) post-reduce checksum verification on this
    /// handle's reduce collectives. All ranks of a group must agree on
    /// the setting (SPMD contract); mixed configurations yield spurious
    /// verdicts on the verifying ranks only.
    pub fn with_checksums(mut self, verify: bool) -> Self {
        self.verify_checksums = verify;
        self
    }

    /// Whether this handle verifies reduce checksums.
    pub fn verifies_checksums(&self) -> bool {
        self.verify_checksums
    }

    /// Share a caller-supplied corruption injector with this handle (see
    /// [`SabotageCell`]); used by the hierarchy wiring so one cell covers
    /// a rank's world/shard/replica handles.
    pub fn with_sabotage(mut self, cell: Arc<SabotageCell>) -> Self {
        self.sabotage = cell;
        self
    }

    /// This handle's corruption injector.
    pub fn sabotage(&self) -> &Arc<SabotageCell> {
        &self.sabotage
    }

    /// Arm a one-shot bit flip: the next reduce collective on any handle
    /// sharing this cell corrupts one element of this rank's contribution
    /// *after* its checksums are computed (in-flight corruption). Fires
    /// regardless of [`RankHandle::with_checksums`] — with verification
    /// off the corruption is silent, which is the point.
    pub fn arm_bitflip(&self, bit: u32) {
        self.sabotage.arm(bit);
    }

    /// Poison the group: every current and future collective on any peer's
    /// handle fails with [`RankLost::Poisoned`]. Called by a rank that is
    /// about to die (panic, injected crash) so peers unblock promptly.
    pub fn poison(&self) {
        self.group.barrier.poison();
    }

    /// Whether the group has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.group.barrier.is_poisoned()
    }

    /// The group's traffic counter.
    pub fn traffic(&self) -> Arc<TrafficCounter> {
        Arc::clone(&self.group.traffic)
    }

    /// Synchronise all ranks of the group.
    ///
    /// # Panics
    /// Panics if the group is poisoned (see [`RankHandle::try_barrier`]).
    pub fn barrier(&self) {
        self.try_barrier().expect("collective failed: peer rank lost");
    }

    /// Synchronise all ranks; `Err(RankLost)` if the group is poisoned or
    /// this handle's [`RankHandle::effective_timeout`] expires first.
    ///
    /// Successful waits feed the adaptive latency EWMA (if attached) and
    /// are stretched by the emulated link slowdown (if degraded) — this is
    /// the single choke point through which every collective passes, so
    /// both gray-failure injection and detection live here.
    #[must_use = "a failed barrier means the group is lost and must be handled"]
    pub fn try_barrier(&self) -> Result<(), RankLost> {
        let start = Instant::now();
        self.group.barrier.wait_timeout(self.effective_timeout())?;
        let elapsed = start.elapsed();
        if let Some(a) = &self.adaptive {
            a.observe(elapsed);
        }
        let slowdown = self.link_slowdown();
        if slowdown > 1.0 {
            // A healthy shared-memory wait can be sub-microsecond, which
            // would make the emulated degradation invisible; model the
            // wire latency a real collective always pays so a degraded
            // link injects measurable delay.
            const LINK_BASE_LATENCY: Duration = Duration::from_micros(100);
            std::thread::sleep(elapsed.max(LINK_BASE_LATENCY).mul_f64(slowdown - 1.0));
        }
        Ok(())
    }

    fn record(&self, kind: CollectiveKind, elems: usize) {
        let bytes = kind.ring_bytes_per_rank(elems as u64 * 4, self.group.size);
        self.group.traffic.record(kind, bytes);
    }

    /// Publish this rank's reduce contribution: per-chunk CRC32s of the
    /// *true* payload first, then the mailbox copy — with any armed
    /// in-flight corruption applied after checksumming, so the checksum
    /// vouches for what the rank meant to send while receivers see what
    /// actually arrived.
    fn publish_guarded(&self, buf: &[f32]) {
        let g = &*self.group;
        let n = g.size;
        for chunk in 0..n {
            let (lo, hi) = chunk_bounds(buf.len(), n, chunk);
            g.checksums[self.rank * n + chunk]
                .store(guard::payload_crc(&buf[lo..hi]), Ordering::Release);
        }
        let mut payload = buf.to_vec();
        if let Some(bit) = self.sabotage.take() {
            guard::apply_bitflip(&mut payload, bit);
        }
        *g.mailboxes[self.rank].write() = payload;
    }

    /// Re-verify every chunk of every published contribution against its
    /// sender's checksum. Every rank scans in the same (sender-major,
    /// then chunk) order over the same shared state, so all ranks reach
    /// the identical verdict — the property the trainer's globally-agreed
    /// rollback decision rests on. `None` when this handle does not
    /// verify, or when everything matches.
    fn verify_mailboxes(&self, len: usize) -> Option<CorruptPayload> {
        if !self.verify_checksums {
            return None;
        }
        let t0 = Instant::now();
        let g = &*self.group;
        let n = g.size;
        let mut verdict = None;
        'scan: for sender in 0..n {
            let mb = g.mailboxes[sender].read();
            for chunk in 0..n {
                let (lo, hi) = chunk_bounds(len, n, chunk);
                let want = g.checksums[sender * n + chunk].load(Ordering::Acquire);
                if guard::payload_crc(&mb[lo..hi]) != want {
                    verdict = Some(CorruptPayload { rank: sender, chunk });
                    break 'scan;
                }
            }
        }
        g.checksum_ns.record(t0.elapsed().as_nanos() as u64);
        verdict
    }

    /// Shared prologue of the checksummed reduce collectives
    /// (`try_all_reduce` / `try_reduce_scatter`): publish this rank's
    /// guarded contribution, cross the entry barrier, then scan every
    /// mailbox for a checksum mismatch. Paired with
    /// [`RankHandle::reduce_epilogue`], this keeps the timeout/poison/
    /// verdict plumbing in exactly one place — the blocking ops and the
    /// nonblocking comm-thread path all funnel through it instead of each
    /// op carrying its own copy.
    fn reduce_prologue(&self, buf: &[f32]) -> Result<Option<CorruptPayload>, RankLost> {
        self.publish_guarded(buf);
        self.try_barrier()?;
        // every rank reads every mailbox, so the verification verdict is
        // identical on all ranks (see `verify_mailboxes`)
        Ok(self.verify_mailboxes(buf.len()))
    }

    /// Shared epilogue of the checksummed reduce collectives: cross the
    /// exit barrier — even on a corrupt verdict, so every rank crosses
    /// every barrier and the error surfaces in lockstep instead of
    /// desynchronising the group — then turn the verdict into the
    /// collective's result.
    fn reduce_epilogue(&self, verdict: Option<CorruptPayload>) -> Result<(), CollectiveError> {
        self.try_barrier()?;
        match verdict {
            Some(c) => Err(c.into()),
            None => Ok(()),
        }
    }

    /// Sum-reduce `buf` across all ranks; every rank ends with the total.
    ///
    /// # Panics
    /// Panics if a peer rank is lost or a checksum-verified contribution
    /// is corrupt (see [`RankHandle::try_all_reduce`]).
    pub fn all_reduce(&self, buf: &mut [f32]) {
        self.try_all_reduce(buf).expect("collective failed");
    }

    /// Fallible [`RankHandle::all_reduce`].
    ///
    /// On [`CollectiveError::Lost`] the contents of `buf` are unspecified
    /// (partially reduced) and the group is poisoned. On
    /// [`CollectiveError::Corrupt`] the collective *completed* — all
    /// barriers were crossed and the group stays usable — but `buf` holds
    /// a reduction over a corrupted contribution and must be discarded;
    /// every rank of the group observes the identical error.
    #[must_use = "a failed all-reduce leaves buf unusable and must be handled"]
    pub fn try_all_reduce(&self, buf: &mut [f32]) -> Result<(), CollectiveError> {
        self.record(CollectiveKind::AllReduce, buf.len());
        if self.group.size == 1 {
            return Ok(());
        }
        match self.algorithm {
            Algorithm::Direct => self.all_reduce_direct(buf),
            Algorithm::Ring => ring::all_reduce_ring(self, buf).map_err(CollectiveError::from),
        }
    }

    fn all_reduce_direct(&self, buf: &mut [f32]) -> Result<(), CollectiveError> {
        let g = &*self.group;
        let n = g.size;
        // 1. publish (checksums first, then the possibly-corrupted copy)
        //    and verify — shared with try_reduce_scatter
        let verdict = self.reduce_prologue(buf)?;
        // 2. reduce own chunk across all mailboxes — even on a corrupt
        // verdict, so the group stays in lockstep (see reduce_epilogue)
        let (lo, hi) = chunk_bounds(buf.len(), n, self.rank);
        {
            let mut acc = vec![0.0f32; hi - lo];
            for m in &g.mailboxes {
                let mb = m.read();
                debug_assert_eq!(mb.len(), buf.len(), "all ranks must pass equal-length buffers");
                for (a, &v) in acc.iter_mut().zip(&mb[lo..hi]) {
                    *a += v;
                }
            }
            *g.chunk_results[self.rank].write() = acc;
        }
        self.try_barrier()?;
        // 3. gather all reduced chunks
        for r in 0..n {
            let (clo, chi) = chunk_bounds(buf.len(), n, r);
            let res = g.chunk_results[r].read();
            buf[clo..chi].copy_from_slice(&res);
        }
        self.reduce_epilogue(verdict)
    }

    /// Gather equal-length shards from every rank; `out` is resized to
    /// `size · local.len()` and filled in rank order.
    ///
    /// # Panics
    /// Panics if a peer rank is lost (see [`RankHandle::try_all_gather`]).
    pub fn all_gather(&self, local: &[f32], out: &mut Vec<f32>) {
        self.try_all_gather(local, out).expect("collective failed: peer rank lost");
    }

    /// Fallible [`RankHandle::all_gather`]. On `Err` the contents of `out`
    /// are unspecified and the group is poisoned.
    #[must_use = "a failed all-gather leaves out unusable and must be handled"]
    pub fn try_all_gather(&self, local: &[f32], out: &mut Vec<f32>) -> Result<(), RankLost> {
        let n = self.group.size;
        out.resize(n * local.len(), 0.0);
        self.record(CollectiveKind::AllGather, out.len());
        if n == 1 {
            out.copy_from_slice(local);
            return Ok(());
        }
        let g = &*self.group;
        *g.mailboxes[self.rank].write() = local.to_vec();
        self.try_barrier()?;
        for r in 0..n {
            let mb = g.mailboxes[r].read();
            debug_assert_eq!(mb.len(), local.len(), "all-gather shards must be equal length");
            out[r * local.len()..(r + 1) * local.len()].copy_from_slice(&mb);
        }
        self.try_barrier()
    }

    /// Sum-reduce `buf` and leave this rank with its owned chunk
    /// (`chunk_bounds(buf.len(), size, rank)`), written into `out`.
    ///
    /// # Panics
    /// Panics if a peer rank is lost or a checksum-verified contribution
    /// is corrupt (see [`RankHandle::try_reduce_scatter`]).
    pub fn reduce_scatter(&self, buf: &[f32], out: &mut Vec<f32>) {
        self.try_reduce_scatter(buf, out).expect("collective failed");
    }

    /// Fallible [`RankHandle::reduce_scatter`].
    ///
    /// On [`CollectiveError::Lost`] the contents of `out` are unspecified
    /// and the group is poisoned. On [`CollectiveError::Corrupt`] the
    /// collective completed (group stays usable) but `out` must be
    /// discarded; every rank observes the identical error.
    #[must_use = "a failed reduce-scatter leaves out unusable and must be handled"]
    pub fn try_reduce_scatter(
        &self,
        buf: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<(), CollectiveError> {
        let n = self.group.size;
        self.record(CollectiveKind::ReduceScatter, buf.len());
        let (lo, hi) = chunk_bounds(buf.len(), n, self.rank);
        out.resize(hi - lo, 0.0);
        if n == 1 {
            out.copy_from_slice(buf);
            return Ok(());
        }
        let g = &*self.group;
        let verdict = self.reduce_prologue(buf)?;
        out.iter_mut().for_each(|v| *v = 0.0);
        for m in &g.mailboxes {
            let mb = m.read();
            debug_assert_eq!(mb.len(), buf.len(), "reduce-scatter buffers must be equal length");
            for (o, &v) in out.iter_mut().zip(&mb[lo..hi]) {
                *o += v;
            }
        }
        self.reduce_epilogue(verdict)
    }

    /// Copy `root`'s buffer to every rank.
    ///
    /// # Panics
    /// Panics if a peer rank is lost (see [`RankHandle::try_broadcast`]).
    pub fn broadcast(&self, buf: &mut [f32], root: usize) {
        self.try_broadcast(buf, root).expect("collective failed: peer rank lost");
    }

    /// Fallible [`RankHandle::broadcast`]. On `Err` the contents of `buf`
    /// are unspecified and the group is poisoned.
    #[must_use = "a failed broadcast leaves buf unusable and must be handled"]
    pub fn try_broadcast(&self, buf: &mut [f32], root: usize) -> Result<(), RankLost> {
        assert!(root < self.group.size, "broadcast root out of range");
        self.record(CollectiveKind::Broadcast, buf.len());
        if self.group.size == 1 {
            return Ok(());
        }
        let g = &*self.group;
        if self.rank == root {
            *g.mailboxes[root].write() = buf.to_vec();
        }
        self.try_barrier()?;
        if self.rank != root {
            let mb = g.mailboxes[root].read();
            debug_assert_eq!(mb.len(), buf.len(), "broadcast buffers must be equal length");
            buf.copy_from_slice(&mb);
        }
        self.try_barrier()
    }

    pub(crate) fn mailbox_write(&self, rank: usize, data: &[f32]) {
        *self.group.mailboxes[rank].write() = data.to_vec();
    }

    pub(crate) fn mailbox_read(&self, rank: usize, out: &mut Vec<f32>) {
        let mb = self.group.mailboxes[rank].read();
        out.clear();
        out.extend_from_slice(&mb);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_group<F>(size: usize, f: F)
    where
        F: Fn(RankHandle) + Sync,
    {
        let handles = Group::create(size);
        std::thread::scope(|s| {
            for h in handles {
                let f = &f;
                s.spawn(move || f(h));
            }
        });
    }

    #[test]
    fn chunk_bounds_partition_exactly() {
        for len in [0usize, 1, 7, 16, 33] {
            for n in [1usize, 2, 3, 8] {
                let mut covered = 0;
                for r in 0..n {
                    let (lo, hi) = chunk_bounds(len, n, r);
                    assert_eq!(lo, covered);
                    covered = hi;
                }
                assert_eq!(covered, len);
            }
        }
    }

    #[test]
    fn all_reduce_sums() {
        run_group(4, |h| {
            let mut buf = vec![(h.rank() + 1) as f32; 10];
            h.all_reduce(&mut buf);
            assert!(buf.iter().all(|&v| v == 10.0), "rank {}: {:?}", h.rank(), buf);
        });
    }

    #[test]
    fn all_reduce_uneven_length() {
        run_group(3, |h| {
            let mut buf: Vec<f32> = (0..7).map(|i| (i * (h.rank() + 1)) as f32).collect();
            h.all_reduce(&mut buf);
            for (i, &v) in buf.iter().enumerate() {
                assert_eq!(v, (i * 6) as f32);
            }
        });
    }

    #[test]
    fn repeated_all_reduce_is_stable() {
        run_group(4, |h| {
            for round in 0..50 {
                let mut buf = vec![h.rank() as f32 + round as f32; 5];
                h.all_reduce(&mut buf);
                let expect = (0..4).map(|r| r as f32 + round as f32).sum::<f32>();
                assert!(buf.iter().all(|&v| (v - expect).abs() < 1e-5));
            }
        });
    }

    #[test]
    fn all_gather_concatenates_in_rank_order() {
        run_group(3, |h| {
            let local = vec![h.rank() as f32; 2];
            let mut out = Vec::new();
            h.all_gather(&local, &mut out);
            assert_eq!(out, vec![0., 0., 1., 1., 2., 2.]);
        });
    }

    #[test]
    fn reduce_scatter_gives_owned_chunk() {
        run_group(2, |h| {
            let buf: Vec<f32> = (0..6).map(|i| i as f32 * (h.rank() + 1) as f32).collect();
            let mut out = Vec::new();
            h.reduce_scatter(&buf, &mut out);
            // sum over ranks: element i = i*1 + i*2 = 3i; rank0 owns [0,3), rank1 [3,6)
            let expect: Vec<f32> = if h.rank() == 0 {
                vec![0., 3., 6.]
            } else {
                vec![9., 12., 15.]
            };
            assert_eq!(out, expect);
        });
    }

    #[test]
    fn reduce_scatter_then_all_gather_equals_all_reduce() {
        run_group(4, |h| {
            let base: Vec<f32> = (0..8).map(|i| (i + h.rank() * 8) as f32).collect();
            let mut via_ar = base.clone();
            h.all_reduce(&mut via_ar);
            let mut shard = Vec::new();
            h.reduce_scatter(&base, &mut shard);
            let mut gathered = Vec::new();
            h.all_gather(&shard, &mut gathered);
            assert_eq!(gathered, via_ar);
        });
    }

    #[test]
    fn broadcast_copies_root() {
        run_group(4, |h| {
            let mut buf = if h.rank() == 2 { vec![7.0; 5] } else { vec![0.0; 5] };
            h.broadcast(&mut buf, 2);
            assert!(buf.iter().all(|&v| v == 7.0));
        });
    }

    #[test]
    fn single_rank_collectives_are_identity() {
        run_group(1, |h| {
            let mut buf = vec![3.0, 4.0];
            h.all_reduce(&mut buf);
            assert_eq!(buf, vec![3.0, 4.0]);
            let mut out = Vec::new();
            h.all_gather(&[1.0, 2.0], &mut out);
            assert_eq!(out, vec![1.0, 2.0]);
            let mut rs = Vec::new();
            h.reduce_scatter(&[5.0, 6.0], &mut rs);
            assert_eq!(rs, vec![5.0, 6.0]);
        });
    }

    #[test]
    fn traffic_is_recorded() {
        let handles = Group::create(2);
        let traffic = handles[0].traffic();
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let mut buf = vec![0.0f32; 100];
                    h.all_reduce(&mut buf);
                });
            }
        });
        let snap = traffic.snapshot();
        assert_eq!(snap.calls, 2);
        // per-rank ring bytes: 2 * (1/2) * 400 = 400; two ranks → 800
        assert_eq!(snap.all_reduce, 800);
    }

    #[test]
    fn mixed_collective_sequences_do_not_interfere() {
        run_group(4, |h| {
            for _ in 0..20 {
                let mut a = vec![1.0f32; 9];
                h.all_reduce(&mut a);
                assert!(a.iter().all(|&v| v == 4.0));
                let mut g = Vec::new();
                h.all_gather(&[h.rank() as f32], &mut g);
                assert_eq!(g, vec![0., 1., 2., 3.]);
                let mut rs = Vec::new();
                h.reduce_scatter(&[2.0f32; 4], &mut rs);
                assert_eq!(rs, vec![8.0]);
                let mut b = vec![h.rank() as f32; 3];
                h.broadcast(&mut b, 0);
                assert!(b.iter().all(|&v| v == 0.0));
            }
        });
    }

    #[test]
    fn dead_rank_surfaces_rank_lost_on_all_peers() {
        // rank 3 never calls the collective: every survivor must get
        // Err(RankLost) within a bounded wait instead of deadlocking.
        let handles = Group::create(4);
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            for h in handles.into_iter().take(3) {
                s.spawn(move || {
                    let h = h.with_timeout(Some(Duration::from_millis(100)));
                    let mut buf = vec![1.0f32; 8];
                    let r = h.try_all_reduce(&mut buf);
                    assert!(r.is_err(), "rank {} must observe the lost peer", h.rank());
                });
            }
        });
        assert!(start.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn poisoned_group_fails_every_collective() {
        let handles = Group::create(2);
        handles[0].poison();
        let h = handles[1].clone();
        let mut buf = vec![1.0f32; 4];
        assert!(h.try_all_reduce(&mut buf).is_err());
        let mut out = Vec::new();
        assert!(h.try_all_gather(&buf, &mut out).is_err());
        assert!(h.try_reduce_scatter(&buf, &mut out).is_err());
        assert!(h.try_broadcast(&mut buf, 0).is_err());
        assert!(h.try_barrier().is_err());
        assert!(h.is_poisoned());
    }

    #[test]
    fn chunk_bounds_more_ranks_than_elements() {
        // len < n: the first `len` ranks own one element, the rest own
        // empty (but well-formed) ranges.
        let (len, n) = (3usize, 8usize);
        for r in 0..n {
            let (lo, hi) = chunk_bounds(len, n, r);
            if r < len {
                assert_eq!((lo, hi), (r, r + 1));
            } else {
                assert_eq!(lo, hi, "rank {r} must own an empty range");
                assert!(hi <= len);
            }
        }
    }

    #[test]
    fn chunk_bounds_empty_buffer() {
        for n in [1usize, 2, 5] {
            for r in 0..n {
                assert_eq!(chunk_bounds(0, n, r), (0, 0));
            }
        }
    }

    /// Every `try_*` collective must surface an error on **all** survivors
    /// when a peer never shows up — no partial hang where some ranks error
    /// and others block forever. Generic over the error type since the
    /// reduce collectives return [`CollectiveError`] and the rest
    /// [`RankLost`].
    fn assert_survivors_all_err<E: std::fmt::Debug>(
        op: impl Fn(&RankHandle) -> Result<(), E> + Sync,
    ) {
        let handles = Group::create(4);
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            for h in handles.into_iter().take(3) {
                let op = &op;
                s.spawn(move || {
                    let h = h.with_timeout(Some(Duration::from_millis(100)));
                    assert!(op(&h).is_err(), "rank {} must observe the lost peer", h.rank());
                });
            }
        });
        assert!(start.elapsed() < Duration::from_secs(10), "survivors must unblock promptly");
    }

    #[test]
    fn dead_rank_barrier_errors_on_all_survivors() {
        assert_survivors_all_err(|h| h.try_barrier());
    }

    #[test]
    fn dead_rank_all_gather_errors_on_all_survivors() {
        assert_survivors_all_err(|h| {
            let mut out = Vec::new();
            h.try_all_gather(&[1.0, 2.0], &mut out)
        });
    }

    #[test]
    fn dead_rank_reduce_scatter_errors_on_all_survivors() {
        assert_survivors_all_err(|h| {
            let mut out = Vec::new();
            h.try_reduce_scatter(&[1.0f32; 8], &mut out)
        });
    }

    #[test]
    fn dead_rank_broadcast_errors_on_all_survivors() {
        assert_survivors_all_err(|h| {
            let mut buf = vec![0.0f32; 4];
            h.try_broadcast(&mut buf, 0)
        });
    }

    #[test]
    fn adaptive_timeout_detects_hang_faster_than_static_bound() {
        use crate::adaptive::{AdaptiveTimeout, AdaptiveTimeoutConfig};

        // Static bound is generous (10 s); the adaptive tracker warms up on
        // fast collectives and must then catch a hung peer in ~floor time.
        let handles = Group::create(3);
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            for (i, h) in handles.into_iter().enumerate() {
                s.spawn(move || {
                    let tracker = Arc::new(AdaptiveTimeout::new(AdaptiveTimeoutConfig {
                        floor: Duration::from_millis(50),
                        multiplier: 16.0,
                        warmup: 4,
                    }));
                    let h = h
                        .with_timeout(Some(Duration::from_secs(10)))
                        .with_adaptive(tracker);
                    let mut buf = vec![1.0f32; 8];
                    for _ in 0..4 {
                        h.try_all_reduce(&mut buf).unwrap();
                    }
                    // rank 2 hangs; the others must error well before 10 s
                    if i == 2 {
                        return;
                    }
                    assert!(h.try_all_reduce(&mut buf).is_err());
                });
            }
        });
        assert!(
            start.elapsed() < Duration::from_secs(5),
            "adaptive bound must beat the static 10 s timeout, took {:?}",
            start.elapsed()
        );
    }

    #[test]
    fn adaptive_timeout_tolerates_healthy_variance() {
        use crate::adaptive::{AdaptiveTimeout, AdaptiveTimeoutConfig};

        // Ranks with mildly skewed arrival times must not false-positive.
        let handles = Group::create(4);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let tracker = Arc::new(AdaptiveTimeout::new(AdaptiveTimeoutConfig {
                        floor: Duration::from_millis(50),
                        multiplier: 16.0,
                        warmup: 4,
                    }));
                    let h = h.with_timeout(Some(Duration::from_secs(10))).with_adaptive(tracker);
                    let mut buf = vec![1.0f32; 8];
                    for round in 0..30 {
                        std::thread::sleep(Duration::from_micros(((h.rank() * round) % 7) as u64 * 100));
                        h.try_all_reduce(&mut buf).unwrap_or_else(|e| {
                            panic!("rank {} false positive at round {round}: {e:?}", h.rank())
                        });
                    }
                });
            }
        });
    }

    #[test]
    fn link_slowdown_stretches_collectives_without_changing_results() {
        let handles = Group::create(2);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    if h.rank() == 1 {
                        h.set_link_slowdown(5.0);
                    }
                    let mut buf = vec![(h.rank() + 1) as f32; 4];
                    h.all_reduce(&mut buf);
                    assert!(buf.iter().all(|&v| v == 3.0), "degraded link must not corrupt data");
                });
            }
        });
    }

    #[test]
    fn ring_algorithm_times_out_on_dead_rank() {
        let handles = Group::create(3);
        std::thread::scope(|s| {
            for h in handles.into_iter().take(2) {
                s.spawn(move || {
                    let h = h
                        .with_algorithm(Algorithm::Ring)
                        .with_timeout(Some(Duration::from_millis(100)));
                    let mut buf = vec![1.0f32; 6];
                    assert!(h.try_all_reduce(&mut buf).is_err());
                });
            }
        });
    }

    #[test]
    fn checksummed_all_reduce_passes_clean_payloads() {
        run_group(4, |h| {
            let h = h.with_checksums(true);
            for round in 0..10 {
                let mut buf = vec![(h.rank() + round) as f32; 9];
                h.try_all_reduce(&mut buf).unwrap();
                let expect = (0..4).map(|r| (r + round) as f32).sum::<f32>();
                assert!(buf.iter().all(|&v| v == expect));
            }
        });
    }

    #[test]
    fn unverified_bitflip_corrupts_silently() {
        // guard off: the armed flip changes the result on every rank with
        // no error — the silent regime the checksum layer exists to close.
        use std::sync::Mutex;
        let results: Mutex<Vec<Vec<f32>>> = Mutex::new(Vec::new());
        let handles = Group::create(4);
        std::thread::scope(|s| {
            for h in handles {
                let results = &results;
                s.spawn(move || {
                    if h.rank() == 1 {
                        h.arm_bitflip(22);
                    }
                    let mut buf = vec![1.0f32; 16];
                    h.try_all_reduce(&mut buf).unwrap();
                    results.lock().unwrap().push(buf);
                });
            }
        });
        let results = results.into_inner().unwrap();
        assert!(
            results.iter().all(|r| r == &results[0]),
            "all ranks agree on the (wrong) reduction"
        );
        assert!(
            results[0].iter().any(|&v| v != 4.0),
            "the flip must actually change the sum"
        );
    }

    #[test]
    fn verified_bitflip_surfaces_identical_corrupt_error_on_all_ranks() {
        use std::sync::Mutex;
        let verdicts: Mutex<Vec<CollectiveError>> = Mutex::new(Vec::new());
        let handles = Group::create(4);
        std::thread::scope(|s| {
            for h in handles {
                let verdicts = &verdicts;
                s.spawn(move || {
                    let h = h.with_checksums(true);
                    if h.rank() == 1 {
                        h.arm_bitflip(22);
                    }
                    let mut buf = vec![1.0f32; 16];
                    let err = h.try_all_reduce(&mut buf).unwrap_err();
                    verdicts.lock().unwrap().push(err);

                    // corruption does not poison the group: the next
                    // (clean) collective must succeed and be correct
                    let mut again = vec![2.0f32; 16];
                    h.try_all_reduce(&mut again).unwrap();
                    assert!(again.iter().all(|&v| v == 8.0));
                });
            }
        });
        let verdicts = verdicts.into_inner().unwrap();
        assert_eq!(verdicts.len(), 4);
        for v in &verdicts {
            match v {
                CollectiveError::Corrupt(c) => {
                    assert_eq!(c.rank, 1, "the corrupted contribution is rank 1's");
                    assert_eq!(*v, verdicts[0], "all ranks must agree on the verdict");
                }
                CollectiveError::Lost(l) => panic!("expected Corrupt, got Lost({l:?})"),
            }
        }
    }

    #[test]
    fn verified_bitflip_detected_in_reduce_scatter() {
        run_group(4, |h| {
            let h = h.with_checksums(true);
            if h.rank() == 2 {
                h.arm_bitflip(7);
            }
            let buf = vec![1.0f32; 12];
            let mut out = Vec::new();
            match h.try_reduce_scatter(&buf, &mut out) {
                Err(CollectiveError::Corrupt(c)) => assert_eq!(c.rank, 2),
                other => panic!("rank {}: expected Corrupt, got {other:?}", h.rank()),
            }
            // group stays usable
            let mut again = Vec::new();
            h.try_reduce_scatter(&buf, &mut again).unwrap();
            assert!(again.iter().all(|&v| v == 4.0));
        });
    }

    #[test]
    fn sabotage_is_one_shot_across_collectives() {
        run_group(2, |h| {
            let h = h.with_checksums(true);
            if h.rank() == 0 {
                h.arm_bitflip(5);
            }
            let mut buf = vec![1.0f32; 8];
            assert!(h.try_all_reduce(&mut buf).is_err(), "first reduce is corrupt");
            for _ in 0..5 {
                let mut clean = vec![1.0f32; 8];
                h.try_all_reduce(&mut clean).unwrap();
                assert!(clean.iter().all(|&v| v == 2.0), "later reduces are clean");
            }
        });
    }

    #[test]
    fn single_rank_reduce_leaves_sabotage_armed() {
        // a size-1 group performs no exchange, so an armed flip must stay
        // armed for the first real multi-rank reduce on a sibling handle
        let handles = Group::create(1);
        let h = handles.into_iter().next().unwrap().with_checksums(true);
        h.arm_bitflip(3);
        let mut buf = vec![1.0f32; 4];
        h.try_all_reduce(&mut buf).unwrap();
        assert!(h.sabotage().is_armed());
    }
}
