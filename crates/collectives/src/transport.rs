//! Pluggable communication transports.
//!
//! Everything above this crate — the FSDP engine, the elastic trainer, the
//! guard exchange — speaks to its peers through a small set of collective
//! verbs plus a failure surface (poison / quiesce / bounded timeout). The
//! [`Transport`] trait names that contract explicitly so backends are
//! interchangeable:
//!
//! * [`SharedMemTransport`] — the production backend: the existing
//!   shared-memory group machinery (sense-reversing barrier, mailbox
//!   exchange, checksum guard) with the lock-free SPSC [`CommThread`] as
//!   the nonblocking submission path.
//! * [`crate::simnet::SimNetTransport`] — the same data plane behind a
//!   seeded lossy/delayed link model driven by a
//!   [`geofm_resilience::FaultPlan`], for chaos testing a transport whose
//!   wire misbehaves.
//! * [`LoopbackTransport`] — a single-rank pure-function reference
//!   implementation: the executable spec of the trait's semantics with no
//!   threads, no barriers and no sharing.
//!
//! The **conformance battery** in `tests/transport_conformance.rs` is the
//! normative statement of the trait's laws (DESIGN.md §17): FIFO
//! completion of submitted work, barrier termination under poison,
//! `RankLost` propagation to every peer, checksum-verdict agreement, and
//! pooled-buffer steady state. A new backend is wired into the engine only
//! after it passes the battery unmodified.
//!
//! ## Contract (the transport laws)
//!
//! 1. **SPMD symmetry.** All ranks of a group call the same collectives in
//!    the same order with equal-length buffers. Results are bit-identical
//!    to the reference semantics: element-wise sum for reduces, rank-order
//!    concatenation for gathers.
//! 2. **FIFO submission.** [`Transport::submit`] returns tickets in issue
//!    order; [`Transport::wait`] observes results equivalent to executing
//!    the ops sequentially in that order (per rank).
//! 3. **Poison terminates, never wedges.** After [`Transport::poison`] on
//!    any rank, every blocked or future collective on every rank of the
//!    group returns [`RankLost`] within one timeout period. Poison is
//!    permanent for the group's lifetime.
//! 4. **Corruption is unanimous and non-poisoning.** With checksums on, a
//!    corrupted reduce contribution surfaces as the *identical*
//!    [`CorruptPayload`] on every rank, all barriers still crossed — the
//!    group stays usable. A single-rank group has no wire, so nothing to
//!    corrupt: reduces on `size() == 1` always succeed.
//! 5. **Quiesce drains.** After [`Transport::quiesce`] returns, no
//!    submitted op is still running; every ticket's result is claimable
//!    without further progress from peers.

use crate::barrier::RankLost;
use crate::group::{chunk_bounds, Group, RankHandle};
use crate::guard::CollectiveError;
use crate::nonblocking::{CellPoolStats, CollectiveHandle, CommGroup, CommThread, OwnedAsyncOp};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A nonblocking collective staged for [`Transport::submit`]. The buffer
/// is owned by the op (taken from the transport's pool when it has one).
#[derive(Debug)]
pub enum TransportOp {
    /// All-reduce `buf` across the group (element-wise sum).
    AllReduce(Vec<f32>),
    /// Gather equal-length shards in rank order.
    AllGather(Vec<f32>),
    /// Reduce `buf` and keep this rank's chunk (see [`chunk_bounds`]).
    ReduceScatter(Vec<f32>),
}

/// Claim check for a submitted op, redeemed with [`Transport::wait`].
/// Tickets are per-transport and single-use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ticket(pub u64);

/// One rank's endpoint of a pluggable communication backend. See the
/// module docs for the laws; see `tests/transport_conformance.rs` for the
/// executable version of them.
pub trait Transport: Send {
    /// This rank's id within the group.
    fn rank(&self) -> usize;

    /// Number of ranks in the group.
    fn size(&self) -> usize;

    /// Synchronise all ranks (law 3 bounds the failure mode).
    fn try_barrier(&self) -> Result<(), RankLost>;

    /// Blocking element-wise sum across the group.
    fn try_all_reduce(&self, buf: &mut [f32]) -> Result<(), CollectiveError>;

    /// Blocking rank-order gather of equal-length shards.
    fn try_all_gather(&self, local: &[f32], out: &mut Vec<f32>) -> Result<(), RankLost>;

    /// Blocking reduce-scatter: `out` receives this rank's chunk of the
    /// sum, chunked per [`chunk_bounds`].
    fn try_reduce_scatter(&self, buf: &[f32], out: &mut Vec<f32>)
        -> Result<(), CollectiveError>;

    /// Blocking broadcast from `root`.
    fn try_broadcast(&self, buf: &mut [f32], root: usize) -> Result<(), RankLost>;

    /// Stage a batch of nonblocking collectives. Tickets come back in
    /// issue order; peers must submit compatible ops in the same order.
    fn submit(&mut self, ops: Vec<TransportOp>) -> Vec<Ticket>;

    /// Redeem a ticket: block until that op completes and return its
    /// output buffer (reduced buffer, gathered concatenation, or owned
    /// chunk). Waiting out of issue order is allowed; completion still
    /// respects issue order per rank.
    fn wait(&mut self, ticket: Ticket) -> Result<Vec<f32>, CollectiveError>;

    /// Poison the group: every current and future collective on every
    /// rank fails with [`RankLost`] within one timeout period.
    fn poison(&self);

    /// Whether the group has been poisoned.
    fn is_poisoned(&self) -> bool;

    /// Drain: block until every submitted op has completed (successfully
    /// or with a structured error). Never hangs — termination is bounded
    /// by the collectives' own timeout/poison machinery.
    fn quiesce(&mut self);

    /// The bound on any single collective wait, if one is configured.
    fn timeout(&self) -> Option<Duration>;

    /// Arm a one-shot bit flip in this rank's next reduce contribution
    /// (in-flight corruption; law 4 governs what peers observe). A
    /// transport may ignore this when it has no wire to corrupt — armed
    /// state on a single-rank group is simply never consumed.
    fn arm_bitflip(&self, bit: u32);

    /// Job-cell pool counters for backends with a pooled nonblocking
    /// path; `None` when the backend does not pool.
    fn pool_stats(&self) -> Option<CellPoolStats> {
        None
    }
}

// ---------------------------------------------------------------------------
// Shared-memory backend
// ---------------------------------------------------------------------------

/// The production backend: one rank's [`RankHandle`] plus its lock-free
/// [`CommThread`] submission path, presented through the [`Transport`]
/// contract. Collective semantics, checksum guard, poison and adaptive
/// timeouts are exactly the existing group machinery's.
pub struct SharedMemTransport {
    handle: RankHandle,
    comm: CommThread,
    group: CommGroup,
    pending: HashMap<u64, CollectiveHandle>,
    next_ticket: u64,
}

impl SharedMemTransport {
    /// Build one endpoint per rank for a fresh `world`-rank group.
    /// `checksums` enables reduce verification (law 4); `timeout` bounds
    /// every barrier wait (law 3).
    pub fn create(
        world: usize,
        checksums: bool,
        timeout: Option<Duration>,
    ) -> Vec<SharedMemTransport> {
        Group::create(world)
            .into_iter()
            .map(|h| Self::from_handle(h.with_checksums(checksums).with_timeout(timeout)))
            .collect()
    }

    /// Wrap an existing configured [`RankHandle`].
    pub fn from_handle(handle: RankHandle) -> Self {
        let comm = CommThread::spawn();
        let group = comm.register(&handle);
        Self { handle, comm, group, pending: HashMap::new(), next_ticket: 0 }
    }

    /// The underlying handle (e.g. to attach adaptive timeouts).
    pub fn handle(&self) -> &RankHandle {
        &self.handle
    }
}

impl Transport for SharedMemTransport {
    fn rank(&self) -> usize {
        self.handle.rank()
    }

    fn size(&self) -> usize {
        self.handle.size()
    }

    fn try_barrier(&self) -> Result<(), RankLost> {
        self.handle.try_barrier()
    }

    fn try_all_reduce(&self, buf: &mut [f32]) -> Result<(), CollectiveError> {
        self.handle.try_all_reduce(buf)
    }

    fn try_all_gather(&self, local: &[f32], out: &mut Vec<f32>) -> Result<(), RankLost> {
        self.handle.try_all_gather(local, out)
    }

    fn try_reduce_scatter(
        &self,
        buf: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<(), CollectiveError> {
        self.handle.try_reduce_scatter(buf, out)
    }

    fn try_broadcast(&self, buf: &mut [f32], root: usize) -> Result<(), RankLost> {
        self.handle.try_broadcast(buf, root)
    }

    fn submit(&mut self, ops: Vec<TransportOp>) -> Vec<Ticket> {
        let owned: Vec<OwnedAsyncOp> = ops
            .into_iter()
            .map(|op| match op {
                TransportOp::AllReduce(b) => OwnedAsyncOp::AllReduce(b),
                TransportOp::AllGather(b) => OwnedAsyncOp::AllGather(b),
                TransportOp::ReduceScatter(b) => OwnedAsyncOp::ReduceScatter(b),
            })
            .collect();
        let handles = self.comm.submit_batch_owned(&self.group, owned);
        handles
            .into_iter()
            .map(|h| {
                let t = Ticket(self.next_ticket);
                self.next_ticket += 1;
                self.pending.insert(t.0, h);
                t
            })
            .collect()
    }

    fn wait(&mut self, ticket: Ticket) -> Result<Vec<f32>, CollectiveError> {
        self.pending
            .remove(&ticket.0)
            .map(CollectiveHandle::wait)
            .unwrap_or(Err(CollectiveError::Lost(RankLost::Poisoned)))
    }

    fn poison(&self) {
        self.handle.poison();
    }

    fn is_poisoned(&self) -> bool {
        self.handle.is_poisoned()
    }

    fn quiesce(&mut self) {
        self.comm.quiesce();
    }

    fn timeout(&self) -> Option<Duration> {
        self.handle.effective_timeout()
    }

    fn arm_bitflip(&self, bit: u32) {
        self.handle.arm_bitflip(bit);
    }

    fn pool_stats(&self) -> Option<CellPoolStats> {
        Some(self.comm.cell_stats())
    }
}

// ---------------------------------------------------------------------------
// Loopback reference backend
// ---------------------------------------------------------------------------

/// The executable reference semantics: a single-rank group where every
/// collective is a pure function evaluated inline. No threads, no
/// blocking, no sharing — the simplest implementation that satisfies every
/// law, used by the conformance battery as the oracle for degenerate
/// world sizes and by unit tests that need a [`Transport`] without
/// spinning up rank threads.
pub struct LoopbackTransport {
    poisoned: Arc<AtomicBool>,
    timeout: Option<Duration>,
    /// Completed-but-unclaimed nonblocking results, keyed by ticket.
    done: HashMap<u64, Result<Vec<f32>, CollectiveError>>,
    next_ticket: u64,
    armed_bit: Arc<AtomicBool>,
}

impl Default for LoopbackTransport {
    fn default() -> Self {
        Self::new()
    }
}

impl LoopbackTransport {
    /// A fresh single-rank endpoint.
    pub fn new() -> Self {
        Self {
            poisoned: Arc::new(AtomicBool::new(false)),
            timeout: None,
            done: HashMap::new(),
            next_ticket: 0,
            armed_bit: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Bound collective waits (observed only through [`Transport::timeout`];
    /// loopback ops complete inline and never actually wait).
    pub fn with_timeout(mut self, timeout: Option<Duration>) -> Self {
        self.timeout = timeout;
        self
    }

    fn check(&self) -> Result<(), RankLost> {
        if self.poisoned.load(Ordering::Acquire) {
            Err(RankLost::Poisoned)
        } else {
            Ok(())
        }
    }

    fn run_op(&self, op: TransportOp) -> Result<Vec<f32>, CollectiveError> {
        self.check()?;
        // single-rank reference semantics: reduce = identity, gather =
        // identity, reduce-scatter = the whole (sole) chunk
        Ok(match op {
            TransportOp::AllReduce(b) | TransportOp::AllGather(b) => b,
            TransportOp::ReduceScatter(b) => {
                let (lo, hi) = chunk_bounds(b.len(), 1, 0);
                b[lo..hi].to_vec()
            }
        })
    }
}

impl Transport for LoopbackTransport {
    fn rank(&self) -> usize {
        0
    }

    fn size(&self) -> usize {
        1
    }

    fn try_barrier(&self) -> Result<(), RankLost> {
        self.check()
    }

    fn try_all_reduce(&self, _buf: &mut [f32]) -> Result<(), CollectiveError> {
        // mirrors the shared-memory contract: a size-1 reduce is the
        // identity and succeeds without touching the (nonexistent) wire,
        // so an armed bit flip is not consumed (law 4)
        self.check()?;
        Ok(())
    }

    fn try_all_gather(&self, local: &[f32], out: &mut Vec<f32>) -> Result<(), RankLost> {
        self.check()?;
        out.clear();
        out.extend_from_slice(local);
        Ok(())
    }

    fn try_reduce_scatter(
        &self,
        buf: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<(), CollectiveError> {
        self.check()?;
        let (lo, hi) = chunk_bounds(buf.len(), 1, 0);
        out.clear();
        out.extend_from_slice(&buf[lo..hi]);
        Ok(())
    }

    fn try_broadcast(&self, _buf: &mut [f32], root: usize) -> Result<(), RankLost> {
        assert_eq!(root, 0, "loopback has exactly one rank");
        self.check()
    }

    fn submit(&mut self, ops: Vec<TransportOp>) -> Vec<Ticket> {
        // inline execution in issue order is trivially FIFO (law 2)
        ops.into_iter()
            .map(|op| {
                let t = Ticket(self.next_ticket);
                self.next_ticket += 1;
                let result = self.run_op(op);
                self.done.insert(t.0, result);
                t
            })
            .collect()
    }

    fn wait(&mut self, ticket: Ticket) -> Result<Vec<f32>, CollectiveError> {
        self.done
            .remove(&ticket.0)
            .unwrap_or(Err(CollectiveError::Lost(RankLost::Poisoned)))
    }

    fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    fn quiesce(&mut self) {
        // everything completed at submit time; nothing to drain
    }

    fn timeout(&self) -> Option<Duration> {
        self.timeout
    }

    fn arm_bitflip(&self, _bit: u32) {
        // armed but never consumed: a single-rank group has no wire (the
        // shared-memory backend behaves identically at size 1)
        self.armed_bit.store(true, Ordering::Release);
    }
}

/// Compute the blocking reference result for an op the way
/// [`LoopbackTransport`] would at an arbitrary world size — the oracle the
/// conformance battery compares every backend against.
pub fn reference_result(op: &TransportOp, inputs: &[Vec<f32>], rank: usize) -> Vec<f32> {
    let world = inputs.len();
    match op {
        TransportOp::AllReduce(_) => {
            let len = inputs[0].len();
            (0..len).map(|i| inputs.iter().map(|b| b[i]).sum()).collect()
        }
        TransportOp::AllGather(_) => inputs.iter().flatten().copied().collect(),
        TransportOp::ReduceScatter(_) => {
            let len = inputs[0].len();
            let (lo, hi) = chunk_bounds(len, world, rank);
            (lo..hi).map(|i| inputs.iter().map(|b| b[i]).sum()).collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_matches_reference_semantics() {
        let t = LoopbackTransport::new();
        let mut buf = vec![1.0, 2.0, 3.0];
        t.try_all_reduce(&mut buf).unwrap();
        assert_eq!(buf, vec![1.0, 2.0, 3.0]);
        let mut out = Vec::new();
        t.try_all_gather(&[4.0, 5.0], &mut out).unwrap();
        assert_eq!(out, vec![4.0, 5.0]);
        t.try_reduce_scatter(&[7.0, 8.0], &mut out).unwrap();
        assert_eq!(out, vec![7.0, 8.0]);
        t.try_barrier().unwrap();
    }

    #[test]
    fn loopback_poison_is_permanent_and_structured() {
        let mut t = LoopbackTransport::new();
        t.poison();
        assert!(t.is_poisoned());
        assert_eq!(t.try_barrier(), Err(RankLost::Poisoned));
        let tickets = t.submit(vec![TransportOp::AllReduce(vec![1.0])]);
        assert!(matches!(t.wait(tickets[0]), Err(CollectiveError::Lost(_))));
    }

    #[test]
    fn loopback_tickets_are_single_use_and_fifo() {
        let mut t = LoopbackTransport::new();
        let tickets = t.submit(vec![
            TransportOp::AllGather(vec![1.0]),
            TransportOp::AllGather(vec![2.0]),
        ]);
        assert_eq!(tickets, vec![Ticket(0), Ticket(1)]);
        assert_eq!(t.wait(tickets[1]).unwrap(), vec![2.0]);
        assert_eq!(t.wait(tickets[0]).unwrap(), vec![1.0]);
        assert!(t.wait(tickets[0]).is_err(), "a ticket redeems exactly once");
    }

    #[test]
    fn shared_mem_transport_round_trips_all_verbs() {
        let mut endpoints: Vec<SharedMemTransport> =
            SharedMemTransport::create(2, false, Some(Duration::from_secs(20)));
        std::thread::scope(|s| {
            for t in endpoints.iter_mut() {
                s.spawn(move || {
                    let r = t.rank() as f32;
                    let mut buf = vec![r, r + 1.0];
                    t.try_all_reduce(&mut buf).unwrap();
                    assert_eq!(buf, vec![1.0, 3.0]);
                    let tickets = t.submit(vec![TransportOp::AllGather(vec![r])]);
                    assert_eq!(t.wait(tickets[0]).unwrap(), vec![0.0, 1.0]);
                    t.quiesce();
                    t.try_barrier().unwrap();
                });
            }
        });
    }
}
