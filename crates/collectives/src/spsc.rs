//! A bounded lock-free single-producer / single-consumer job ring.
//!
//! This is the comm-thread submission path of [`crate::nonblocking`]: the
//! rank (compute) thread is the producer, the comm thread the consumer.
//! The previous design handed jobs through `std::sync::mpsc`, whose
//! mutex/condvar rendezvous showed up as real step-time regression in
//! `BENCH_overlap.json` — issuing a collective cost a lock acquisition,
//! a heap node and often a futex wake. This ring makes the steady-state
//! cost of issuing a job one slot write plus one release store, and a
//! whole batch of jobs one release store total ([`Producer::push_batch`]).
//!
//! ## Design (classic Lamport queue + cached indices + park/unpark)
//!
//! * Fixed power-of-two capacity; `head` is the consumer cursor, `tail`
//!   the producer cursor, both monotonically increasing `AtomicUsize`
//!   (slot = `index & mask`).
//! * Each side caches the other side's cursor and only re-loads it when
//!   the cached value implies full/empty, so the fast path touches one
//!   shared cache line per operation, not two.
//! * Blocking is cooperative, not built into the ring: a side that would
//!   block publishes its `std::thread::Thread` handle and parks; the
//!   peer unparks it *only* when the flag says someone is parked, so a
//!   streaming producer never pays a futex syscall.
//! * Dropping the [`Producer`] closes the ring: the consumer drains every
//!   queued item and then observes disconnection. Dropping the
//!   [`Consumer`] makes every subsequent push fail with the item handed
//!   back ([`PushError::Disconnected`]) — the shutdown-races-enqueue path
//!   a dying rank takes. Items still in the ring when *both* sides are
//!   gone are dropped by the last side out.
//!
//! The suite in `tests/spsc_queue.rs` stress-tests FIFO order, the
//! full/empty boundaries, drop-while-nonempty and the shutdown race.

use parking_lot::Mutex;
use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::Thread;

/// Why a push could not complete.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The ring is full; the item is handed back for retry.
    Full(T),
    /// The consumer is gone; the item is handed back so nothing is lost.
    Disconnected(T),
}

impl<T> PushError<T> {
    /// Recover the item that could not be enqueued.
    pub fn into_inner(self) -> T {
        match self {
            Self::Full(v) | Self::Disconnected(v) => v,
        }
    }
}

/// One side's parked-thread slot: flag checked on the fast path, handle
/// behind a mutex touched only when the flag is up (slow path).
#[derive(Debug, Default)]
struct Parker {
    parked: AtomicBool,
    thread: Mutex<Option<Thread>>,
}

impl Parker {
    /// Register the current thread and report readiness to park. The
    /// caller must re-check its wake condition *after* this call and
    /// before actually parking (standard flag/park protocol).
    fn prepare_park(&self) {
        *self.thread.lock() = Some(std::thread::current());
        self.parked.store(true, Ordering::SeqCst);
    }

    fn clear(&self) {
        self.parked.store(false, Ordering::SeqCst);
    }

    /// Wake the registered thread if (and only if) one is parked.
    fn wake(&self) {
        if self.parked.swap(false, Ordering::SeqCst) {
            if let Some(t) = self.thread.lock().take() {
                t.unpark();
            }
        }
    }
}

#[derive(Debug)]
struct Ring<T> {
    mask: usize,
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Consumer cursor (next index to pop).
    head: AtomicUsize,
    /// Producer cursor (next index to fill).
    tail: AtomicUsize,
    producer_alive: AtomicBool,
    consumer_alive: AtomicBool,
    /// Consumer parks here when the ring is empty.
    consumer_parker: Parker,
    /// Producer parks here when the ring is full.
    producer_parker: Parker,
}

// T moves across the channel; the ring itself is shared by exactly one
// producer and one consumer thread (enforced by the handle types).
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

/// Create a bounded SPSC ring with room for at least `capacity` items
/// (rounded up to a power of two, minimum 2).
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> =
        (0..cap).map(|_| UnsafeCell::new(MaybeUninit::uninit())).collect();
    let ring = Arc::new(Ring {
        mask: cap - 1,
        slots,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        producer_alive: AtomicBool::new(true),
        consumer_alive: AtomicBool::new(true),
        consumer_parker: Parker::default(),
        producer_parker: Parker::default(),
    });
    (
        Producer { ring: Arc::clone(&ring), cached_head: 0 },
        Consumer { ring, cached_tail: 0 },
    )
}

/// The sending half of the ring. `!Sync` by construction — exactly one
/// thread may push.
#[derive(Debug)]
pub struct Producer<T> {
    ring: Arc<Ring<T>>,
    /// Last observed consumer cursor; refreshed only when the ring looks
    /// full, so the fast path reads one shared atomic, not two.
    cached_head: usize,
}

impl<T> Producer<T> {
    /// Capacity of the ring.
    pub fn capacity(&self) -> usize {
        self.ring.mask + 1
    }

    /// Items currently queued (racy snapshot, exact when quiescent).
    pub fn len(&self) -> usize {
        self.ring.tail.load(Ordering::Acquire).wrapping_sub(self.ring.head.load(Ordering::Acquire))
    }

    /// Whether the ring is empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the consumer is still attached.
    pub fn consumer_alive(&self) -> bool {
        self.ring.consumer_alive.load(Ordering::Acquire)
    }

    fn push_impl(&mut self, value: T, wake: bool) -> Result<(), PushError<T>> {
        if !self.consumer_alive() {
            return Err(PushError::Disconnected(value));
        }
        let tail = self.ring.tail.load(Ordering::Relaxed);
        if tail.wrapping_sub(self.cached_head) > self.ring.mask {
            self.cached_head = self.ring.head.load(Ordering::Acquire);
            if tail.wrapping_sub(self.cached_head) > self.ring.mask {
                return Err(PushError::Full(value));
            }
        }
        unsafe {
            (*self.ring.slots[tail & self.ring.mask].get()).write(value);
        }
        self.ring.tail.store(tail.wrapping_add(1), Ordering::Release);
        if wake {
            self.ring.consumer_parker.wake();
        }
        Ok(())
    }

    /// Nonblocking push: one slot write and one release store on success.
    pub fn push(&mut self, value: T) -> Result<(), PushError<T>> {
        self.push_impl(value, true)
    }

    /// [`Producer::push`] without the consumer wakeup: the item is
    /// published (visible to `pop`) but a consumer parked on empty stays
    /// parked. For callers whose consumer is a *fallback* executor — wake
    /// it explicitly with [`Producer::wake_consumer`] when its help is
    /// actually needed, or let its `Drop`-time drain pick the items up.
    pub fn push_quiet(&mut self, value: T) -> Result<(), PushError<T>> {
        self.push_impl(value, false)
    }

    /// Wake the consumer if it is parked on an empty ring (one atomic swap
    /// when nobody is parked). Pair with [`Producer::push_quiet`].
    pub fn wake_consumer(&self) {
        self.ring.consumer_parker.wake();
    }

    fn push_batch_impl(&mut self, values: impl IntoIterator<Item = T>, wake: bool) -> (usize, Vec<T>) {
        let mut values = values.into_iter();
        if !self.consumer_alive() {
            return (0, values.collect());
        }
        let tail = self.ring.tail.load(Ordering::Relaxed);
        let mut filled = 0usize;
        let mut overflow = Vec::new();
        for value in &mut values {
            let idx = tail.wrapping_add(filled);
            if idx.wrapping_sub(self.cached_head) > self.ring.mask {
                self.cached_head = self.ring.head.load(Ordering::Acquire);
                if idx.wrapping_sub(self.cached_head) > self.ring.mask {
                    overflow.push(value);
                    break;
                }
            }
            unsafe {
                (*self.ring.slots[idx & self.ring.mask].get()).write(value);
            }
            filled += 1;
        }
        if filled > 0 {
            self.ring.tail.store(tail.wrapping_add(filled), Ordering::Release);
            if wake {
                self.ring.consumer_parker.wake();
            }
        }
        overflow.extend(values);
        (filled, overflow)
    }

    /// Batched push: writes every slot, then publishes the whole batch
    /// with a **single** release store and at most one consumer wakeup.
    /// Returns the number of items enqueued; the rest are handed back in
    /// order if the ring fills or the consumer disconnects mid-batch.
    pub fn push_batch(&mut self, values: impl IntoIterator<Item = T>) -> (usize, Vec<T>) {
        self.push_batch_impl(values, true)
    }

    /// [`Producer::push_batch`] without the consumer wakeup (see
    /// [`Producer::push_quiet`]).
    pub fn push_batch_quiet(&mut self, values: impl IntoIterator<Item = T>) -> (usize, Vec<T>) {
        self.push_batch_impl(values, false)
    }

    /// Blocking push: parks until a slot frees up. Fails only when the
    /// consumer disconnects ([`PushError::Disconnected`]), racing shutdown
    /// included — the item always comes back to the caller.
    pub fn push_wait(&mut self, mut value: T) -> Result<(), PushError<T>> {
        loop {
            match self.push(value) {
                Ok(()) => return Ok(()),
                Err(PushError::Disconnected(v)) => return Err(PushError::Disconnected(v)),
                Err(PushError::Full(v)) => value = v,
            }
            // slow path: register, re-check, park
            self.ring.producer_parker.prepare_park();
            let tail = self.ring.tail.load(Ordering::Relaxed);
            let head = self.ring.head.load(Ordering::Acquire);
            if tail.wrapping_sub(head) <= self.ring.mask || !self.consumer_alive() {
                self.ring.producer_parker.clear();
                continue;
            }
            std::thread::park();
        }
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.ring.producer_alive.store(false, Ordering::Release);
        // wake a consumer parked on empty so it observes the close
        self.ring.consumer_parker.wake();
        // if the consumer is already gone, nobody will drain: do it here
        if !self.consumer_alive() {
            drain(&self.ring);
        }
    }
}

/// The receiving half of the ring.
#[derive(Debug)]
pub struct Consumer<T> {
    ring: Arc<Ring<T>>,
    /// Last observed producer cursor; refreshed only when the ring looks
    /// empty (mirror of [`Producer::cached_head`]).
    cached_tail: usize,
}

impl<T> Consumer<T> {
    /// Items currently queued (racy snapshot, exact when quiescent).
    pub fn len(&self) -> usize {
        self.ring.tail.load(Ordering::Acquire).wrapping_sub(self.ring.head.load(Ordering::Acquire))
    }

    /// Whether the ring is empty (racy snapshot).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the producer is still attached.
    pub fn producer_alive(&self) -> bool {
        self.ring.producer_alive.load(Ordering::Acquire)
    }

    /// Nonblocking pop.
    pub fn pop(&mut self) -> Option<T> {
        let head = self.ring.head.load(Ordering::Relaxed);
        if head == self.cached_tail {
            self.cached_tail = self.ring.tail.load(Ordering::Acquire);
            if head == self.cached_tail {
                return None;
            }
        }
        let value = unsafe { (*self.ring.slots[head & self.ring.mask].get()).assume_init_read() };
        self.ring.head.store(head.wrapping_add(1), Ordering::Release);
        self.ring.producer_parker.wake();
        Some(value)
    }

    /// Blocking pop: parks until an item arrives. Returns `None` only
    /// when the producer has disconnected **and** the ring is drained —
    /// queued jobs always complete before shutdown is observed.
    pub fn pop_wait(&mut self) -> Option<T> {
        loop {
            if let Some(v) = self.pop() {
                return Some(v);
            }
            if !self.producer_alive() {
                // one final pop covers the publish-then-close race
                return self.pop();
            }
            // slow path: register, re-check, park
            self.ring.consumer_parker.prepare_park();
            if !self.is_empty() || !self.producer_alive() {
                self.ring.consumer_parker.clear();
                continue;
            }
            std::thread::park();
        }
    }
}

impl<T> Drop for Consumer<T> {
    fn drop(&mut self) {
        self.ring.consumer_alive.store(false, Ordering::Release);
        // wake a producer parked on full so it observes the close
        self.ring.producer_parker.wake();
        // if the producer is already gone, this side drains the leftovers
        if !self.producer_alive() {
            drain(&self.ring);
        }
    }
}

/// Drop every undrained item. Called by whichever side drops *last*, so
/// exactly one thread touches the slots (both `alive` flags are false and
/// the peer can no longer push or pop).
fn drain<T>(ring: &Ring<T>) {
    let tail = ring.tail.load(Ordering::Acquire);
    let mut head = ring.head.load(Ordering::Acquire);
    while head != tail {
        unsafe {
            (*ring.slots[head & ring.mask].get()).assume_init_drop();
        }
        head = head.wrapping_add(1);
    }
    ring.head.store(tail, Ordering::Release);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_single_thread() {
        let (mut tx, mut rx) = ring::<u32>(4);
        for round in 0..100u32 {
            assert!(tx.push(round * 2).is_ok());
            assert!(tx.push(round * 2 + 1).is_ok());
            assert_eq!(rx.pop(), Some(round * 2));
            assert_eq!(rx.pop(), Some(round * 2 + 1));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn full_ring_rejects_then_accepts() {
        let (mut tx, mut rx) = ring::<u8>(2);
        assert!(tx.push(1).is_ok());
        assert!(tx.push(2).is_ok());
        assert_eq!(tx.push(3), Err(PushError::Full(3)));
        assert_eq!(rx.pop(), Some(1));
        assert!(tx.push(3).is_ok());
    }

    #[test]
    fn closed_consumer_hands_item_back() {
        let (mut tx, rx) = ring::<String>(4);
        drop(rx);
        match tx.push("job".into()) {
            Err(PushError::Disconnected(s)) => assert_eq!(s, "job"),
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn consumer_drains_after_producer_drop() {
        let (mut tx, mut rx) = ring::<u32>(8);
        for i in 0..5 {
            tx.push(i).unwrap();
        }
        drop(tx);
        for i in 0..5 {
            assert_eq!(rx.pop_wait(), Some(i));
        }
        assert_eq!(rx.pop_wait(), None);
    }

    #[test]
    fn push_batch_publishes_all() {
        let (mut tx, mut rx) = ring::<u32>(8);
        let (n, rest) = tx.push_batch(0..6);
        assert_eq!(n, 6);
        assert!(rest.is_empty());
        for i in 0..6 {
            assert_eq!(rx.pop(), Some(i));
        }
    }

    #[test]
    fn push_batch_hands_back_overflow_in_order() {
        let (mut tx, _rx) = ring::<u32>(4);
        let (n, rest) = tx.push_batch(0..10);
        assert_eq!(n, 4);
        assert_eq!(rest, vec![4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn cross_thread_handoff() {
        let (mut tx, mut rx) = ring::<u64>(16);
        let t = std::thread::spawn(move || {
            let mut sum = 0u64;
            while let Some(v) = rx.pop_wait() {
                sum += v;
            }
            sum
        });
        for i in 1..=1000u64 {
            tx.push_wait(i).unwrap();
        }
        drop(tx);
        assert_eq!(t.join().unwrap(), 500_500);
    }
}
