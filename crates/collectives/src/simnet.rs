//! Seeded lossy/delayed network transport.
//!
//! [`SimNetTransport`] puts the production shared-memory data plane
//! behind a misbehaving wire model: each collective an endpoint issues
//! consults a [`FaultPlan`] — the same link kinds the chaos harness
//! injects into training (stragglers, degraded links, hangs-as-crashes,
//! in-flight bit flips) — plus a small seeded per-op jitter, all
//! deterministic in `(seed, rank, op_index)`. The op index plays the
//! role the step index plays in training, so one plan drives both.
//!
//! Because the data plane underneath is the real group machinery, the
//! transport laws (DESIGN.md §17) must hold *unchanged*: delays may
//! stretch wall-clock but never reorder FIFO completion; an injected
//! crash must surface as [`RankLost`] on every peer within a timeout;
//! an injected bit flip must yield the unanimous checksum verdict. The
//! conformance battery instantiates the same assertions against this
//! transport as against the clean ones — the point of the exercise.

use crate::barrier::RankLost;
use crate::group::{Group, RankHandle};
use crate::guard::CollectiveError;
use crate::transport::{SharedMemTransport, Ticket, Transport, TransportOp};
use geofm_resilience::FaultPlan;
use std::cell::Cell;
use std::sync::Arc;
use std::time::Duration;

/// Wire-model knobs. The defaults keep jitter small enough for CI while
/// still exercising the reordering-adjacent timing paths.
#[derive(Debug, Clone)]
pub struct SimNetConfig {
    /// Base per-op propagation delay.
    pub base_latency: Duration,
    /// Upper bound on the seeded uniform jitter added per op.
    pub jitter: Duration,
    /// Bound on any single collective wait (law 3); `None` disables.
    pub timeout: Option<Duration>,
    /// Verify reduce checksums (law 4).
    pub checksums: bool,
}

impl Default for SimNetConfig {
    fn default() -> Self {
        Self {
            base_latency: Duration::from_micros(20),
            jitter: Duration::from_micros(80),
            timeout: Some(Duration::from_secs(20)),
            checksums: true,
        }
    }
}

/// splitmix64 — the repo-standard seeded generator for deterministic
/// schedules.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e3779b97f4a7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
    z ^ (z >> 31)
}

/// One endpoint of the lossy/delayed simulated network: the production
/// shared-memory transport behind a [`FaultPlan`]-driven wire model.
pub struct SimNetTransport {
    inner: SharedMemTransport,
    plan: Option<Arc<FaultPlan>>,
    cfg: SimNetConfig,
    seed: u64,
    /// Monotone per-endpoint op counter — the "step" axis of the plan.
    op_index: Cell<usize>,
}

impl SimNetTransport {
    /// Build one endpoint per rank of a fresh `world`-rank group, all
    /// sharing `plan` as the wire-fault schedule.
    pub fn create(
        world: usize,
        seed: u64,
        plan: Option<Arc<FaultPlan>>,
        cfg: SimNetConfig,
    ) -> Vec<SimNetTransport> {
        Group::create(world)
            .into_iter()
            .map(|h| {
                let h = h.with_checksums(cfg.checksums).with_timeout(cfg.timeout);
                Self::from_handle(h, seed, plan.clone(), cfg.clone())
            })
            .collect()
    }

    /// Wrap one configured [`RankHandle`].
    pub fn from_handle(
        handle: RankHandle,
        seed: u64,
        plan: Option<Arc<FaultPlan>>,
        cfg: SimNetConfig,
    ) -> Self {
        Self {
            inner: SharedMemTransport::from_handle(handle),
            plan,
            cfg,
            seed,
            op_index: Cell::new(0),
        }
    }

    /// The wire model, applied before an op touches the data plane.
    /// Returns `Err` when the plan says this endpoint dies here (the
    /// group is poisoned first, so peers observe law 3, not a hang).
    fn traverse_wire(&self) -> Result<(), RankLost> {
        let op = self.op_index.get();
        self.op_index.set(op + 1);
        let rank = self.inner.rank();

        // deterministic jitter in (seed, rank, op)
        let mut s = self
            .seed
            .wrapping_mul(0x2545f4914f6cdd1d)
            .wrapping_add((rank as u64) << 32)
            .wrapping_add(op as u64);
        let jitter_ns = self.cfg.jitter.as_nanos() as u64;
        let delay = self.cfg.base_latency
            + if jitter_ns == 0 {
                Duration::ZERO
            } else {
                Duration::from_nanos(splitmix(&mut s) % jitter_ns)
            };

        if let Some(plan) = &self.plan {
            // straggler link: extra one-shot propagation delay
            if let Some(d) = plan.slow_delay(rank, op) {
                // scaled down: plan delays are sized for training steps
                std::thread::sleep(d / 50);
            }
            // persistently degraded link: stretch every barrier crossing
            if let Some(f) = plan.link_slowdown(rank, op) {
                self.inner.handle().set_link_slowdown(f);
            }
            // dead endpoint: poison first so peers get RankLost, then
            // report the loss locally (a hang draw dies the same way —
            // the wire model has no way to "hang politely" under law 3)
            if plan.take_crash(rank, op) || plan.take_hang(rank, op) {
                self.inner.poison();
                return Err(RankLost::Poisoned);
            }
            // in-flight corruption: arm the one-shot flip; the checksum
            // guard underneath turns it into the unanimous verdict
            if let Some(bit) = plan.take_bitflip(rank, op) {
                self.inner.arm_bitflip(bit);
            }
        }

        std::thread::sleep(delay);
        Ok(())
    }
}

impl Transport for SimNetTransport {
    fn rank(&self) -> usize {
        self.inner.rank()
    }

    fn size(&self) -> usize {
        self.inner.size()
    }

    fn try_barrier(&self) -> Result<(), RankLost> {
        self.traverse_wire()?;
        self.inner.try_barrier()
    }

    fn try_all_reduce(&self, buf: &mut [f32]) -> Result<(), CollectiveError> {
        self.traverse_wire()?;
        self.inner.try_all_reduce(buf)
    }

    fn try_all_gather(&self, local: &[f32], out: &mut Vec<f32>) -> Result<(), RankLost> {
        self.traverse_wire()?;
        self.inner.try_all_gather(local, out)
    }

    fn try_reduce_scatter(
        &self,
        buf: &[f32],
        out: &mut Vec<f32>,
    ) -> Result<(), CollectiveError> {
        self.traverse_wire()?;
        self.inner.try_reduce_scatter(buf, out)
    }

    fn try_broadcast(&self, buf: &mut [f32], root: usize) -> Result<(), RankLost> {
        self.traverse_wire()?;
        self.inner.try_broadcast(buf, root)
    }

    fn submit(&mut self, ops: Vec<TransportOp>) -> Vec<Ticket> {
        // the wire is traversed per op at submission; a crash draw
        // poisons before the batch reaches the data plane, so the
        // tickets come back but redeem as RankLost (law 3)
        for _ in 0..ops.len() {
            let _ = self.traverse_wire();
        }
        self.inner.submit(ops)
    }

    fn wait(&mut self, ticket: Ticket) -> Result<Vec<f32>, CollectiveError> {
        self.inner.wait(ticket)
    }

    fn poison(&self) {
        self.inner.poison();
    }

    fn is_poisoned(&self) -> bool {
        self.inner.is_poisoned()
    }

    fn quiesce(&mut self) {
        self.inner.quiesce();
    }

    fn timeout(&self) -> Option<Duration> {
        self.inner.timeout()
    }

    fn arm_bitflip(&self, bit: u32) {
        self.inner.arm_bitflip(bit);
    }

    fn pool_stats(&self) -> Option<crate::nonblocking::CellPoolStats> {
        self.inner.pool_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_simnet_matches_reference_despite_jitter() {
        let cfg = SimNetConfig {
            base_latency: Duration::from_micros(1),
            jitter: Duration::from_micros(10),
            ..SimNetConfig::default()
        };
        let mut endpoints = SimNetTransport::create(2, 7, None, cfg);
        std::thread::scope(|s| {
            for t in endpoints.iter_mut() {
                s.spawn(move || {
                    let r = t.rank() as f32;
                    let mut buf = vec![r + 1.0; 4];
                    t.try_all_reduce(&mut buf).unwrap();
                    assert_eq!(buf, vec![3.0; 4]);
                    let tickets = t.submit(vec![TransportOp::AllGather(vec![r])]);
                    assert_eq!(t.wait(tickets[0]).unwrap(), vec![0.0, 1.0]);
                    t.quiesce();
                });
            }
        });
    }
}
