//! Nonblocking collectives: a per-rank communication thread that plays the
//! role of the GPU comm stream.
//!
//! Real FSDP hides collective latency by issuing all-gathers and
//! reduce-scatters on a dedicated stream while the compute stream keeps
//! working; the paper's throughput results (§IV-D, ~22 % exposed comm at
//! 64 nodes) depend on that overlap. This module gives the threaded engine
//! the same capability: a [`CommThread`] owns a FIFO job queue, and
//! [`CommThread::all_gather_async`], [`CommThread::reduce_scatter_async`]
//! and [`CommThread::all_reduce_async`] enqueue the corresponding blocking
//! collective to run there, returning a [`CollectiveHandle`] immediately.
//!
//! ## Why the async path is bit-identical to the blocking path
//!
//! The comm thread executes the *exact same* collective implementations on
//! a clone of the caller's [`RankHandle`] — same deterministic rank-order
//! reduction, same checksum verification, same timeout/adaptive/sabotage
//! state (those all live behind `Arc`s shared by handle clones). The only
//! thing that changes is *which thread blocks*. Because the queue is FIFO
//! and every rank submits its collectives in the same program order (the
//! SPMD contract), the cross-rank issue order of barriers is identical to
//! the blocking schedule, so results match bit for bit.
//!
//! ## Failure semantics
//!
//! A collective that fails on the comm thread surfaces its
//! [`CollectiveError`] from [`CollectiveHandle::wait`]. A lost rank
//! poisons the group exactly as in the blocking path, so every queued and
//! future job drains promptly with `Lost` instead of hanging. Dropping a
//! [`CommThread`] closes the queue and detaches the worker: a worker stuck
//! in a collective can only be waiting on peers, and the poison/timeout
//! machinery is what unblocks it — joining here could stall the teardown
//! of a rank that is dying precisely because a peer stopped responding.

use crate::barrier::RankLost;
use crate::group::RankHandle;
use crate::guard::CollectiveError;
use std::sync::mpsc;
use std::thread::JoinHandle;

/// One queued collective.
enum Op {
    /// All-gather of this rank's shard.
    AllGather(Vec<f32>),
    /// Reduce-scatter of a full-length contribution.
    ReduceScatter(Vec<f32>),
    /// All-reduce, in place over the carried buffer.
    AllReduce(Vec<f32>),
}

impl Op {
    fn name(&self) -> &'static str {
        match self {
            Op::AllGather(_) => "all_gather",
            Op::ReduceScatter(_) => "reduce_scatter",
            Op::AllReduce(_) => "all_reduce",
        }
    }
}

struct Job {
    /// The group handle the op runs on — a clone, so it shares the
    /// caller's timeout/adaptive/checksum/sabotage configuration.
    handle: RankHandle,
    op: Op,
    done: mpsc::SyncSender<Result<Vec<f32>, CollectiveError>>,
}

/// An in-flight nonblocking collective. Obtain the result (or the failure)
/// with [`CollectiveHandle::wait`]; dropping the handle abandons the
/// result but the collective still runs to completion on the comm thread,
/// keeping the rank's barrier schedule aligned with its peers.
#[must_use = "an unawaited collective handle abandons its result"]
#[derive(Debug)]
pub struct CollectiveHandle {
    rx: mpsc::Receiver<Result<Vec<f32>, CollectiveError>>,
    op: &'static str,
}

impl CollectiveHandle {
    /// Block until the collective completes and return its output buffer:
    /// the gathered vector (all-gather), this rank's owned chunk
    /// (reduce-scatter) or the fully reduced buffer (all-reduce).
    ///
    /// On [`CollectiveError::Corrupt`] the collective *completed* (all
    /// barriers crossed, the group stays usable) but the data was garbage
    /// and is not returned — substitute a deterministic placeholder if the
    /// schedule must continue. On [`CollectiveError::Lost`] the group is
    /// poisoned. A comm thread that died surfaces as `Lost(Poisoned)`.
    pub fn wait(self) -> Result<Vec<f32>, CollectiveError> {
        self.rx.recv().unwrap_or(Err(CollectiveError::Lost(RankLost::Poisoned)))
    }

    /// The operation this handle belongs to (for diagnostics).
    pub fn op(&self) -> &'static str {
        self.op
    }
}

/// A per-rank communication thread: the software twin of the GPU comm
/// stream. Jobs run strictly in submission order (FIFO), which is what
/// preserves the SPMD collective-ordering contract across ranks.
#[derive(Debug)]
pub struct CommThread {
    tx: Option<mpsc::Sender<Job>>,
    worker: Option<JoinHandle<()>>,
}

impl CommThread {
    /// Spawn the worker. One comm thread serves all of a rank's groups
    /// (world / shard / replica): each submission carries its own handle.
    pub fn spawn() -> Self {
        let (tx, rx) = mpsc::channel::<Job>();
        let worker = std::thread::Builder::new()
            .name("geofm-comm".into())
            .spawn(move || {
                while let Ok(Job { handle, op, done }) = rx.recv() {
                    let result = match op {
                        Op::AllGather(local) => {
                            let mut out = Vec::new();
                            handle
                                .try_all_gather(&local, &mut out)
                                .map(|()| out)
                                .map_err(CollectiveError::from)
                        }
                        Op::ReduceScatter(buf) => {
                            let mut out = Vec::new();
                            handle.try_reduce_scatter(&buf, &mut out).map(|()| out)
                        }
                        Op::AllReduce(mut buf) => {
                            handle.try_all_reduce(&mut buf).map(move |()| buf)
                        }
                    };
                    // a dropped handle abandoned the result; that's fine —
                    // the collective itself already ran (or failed)
                    let _ = done.send(result);
                }
            })
            .expect("cannot spawn comm thread");
        Self { tx: Some(tx), worker: Some(worker) }
    }

    fn submit(&self, handle: &RankHandle, op: Op) -> CollectiveHandle {
        let (done, rx) = mpsc::sync_channel(1);
        let name = op.name();
        if let Some(tx) = &self.tx {
            // a send failure means the worker died; the closed `rx` then
            // reports Lost(Poisoned) from wait() instead of panicking here
            let _ = tx.send(Job { handle: handle.clone(), op, done });
        }
        CollectiveHandle { rx, op: name }
    }

    /// Nonblocking [`RankHandle::try_all_gather`] on `handle`'s group:
    /// gathers `local` from every rank; `wait` yields the concatenation in
    /// rank order.
    pub fn all_gather_async(&self, handle: &RankHandle, local: &[f32]) -> CollectiveHandle {
        self.submit(handle, Op::AllGather(local.to_vec()))
    }

    /// Nonblocking [`RankHandle::try_reduce_scatter`]: `wait` yields this
    /// rank's owned chunk of the sum. Runs on the same checksummed path as
    /// the blocking collective (sabotage injection included).
    pub fn reduce_scatter_async(&self, handle: &RankHandle, buf: &[f32]) -> CollectiveHandle {
        self.submit(handle, Op::ReduceScatter(buf.to_vec()))
    }

    /// Nonblocking [`RankHandle::try_all_reduce`]: `wait` yields the fully
    /// reduced buffer.
    pub fn all_reduce_async(&self, handle: &RankHandle, buf: &[f32]) -> CollectiveHandle {
        self.submit(handle, Op::AllReduce(buf.to_vec()))
    }

    /// Close the queue and wait for the worker to drain. Only safe when no
    /// peer is wedged (tests); the `Drop` path detaches instead.
    pub fn join(mut self) {
        self.tx.take();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl Drop for CommThread {
    fn drop(&mut self) {
        // close the queue; detach the worker (see module docs)
        self.tx.take();
        drop(self.worker.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::Group;
    use std::time::Duration;

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn async_all_reduce_matches_blocking() {
        let handles = Group::create(4);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let comm = CommThread::spawn();
                    let data: Vec<f32> = (0..13).map(|i| (i * (h.rank() + 1)) as f32).collect();
                    let mut blocking = data.clone();
                    h.try_all_reduce(&mut blocking).unwrap();
                    let from_async = comm.all_reduce_async(&h, &data).wait().unwrap();
                    assert_eq!(bits(&blocking), bits(&from_async));
                });
            }
        });
    }

    #[test]
    fn async_gather_and_scatter_match_blocking() {
        let handles = Group::create(3);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let comm = CommThread::spawn();
                    let local = vec![h.rank() as f32 + 0.5; 4];
                    let mut blocking = Vec::new();
                    h.try_all_gather(&local, &mut blocking).unwrap();
                    let gathered = comm.all_gather_async(&h, &local).wait().unwrap();
                    assert_eq!(bits(&blocking), bits(&gathered));

                    let buf: Vec<f32> = (0..10).map(|i| (i + h.rank() * 10) as f32).collect();
                    let mut rs = Vec::new();
                    h.try_reduce_scatter(&buf, &mut rs).unwrap();
                    let chunk = comm.reduce_scatter_async(&h, &buf).wait().unwrap();
                    assert_eq!(bits(&rs), bits(&chunk));
                });
            }
        });
    }

    #[test]
    fn pipelined_submissions_run_in_fifo_order() {
        // several collectives in flight at once: FIFO execution keeps every
        // rank's barrier order aligned, and results land in issue order
        let handles = Group::create(4);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let comm = CommThread::spawn();
                    let pending: Vec<CollectiveHandle> = (0..8)
                        .map(|round| {
                            let buf = vec![(h.rank() + round) as f32; 6];
                            comm.all_reduce_async(&h, &buf)
                        })
                        .collect();
                    for (round, handle) in pending.into_iter().enumerate() {
                        let out = handle.wait().unwrap();
                        let expect = (0..4).map(|r| (r + round) as f32).sum::<f32>();
                        assert!(out.iter().all(|&v| v == expect), "round {round}: {out:?}");
                    }
                });
            }
        });
    }

    #[test]
    fn dead_rank_fails_async_collectives_without_hanging() {
        let handles = Group::create(3);
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            for h in handles.into_iter().take(2) {
                s.spawn(move || {
                    let h = h.with_timeout(Some(Duration::from_millis(100)));
                    let comm = CommThread::spawn();
                    let r = comm.all_reduce_async(&h, &[1.0f32; 8]).wait();
                    assert!(matches!(r, Err(CollectiveError::Lost(_))), "got {r:?}");
                });
            }
        });
        assert!(start.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn corrupt_reduce_surfaces_from_wait_and_group_stays_usable() {
        let handles = Group::create(2);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let h = h.with_checksums(true);
                    if h.rank() == 0 {
                        h.arm_bitflip(9);
                    }
                    let comm = CommThread::spawn();
                    let r = comm.all_reduce_async(&h, &[1.0f32; 16]).wait();
                    assert!(matches!(r, Err(CollectiveError::Corrupt(_))), "got {r:?}");
                    // detection was in-band: the next async collective works
                    let again = comm.all_reduce_async(&h, &[2.0f32; 16]).wait().unwrap();
                    assert!(again.iter().all(|&v| v == 4.0));
                });
            }
        });
    }

    #[test]
    fn abandoned_handle_still_completes_the_collective() {
        // rank 0 drops its handle; the collective must still run on its
        // comm thread so rank 1's matching call completes
        let handles = Group::create(2);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let h = h.with_timeout(Some(Duration::from_secs(5)));
                    let comm = CommThread::spawn();
                    let first = comm.all_reduce_async(&h, &[1.0f32; 4]);
                    if h.rank() == 0 {
                        drop(first);
                    } else {
                        assert!(first.wait().unwrap().iter().all(|&v| v == 2.0));
                    }
                    // both ranks can still collectivise afterwards
                    let second = comm.all_reduce_async(&h, &[3.0f32; 4]).wait().unwrap();
                    assert!(second.iter().all(|&v| v == 6.0));
                    comm.join();
                });
            }
        });
    }
}
