//! Nonblocking collectives: a per-rank communication thread that plays the
//! role of the GPU comm stream.
//!
//! Real FSDP hides collective latency by issuing all-gathers and
//! reduce-scatters on a dedicated stream while the compute stream keeps
//! working; the paper's throughput results (§IV-D, ~22 % exposed comm at
//! 64 nodes) depend on that overlap. This module gives the threaded engine
//! the same capability — and, since the PR-5 profile showed the *transport
//! of jobs to the comm thread* eating the overlap it bought, the hot path
//! is built so issuing a collective costs roughly one CAS:
//!
//! * jobs travel through a bounded **lock-free SPSC ring**
//!   ([`crate::spsc`]) instead of a mutex/condvar channel, with
//!   [`CommThread::submit_batch`] publishing a whole prefetch window with
//!   a single release store;
//! * groups are **registered once** ([`CommThread::register`] →
//!   [`CommGroup`]) so a job carries one `Arc` bump, not a full
//!   [`RankHandle`] clone per collective;
//! * input and output scratch come from a shared [`BufferPool`], so a
//!   warmed-up step allocates nothing on the comm path;
//! * a waiter that reaches an **unstarted** job *steals and runs it
//!   inline* (claim is one uncontended lock round-trip). On an
//!   oversubscribed core this converts the no-overlap-available case into
//!   exactly the blocking path — no handoff, no context switch — while
//!   truly concurrent hardware still gets the asynchronous pipeline;
//! * the worker is **lazy**: submissions publish quietly (no wakeup), so
//!   on a starved core the worker parks once and the whole step runs on
//!   the steal path with zero producer↔worker context switches. The
//!   worker is woken only when its help is needed — a waiter blocked on a
//!   non-head job, a ring full of retired jobs, or shutdown drain. On
//!   hardware with spare cores the first such wake keeps it draining the
//!   in-flight window concurrently, which is the overlap case;
//! * callers that stage their own input (padding a gradient unit into a
//!   pooled buffer) submit it **by value** ([`OwnedAsyncOp`],
//!   [`CommThread::submit_batch_owned`]) — copy parity with the blocking
//!   engine's scratch reuse.
//!
//! ## Why the async path is bit-identical to the blocking path
//!
//! Whoever executes a job — comm thread or stealing waiter — runs the
//! *exact same* collective implementations on the registered clone of the
//! caller's [`RankHandle`]: same deterministic rank-order reduction, same
//! checksum verification, same timeout/adaptive/sabotage state (those all
//! live behind `Arc`s shared by handle clones). Only *which thread blocks*
//! changes. Jobs execute strictly in submission order: the ring is FIFO,
//! the comm thread never starts job *k+1* before job *k* has completed
//! (a stolen job is awaited, not skipped), and a waiter can only steal the
//! oldest incomplete job (guarded by the completed-sequence counter). So
//! the cross-rank issue order of barriers is identical to the blocking
//! schedule and results match bit for bit.
//!
//! ## Failure semantics
//!
//! A collective that fails surfaces its [`CollectiveError`] from
//! [`CollectiveHandle::wait`]. A lost rank poisons the group exactly as in
//! the blocking path, so every queued and future job drains promptly with
//! `Lost` instead of hanging. Dropping a [`CommThread`] closes the ring
//! and detaches the worker, which still drains every queued job (keeping
//! the rank's barrier schedule aligned with its peers) before exiting; a
//! worker that dies abnormally fails its pending jobs with
//! `Lost(Poisoned)` instead of stranding their waiters.
//!
//! ## Relationship to the `Transport` abstraction
//!
//! This engine is the backing of [`crate::transport::SharedMemTransport`],
//! the in-process backend of the [`crate::transport::Transport`] trait.
//! The transport laws (FIFO completion, poison propagation, bounded
//! quiesce, checksum-verdict agreement, pooled-buffer steady state) are
//! pinned against this module — alongside the SimNet and loopback
//! backends — by the conformance battery in
//! `tests/transport_conformance.rs`; a behavioural change here that
//! breaks a law fails that battery before it can reach the training
//! suites.

use crate::barrier::RankLost;
use crate::group::RankHandle;
use crate::guard::CollectiveError;
use crate::pool::BufferPool;
use crate::spsc::{self, Producer, PushError};
use parking_lot::Mutex;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;
use std::thread::{JoinHandle, Thread};

/// Ring capacity: deep enough that no realistic prefetch window ever
/// blocks on a full ring (the engine keeps ≤ prefetch_depth jobs alive).
const RING_CAPACITY: usize = 256;

/// Upper bound on pooled job cells. The pool self-sizes to the maximum
/// number of simultaneously outstanding cells (≤ ring capacity + live
/// handles); the cap is a safety bound above that, not a working limit.
const CELL_POOL_CAP: usize = RING_CAPACITY * 2;

/// Once this many retired jobs sit undrained in the ring, submission nudges
/// the lazily-parked worker awake so their `Arc`s come back to the cell
/// pool — one unpark per ~64 ops in the steal-dominated regime, instead of
/// letting retired cells pile up to a full ring.
const RECLAIM_WAKE_BACKLOG: u64 = 64;

/// One queued collective's operation, carrying its input buffer by value.
///
/// This is also the public *owned* submission type
/// ([`CommThread::submit_batch_owned`]): a caller that already stages its
/// input in a scratch buffer — e.g. padding a gradient unit — can take
/// that buffer from the comm thread's pool, fill it and hand it over
/// directly, skipping the defensive copy that the borrowed
/// [`AsyncOp`] path must make. The executor recycles the buffer into the
/// pool after the collective runs.
pub enum OwnedAsyncOp {
    /// All-gather of this rank's shard.
    AllGather(Vec<f32>),
    /// All-gather of `range` within a shared, immutable parameter store.
    /// Zero input copy: the job holds the store alive by `Arc` and reads
    /// the slice at execution time. The caller must not mutate the store
    /// until the job has been waited (the FSDP engine's gather phase
    /// guarantees this — parameters only change in the optimizer step,
    /// after every gather of the step completed).
    AllGatherShared(Arc<Vec<f32>>, std::ops::Range<usize>),
    /// Reduce-scatter of a full-length contribution.
    ReduceScatter(Vec<f32>),
    /// All-reduce, in place over the carried buffer.
    AllReduce(Vec<f32>),
}

use OwnedAsyncOp as Op;

impl Op {
    fn name(&self) -> &'static str {
        match self {
            Op::AllGather(_) | Op::AllGatherShared(..) => "all_gather",
            Op::ReduceScatter(_) => "reduce_scatter",
            Op::AllReduce(_) => "all_reduce",
        }
    }
}

/// A nonblocking collective to submit through [`CommThread::submit_batch`].
#[derive(Debug, Clone, Copy)]
pub enum AsyncOp<'a> {
    /// See [`CommThread::all_gather_async`].
    AllGather(&'a [f32]),
    /// See [`CommThread::reduce_scatter_async`].
    ReduceScatter(&'a [f32]),
    /// See [`CommThread::all_reduce_async`].
    AllReduce(&'a [f32]),
}

const PENDING: u8 = 0;
const DONE: u8 = 1;

/// Shared state of one in-flight job: the claimable op, the result slot
/// and the wakeup list. The op lives behind a mutex purely as a claim
/// token — `lock().take()` is one uncontended CAS, and exactly one of
/// {comm thread, stealing waiter} wins it.
struct JobCell {
    /// Issue-order sequence number (1-based) within this comm thread.
    seq: u64,
    /// The group the op runs on — registered once, shared by `Arc`.
    handle: Arc<RankHandle>,
    /// The operation; `None` once claimed by an executor.
    op: Mutex<Option<Op>>,
    /// `PENDING` → `DONE` once `result` is filled.
    state: AtomicU8,
    result: Mutex<Option<Result<Vec<f32>, CollectiveError>>>,
    /// Threads parked on completion (the waiter, and possibly the comm
    /// thread waiting out a stolen job before moving on).
    sleepers: Mutex<Vec<Thread>>,
    /// Completed-sequence counter shared with the comm thread (the
    /// steal-order guard).
    completed: Arc<AtomicU64>,
    /// The comm worker's thread handle, so a waiter that *cannot* steal
    /// (an older job is still pending) can wake the lazily-parked worker.
    worker: Thread,
    pool: Arc<BufferPool>,
}

impl JobCell {
    fn is_done(&self) -> bool {
        self.state.load(Ordering::Acquire) == DONE
    }

    /// Execute the op (if unclaimed) on the calling thread. Returns true
    /// if this call ran the job; false if another thread claimed it.
    fn try_execute(&self) -> bool {
        let Some(op) = self.op.lock().take() else {
            return false;
        };
        let result = match op {
            Op::AllGather(local) => {
                let mut out = self.pool.take(local.len() * self.handle.size());
                let r = self
                    .handle
                    .try_all_gather(&local, &mut out)
                    .map(|()| out)
                    .map_err(CollectiveError::from);
                self.pool.put(local);
                r
            }
            Op::AllGatherShared(buf, range) => {
                let local = &buf[range];
                let mut out = self.pool.take(local.len() * self.handle.size());
                self.handle
                    .try_all_gather(local, &mut out)
                    .map(|()| out)
                    .map_err(CollectiveError::from)
            }
            Op::ReduceScatter(buf) => {
                let mut out = self.pool.take(buf.len() / self.handle.size().max(1) + 1);
                let r = self.handle.try_reduce_scatter(&buf, &mut out).map(|()| out);
                self.pool.put(buf);
                r
            }
            Op::AllReduce(mut buf) => self.handle.try_all_reduce(&mut buf).map(move |()| buf),
        };
        self.complete(result);
        true
    }

    /// Publish the result, advance the completed-sequence counter and wake
    /// every sleeper.
    fn complete(&self, result: Result<Vec<f32>, CollectiveError>) {
        *self.result.lock() = Some(result);
        self.state.store(DONE, Ordering::Release);
        self.completed.store(self.seq, Ordering::Release);
        for t in self.sleepers.lock().drain(..) {
            t.unpark();
        }
    }

    /// Fail the job if nobody executed it (abnormal worker teardown).
    fn fail_if_unrun(&self) {
        if self.op.lock().take().is_some() {
            self.complete(Err(CollectiveError::Lost(RankLost::Poisoned)));
        }
    }

    /// Park until the job completes (no stealing — used by the comm
    /// thread to await a stolen job before starting the next one).
    fn wait_done(&self) {
        let mut spins = 0u32;
        while !self.is_done() {
            spins += 1;
            if spins < 64 {
                std::hint::spin_loop();
                continue;
            }
            self.sleepers.lock().push(std::thread::current());
            if self.is_done() {
                return; // completed between check and registration
            }
            std::thread::park();
        }
    }
}

/// An in-flight nonblocking collective. Obtain the result (or the failure)
/// with [`CollectiveHandle::wait`]; dropping the handle abandons the
/// result but the collective still runs to completion on the comm thread,
/// keeping the rank's barrier schedule aligned with its peers.
#[must_use = "an unawaited collective handle abandons its result"]
pub struct CollectiveHandle {
    cell: Arc<JobCell>,
    op: &'static str,
}

impl std::fmt::Debug for CollectiveHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CollectiveHandle")
            .field("op", &self.op)
            .field("seq", &self.cell.seq)
            .field("done", &self.cell.is_done())
            .finish()
    }
}

impl CollectiveHandle {
    /// Block until the collective completes and return its output buffer:
    /// the gathered vector (all-gather), this rank's owned chunk
    /// (reduce-scatter) or the fully reduced buffer (all-reduce). The
    /// buffer comes from the comm thread's [`BufferPool`]; hand it back
    /// via [`CommThread::recycle`] when done to keep the path
    /// allocation-free.
    ///
    /// If the job has not started yet and every earlier job of this comm
    /// thread has completed, the calling thread **claims and runs it
    /// inline** — semantically identical (same handle, same collective,
    /// same order), but with zero handoff cost when the comm thread is
    /// starved for CPU.
    ///
    /// On [`CollectiveError::Corrupt`] the collective *completed* (all
    /// barriers crossed, the group stays usable) but the data was garbage
    /// and is not returned — substitute a deterministic placeholder if the
    /// schedule must continue. On [`CollectiveError::Lost`] the group is
    /// poisoned. A comm thread that died surfaces as `Lost(Poisoned)`.
    pub fn wait(self) -> Result<Vec<f32>, CollectiveError> {
        let cell = &self.cell;
        if !cell.is_done() {
            // Steal only the oldest incomplete job: running job k while
            // the comm thread runs job k-1 would interleave two
            // collectives of the same rank. The engine waits handles in
            // issue order, so this is the common case, not the exception.
            if cell.completed.load(Ordering::Acquire) == cell.seq - 1 {
                cell.try_execute();
            } else {
                // an older job blocks the steal: wake the lazily-parked
                // worker to drive the queue up to (and through) this job.
                // The worker pops in ring order and awaits each job before
                // the next, so FIFO holds no matter who ends up running
                // which job.
                cell.worker.unpark();
            }
            cell.wait_done();
        }
        cell.result
            .lock()
            .take()
            .unwrap_or(Err(CollectiveError::Lost(RankLost::Poisoned)))
    }

    /// The operation this handle belongs to (for diagnostics).
    pub fn op(&self) -> &'static str {
        self.op
    }

    /// Whether the collective has already completed (non-blocking probe).
    pub fn is_done(&self) -> bool {
        self.cell.is_done()
    }
}

impl Drop for CollectiveHandle {
    fn drop(&mut self) {
        // an abandoned-but-completed result goes back to the pool; an
        // abandoned pending job completes on the comm thread and its
        // buffer is recycled when the last JobCell reference drops
        if self.cell.is_done() {
            if let Some(Ok(buf)) = self.cell.result.lock().take() {
                self.cell.pool.put(buf);
            }
        }
    }
}

impl Drop for JobCell {
    fn drop(&mut self) {
        // recycle a result nobody consumed (handle dropped while pending)
        if let Some(Ok(buf)) = self.result.lock().take() {
            self.pool.put(buf);
        }
    }
}

/// A registered group: the comm thread's own clone of a [`RankHandle`],
/// shared into each job by `Arc` so submission never deep-clones handle
/// state. Obtain via [`CommThread::register`].
#[derive(Debug, Clone)]
pub struct CommGroup {
    handle: Arc<RankHandle>,
}

impl CommGroup {
    /// The underlying handle (same timeout/checksum/sabotage state as the
    /// handle that was registered).
    pub fn handle(&self) -> &RankHandle {
        &self.handle
    }
}

/// Producer-side job-cell pool counters: how many cells were requested,
/// how many were served by resetting a retired cell in place, and how many
/// had to be freshly allocated. In steady state `reuses` tracks `takes`
/// and `allocs` stays flat — the per-op `Arc<JobCell>` allocation is gone.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CellPoolStats {
    /// Job cells requested (one per submitted collective).
    pub takes: u64,
    /// Requests served by resetting a retired pooled cell.
    pub reuses: u64,
    /// Requests that allocated a fresh cell.
    pub allocs: u64,
}

/// Ensures pending jobs cannot strand their waiters if the worker dies
/// abnormally: on drop (normal exit *or* panic unwind) every job still in
/// the ring is failed with `Lost(Poisoned)`.
struct WorkerGuard {
    rx: spsc::Consumer<Arc<JobCell>>,
}

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        while let Some(job) = self.rx.pop() {
            job.fail_if_unrun();
        }
    }
}

/// A per-rank communication thread: the software twin of the GPU comm
/// stream. Jobs run strictly in submission order (FIFO), which is what
/// preserves the SPMD collective-ordering contract across ranks.
pub struct CommThread {
    /// SPSC producer side; `RefCell` keeps the type `!Sync` (one thread
    /// submits) while methods stay `&self`.
    tx: RefCell<Option<Producer<Arc<JobCell>>>>,
    worker: Option<JoinHandle<()>>,
    /// The worker's `Thread`, shared into every job for targeted wakeups.
    worker_thread: Thread,
    /// Issue-order sequence of the next job (1-based).
    next_seq: std::cell::Cell<u64>,
    /// Highest completed sequence (shared with every job).
    completed: Arc<AtomicU64>,
    /// Jobs the worker has popped *and released* — the producer's window
    /// into how many ring-held `Arc`s have come back to the cell pool.
    drained: Arc<AtomicU64>,
    pool: Arc<BufferPool>,
    /// LRU pool of job cells: one `Arc` per cell lives here permanently
    /// (up to [`CELL_POOL_CAP`]), ordered by last use. Because jobs retire
    /// in FIFO order, the front is the least-recently-used cell and frees
    /// first; a front cell that is uniquely owned again (handle dropped,
    /// ring slot drained) is reset in place instead of allocating.
    cells: RefCell<VecDeque<Arc<JobCell>>>,
    cell_takes: std::cell::Cell<u64>,
    cell_reuses: std::cell::Cell<u64>,
    cell_allocs: std::cell::Cell<u64>,
}

impl std::fmt::Debug for CommThread {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CommThread")
            .field("issued", &(self.next_seq.get() - 1))
            .field("completed", &self.completed.load(Ordering::Relaxed))
            .finish()
    }
}

impl CommThread {
    /// Spawn the worker with a fresh buffer pool. One comm thread serves
    /// all of a rank's groups (world / shard / replica): register each
    /// once with [`CommThread::register`].
    pub fn spawn() -> Self {
        Self::spawn_with_pool(Arc::new(BufferPool::new()))
    }

    /// Spawn the worker over a caller-supplied [`BufferPool`] (shared
    /// pools let the engine recycle across subsystems).
    pub fn spawn_with_pool(pool: Arc<BufferPool>) -> Self {
        let (tx, rx) = spsc::ring::<Arc<JobCell>>(RING_CAPACITY);
        let drained = Arc::new(AtomicU64::new(0));
        let drained_w = Arc::clone(&drained);
        let worker = std::thread::Builder::new()
            .name("geofm-comm".into())
            .spawn(move || {
                let mut guard = WorkerGuard { rx };
                while let Some(job) = guard.rx.pop_wait() {
                    if !job.try_execute() {
                        // a waiter stole this job: await it so job k+1
                        // never starts before job k finishes (FIFO
                        // contract across the whole rank)
                        job.wait_done();
                    }
                    // release the ring's Arc before advertising the drain,
                    // so a producer that sees the new count can reuse the
                    // cell immediately
                    drop(job);
                    drained_w.fetch_add(1, Ordering::Release);
                }
            })
            .expect("cannot spawn comm thread");
        let worker_thread = worker.thread().clone();
        Self {
            tx: RefCell::new(Some(tx)),
            worker: Some(worker),
            worker_thread,
            next_seq: std::cell::Cell::new(1),
            completed: Arc::new(AtomicU64::new(0)),
            drained,
            pool,
            cells: RefCell::new(VecDeque::new()),
            cell_takes: std::cell::Cell::new(0),
            cell_reuses: std::cell::Cell::new(0),
            cell_allocs: std::cell::Cell::new(0),
        }
    }

    /// Register a group handle for nonblocking use. The one-time clone
    /// here is what each subsequent job shares by `Arc` — the per-job
    /// deep clone of the old design is gone.
    pub fn register(&self, handle: &RankHandle) -> CommGroup {
        CommGroup { handle: Arc::new(handle.clone()) }
    }

    /// The scratch pool used by this comm thread's collectives.
    pub fn pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Hand a buffer obtained from [`CollectiveHandle::wait`] back for
    /// reuse.
    pub fn recycle(&self, buf: Vec<f32>) {
        self.pool.put(buf);
    }

    fn make_cell(&self, group: &CommGroup, op: Op) -> Arc<JobCell> {
        let seq = self.next_seq.get();
        self.next_seq.set(seq + 1);
        self.cell_takes.set(self.cell_takes.get() + 1);
        // In the steal-dominated regime the worker stays parked and
        // retired cells pile up in the ring; nudge it awake once the
        // backlog is deep enough that its Arcs are worth reclaiming.
        if (seq - 1).saturating_sub(self.drained.load(Ordering::Acquire)) >= RECLAIM_WAKE_BACKLOG {
            self.worker_thread.unpark();
        }
        let mut cells = self.cells.borrow_mut();
        // The front is the least-recently-used cell (jobs retire in FIFO
        // order), so it frees first. `Arc::get_mut` is both the uniqueness
        // check and the synchronization with the releasing decrements of
        // the handle's, ring's and worker's drops — a uniquely-owned cell
        // is safe to reset with plain stores.
        let front_free = cells.front_mut().is_some_and(|c| Arc::get_mut(c).is_some());
        if front_free {
            let mut cached = cells.pop_front().expect("front exists");
            {
                let cell = Arc::get_mut(&mut cached).expect("sole owner");
                cell.seq = seq;
                cell.handle = Arc::clone(&group.handle);
                *cell.op.get_mut() = Some(op);
                // recycle a result nobody consumed before the reset
                if let Some(Ok(buf)) = cell.result.get_mut().take() {
                    self.pool.put(buf);
                }
                cell.sleepers.get_mut().clear();
                *cell.state.get_mut() = PENDING;
            }
            self.cell_reuses.set(self.cell_reuses.get() + 1);
            let out = Arc::clone(&cached);
            cells.push_back(cached);
            return out;
        }
        self.cell_allocs.set(self.cell_allocs.get() + 1);
        let cell = Arc::new(JobCell {
            seq,
            handle: Arc::clone(&group.handle),
            op: Mutex::new(Some(op)),
            state: AtomicU8::new(PENDING),
            result: Mutex::new(None),
            sleepers: Mutex::new(Vec::new()),
            completed: Arc::clone(&self.completed),
            worker: self.worker_thread.clone(),
            pool: Arc::clone(&self.pool),
        });
        if cells.len() < CELL_POOL_CAP {
            cells.push_back(Arc::clone(&cell));
        }
        cell
    }

    /// Job-cell pool counters — the microbench's view of whether the
    /// per-op `Arc<JobCell>` allocation has been pooled away.
    pub fn cell_stats(&self) -> CellPoolStats {
        CellPoolStats {
            takes: self.cell_takes.get(),
            reuses: self.cell_reuses.get(),
            allocs: self.cell_allocs.get(),
        }
    }

    /// Jobs submitted but not yet completed (successfully or with error).
    pub fn in_flight(&self) -> u64 {
        (self.next_seq.get() - 1).saturating_sub(self.completed.load(Ordering::Acquire))
    }

    /// Drain every in-flight nonblocking collective: block until all
    /// submitted jobs have completed — successfully or with a structured
    /// error. Results stay claimable through their handles afterwards.
    ///
    /// This is the per-rank half of the elastic drain protocol: before a
    /// reshard, every surviving rank quiesces its comm thread so no
    /// collective from the old world is still running when groups are
    /// torn down. Termination is bounded by the collectives themselves
    /// (timeout/poison turns a wedged peer into an error, never a hang).
    pub fn quiesce(&self) {
        let target = self.next_seq.get() - 1;
        let mut spins = 0u32;
        while self.completed.load(Ordering::Acquire) < target {
            // the lazily-parked worker may be the only executor left
            self.worker_thread.unpark();
            spins = spins.wrapping_add(1);
            if spins < 64 {
                std::hint::spin_loop();
            } else {
                std::thread::yield_now();
            }
        }
    }

    fn submit(&self, group: &CommGroup, op: Op) -> CollectiveHandle {
        let name = op.name();
        let cell = self.make_cell(group, op);
        let mut tx = self.tx.borrow_mut();
        if let Some(tx) = tx.as_mut() {
            // quiet publish: the worker is a fallback executor, not the
            // hot path — waiters steal and run jobs inline, so waking it
            // per push would only buy a context switch. It is woken when
            // a waiter actually needs it (non-head wait), when the ring
            // fills with retired jobs, or at shutdown.
            match tx.push_quiet(Arc::clone(&cell)) {
                Ok(()) => {}
                Err(PushError::Full(job)) => {
                    // ring full (usually retired jobs nobody drained):
                    // wake the worker to drain, then block for a slot
                    tx.wake_consumer();
                    if let Err(PushError::Disconnected(job) | PushError::Full(job)) =
                        tx.push_wait(job)
                    {
                        job.fail_if_unrun();
                    }
                }
                // worker died: fail the job so wait() reports Lost
                Err(PushError::Disconnected(job)) => {
                    job.fail_if_unrun();
                }
            }
        } else {
            cell.fail_if_unrun();
        }
        CollectiveHandle { cell, op: name }
    }

    /// Submit a whole batch of collectives on one group, publishing them
    /// to the comm thread with a single release store — the cheap way to
    /// fill a prefetch window. Handles come back in submission order.
    pub fn submit_batch(&self, group: &CommGroup, ops: &[AsyncOp<'_>]) -> Vec<CollectiveHandle> {
        self.submit_cells(
            ops.iter()
                .map(|op| {
                    let op = match op {
                        AsyncOp::AllGather(local) => Op::AllGather(self.pool.take_copy(local)),
                        AsyncOp::ReduceScatter(buf) => Op::ReduceScatter(self.pool.take_copy(buf)),
                        AsyncOp::AllReduce(buf) => Op::AllReduce(self.pool.take_copy(buf)),
                    };
                    self.make_cell(group, op)
                })
                .collect(),
        )
    }

    /// [`CommThread::submit_batch`] for callers that already own their
    /// staged input buffers (ideally taken from [`CommThread::pool`]): the
    /// buffer rides into the job as-is — no defensive copy — and is
    /// recycled into the pool once the collective has run.
    pub fn submit_batch_owned(
        &self,
        group: &CommGroup,
        ops: Vec<OwnedAsyncOp>,
    ) -> Vec<CollectiveHandle> {
        self.submit_cells(ops.into_iter().map(|op| self.make_cell(group, op)).collect())
    }

    fn submit_cells(&self, cells: Vec<Arc<JobCell>>) -> Vec<CollectiveHandle> {
        let handles: Vec<CollectiveHandle> = cells
            .iter()
            .map(|cell| CollectiveHandle {
                cell: Arc::clone(cell),
                op: cell.op.lock().as_ref().map_or("collective", Op::name),
            })
            .collect();
        let mut tx = self.tx.borrow_mut();
        if let Some(tx) = tx.as_mut() {
            // quiet publish — see `submit` for the lazy-worker rationale
            let (_, mut overflow) = tx.push_batch_quiet(cells);
            // an overflowing window falls back to blocking pushes (after
            // waking the worker to drain); a dead worker fails the
            // remainder so waiters see Lost
            if !overflow.is_empty() {
                tx.wake_consumer();
            }
            while let Some(job) = overflow.first().cloned() {
                match tx.push_wait(job) {
                    Ok(()) => {
                        overflow.remove(0);
                    }
                    Err(_) => {
                        for job in overflow.drain(..) {
                            job.fail_if_unrun();
                        }
                    }
                }
            }
        } else {
            for h in &handles {
                h.cell.fail_if_unrun();
            }
        }
        handles
    }

    /// Nonblocking [`RankHandle::try_all_gather`] on the registered group:
    /// gathers `local` from every rank; `wait` yields the concatenation in
    /// rank order.
    pub fn all_gather_async(&self, group: &CommGroup, local: &[f32]) -> CollectiveHandle {
        self.submit(group, Op::AllGather(self.pool.take_copy(local)))
    }

    /// Zero-copy [`CommThread::all_gather_async`] over a shared parameter
    /// store — see [`OwnedAsyncOp::AllGatherShared`] for the no-mutation
    /// contract.
    pub fn all_gather_async_shared(
        &self,
        group: &CommGroup,
        store: &Arc<Vec<f32>>,
        range: std::ops::Range<usize>,
    ) -> CollectiveHandle {
        self.submit(group, Op::AllGatherShared(Arc::clone(store), range))
    }

    /// Nonblocking [`RankHandle::try_reduce_scatter`]: `wait` yields this
    /// rank's owned chunk of the sum. Runs on the same checksummed path as
    /// the blocking collective (sabotage injection included).
    pub fn reduce_scatter_async(&self, group: &CommGroup, buf: &[f32]) -> CollectiveHandle {
        self.submit(group, Op::ReduceScatter(self.pool.take_copy(buf)))
    }

    /// [`CommThread::reduce_scatter_async`] over a caller-owned buffer
    /// (ideally from [`CommThread::pool`]) — no input copy; the buffer is
    /// recycled after the collective runs.
    pub fn reduce_scatter_async_owned(&self, group: &CommGroup, buf: Vec<f32>) -> CollectiveHandle {
        self.submit(group, Op::ReduceScatter(buf))
    }

    /// Nonblocking [`RankHandle::try_all_reduce`]: `wait` yields the fully
    /// reduced buffer.
    pub fn all_reduce_async(&self, group: &CommGroup, buf: &[f32]) -> CollectiveHandle {
        self.submit(group, Op::AllReduce(self.pool.take_copy(buf)))
    }

    /// Close the queue and wait for the worker to drain. Only safe when no
    /// peer is wedged (tests); the `Drop` path detaches instead.
    pub fn join(mut self) {
        self.tx.borrow_mut().take();
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

impl Drop for CommThread {
    fn drop(&mut self) {
        // close the queue; detach the worker (see module docs) — it still
        // drains every queued job before exiting
        self.tx.borrow_mut().take();
        drop(self.worker.take());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::Group;
    use std::time::Duration;

    fn bits(v: &[f32]) -> Vec<u32> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn async_all_reduce_matches_blocking() {
        let handles = Group::create(4);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let comm = CommThread::spawn();
                    let g = comm.register(&h);
                    let data: Vec<f32> = (0..13).map(|i| (i * (h.rank() + 1)) as f32).collect();
                    let mut blocking = data.clone();
                    h.try_all_reduce(&mut blocking).unwrap();
                    let from_async = comm.all_reduce_async(&g, &data).wait().unwrap();
                    assert_eq!(bits(&blocking), bits(&from_async));
                });
            }
        });
    }

    #[test]
    fn async_gather_and_scatter_match_blocking() {
        let handles = Group::create(3);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let comm = CommThread::spawn();
                    let g = comm.register(&h);
                    let local = vec![h.rank() as f32 + 0.5; 4];
                    let mut blocking = Vec::new();
                    h.try_all_gather(&local, &mut blocking).unwrap();
                    let gathered = comm.all_gather_async(&g, &local).wait().unwrap();
                    assert_eq!(bits(&blocking), bits(&gathered));

                    let buf: Vec<f32> = (0..10).map(|i| (i + h.rank() * 10) as f32).collect();
                    let mut rs = Vec::new();
                    h.try_reduce_scatter(&buf, &mut rs).unwrap();
                    let chunk = comm.reduce_scatter_async(&g, &buf).wait().unwrap();
                    assert_eq!(bits(&rs), bits(&chunk));
                });
            }
        });
    }

    #[test]
    fn pipelined_submissions_run_in_fifo_order() {
        // several collectives in flight at once: FIFO execution keeps every
        // rank's barrier order aligned, and results land in issue order
        let handles = Group::create(4);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let comm = CommThread::spawn();
                    let g = comm.register(&h);
                    let pending: Vec<CollectiveHandle> = (0..8)
                        .map(|round| {
                            let buf = vec![(h.rank() + round) as f32; 6];
                            comm.all_reduce_async(&g, &buf)
                        })
                        .collect();
                    for (round, handle) in pending.into_iter().enumerate() {
                        let out = handle.wait().unwrap();
                        let expect = (0..4).map(|r| (r + round) as f32).sum::<f32>();
                        assert!(out.iter().all(|&v| v == expect), "round {round}: {out:?}");
                    }
                });
            }
        });
    }

    #[test]
    fn batched_submission_matches_blocking() {
        // a whole window published at once (one release store) must be
        // indistinguishable from one-at-a-time submission
        let handles = Group::create(4);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let comm = CommThread::spawn();
                    let g = comm.register(&h);
                    let inputs: Vec<Vec<f32>> =
                        (0..6).map(|r| vec![(h.rank() * 10 + r) as f32; 5]).collect();
                    let mut expect = Vec::new();
                    for inp in &inputs {
                        let mut b = inp.clone();
                        h.try_all_reduce(&mut b).unwrap();
                        expect.push(b);
                    }
                    let ops: Vec<AsyncOp> =
                        inputs.iter().map(|i| AsyncOp::AllReduce(i)).collect();
                    let handles = comm.submit_batch(&g, &ops);
                    for (i, hd) in handles.into_iter().enumerate() {
                        assert_eq!(bits(&expect[i]), bits(&hd.wait().unwrap()));
                    }
                });
            }
        });
    }

    #[test]
    fn dead_rank_fails_async_collectives_without_hanging() {
        let handles = Group::create(3);
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            for h in handles.into_iter().take(2) {
                s.spawn(move || {
                    let h = h.with_timeout(Some(Duration::from_millis(100)));
                    let comm = CommThread::spawn();
                    let g = comm.register(&h);
                    let r = comm.all_reduce_async(&g, &[1.0f32; 8]).wait();
                    assert!(matches!(r, Err(CollectiveError::Lost(_))), "got {r:?}");
                });
            }
        });
        assert!(start.elapsed() < Duration::from_secs(10));
    }

    #[test]
    fn corrupt_reduce_surfaces_from_wait_and_group_stays_usable() {
        let handles = Group::create(2);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let h = h.with_checksums(true);
                    if h.rank() == 0 {
                        h.arm_bitflip(9);
                    }
                    let comm = CommThread::spawn();
                    let g = comm.register(&h);
                    let r = comm.all_reduce_async(&g, &[1.0f32; 16]).wait();
                    assert!(matches!(r, Err(CollectiveError::Corrupt(_))), "got {r:?}");
                    // detection was in-band: the next async collective works
                    let again = comm.all_reduce_async(&g, &[2.0f32; 16]).wait().unwrap();
                    assert!(again.iter().all(|&v| v == 4.0));
                });
            }
        });
    }

    #[test]
    fn abandoned_handle_still_completes_the_collective() {
        // rank 0 drops its handle; the collective must still run on its
        // comm thread so rank 1's matching call completes
        let handles = Group::create(2);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let h = h.with_timeout(Some(Duration::from_secs(5)));
                    let comm = CommThread::spawn();
                    let g = comm.register(&h);
                    let first = comm.all_reduce_async(&g, &[1.0f32; 4]);
                    if h.rank() == 0 {
                        drop(first);
                    } else {
                        assert!(first.wait().unwrap().iter().all(|&v| v == 2.0));
                    }
                    // both ranks can still collectivise afterwards
                    let second = comm.all_reduce_async(&g, &[3.0f32; 4]).wait().unwrap();
                    assert!(second.iter().all(|&v| v == 6.0));
                    comm.join();
                });
            }
        });
    }

    #[test]
    fn job_cells_are_pooled_in_steady_state() {
        // the per-op Arc<JobCell> allocation must disappear once the pool
        // is warm: after the ring has cycled once, every take is a reuse
        let handles = Group::create(2);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let comm = CommThread::spawn();
                    let g = comm.register(&h);
                    // warm up past one full ring cycle so retired cells
                    // have drained back to the pool at least once
                    for _ in 0..300 {
                        let out = comm.all_reduce_async(&g, &[1.0f32; 8]).wait().unwrap();
                        comm.recycle(out);
                    }
                    let before = comm.cell_stats();
                    for _ in 0..400 {
                        let out = comm.all_reduce_async(&g, &[1.0f32; 8]).wait().unwrap();
                        comm.recycle(out);
                    }
                    let after = comm.cell_stats();
                    assert_eq!(after.takes - before.takes, 400);
                    let new_allocs = after.allocs - before.allocs;
                    assert!(
                        new_allocs <= 50,
                        "steady state must reuse job cells, allocated {new_allocs}/400"
                    );
                    assert!(after.reuses - before.reuses >= 350);
                });
            }
        });
    }

    #[test]
    fn quiesce_drains_all_inflight_jobs() {
        // a burst of unawaited collectives, then quiesce: every job must
        // be complete (in_flight == 0) and the results still claimable
        let handles = Group::create(2);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let comm = CommThread::spawn();
                    let g = comm.register(&h);
                    let pending: Vec<CollectiveHandle> = (0..5)
                        .map(|round| comm.all_reduce_async(&g, &[round as f32; 4]))
                        .collect();
                    comm.quiesce();
                    assert_eq!(comm.in_flight(), 0);
                    for (round, hd) in pending.into_iter().enumerate() {
                        assert!(hd.is_done(), "round {round} not done after quiesce");
                        let out = hd.wait().unwrap();
                        assert!(out.iter().all(|&v| v == 2.0 * round as f32), "{out:?}");
                    }
                });
            }
        });
    }

    #[test]
    fn quiesce_after_peer_loss_terminates_with_errors() {
        // quiesce must never hang on a dead peer: the collectives time
        // out, poison the group, and every job completes with Lost
        let handles = Group::create(3);
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            for h in handles.into_iter().take(2) {
                s.spawn(move || {
                    let h = h.with_timeout(Some(Duration::from_millis(100)));
                    let comm = CommThread::spawn();
                    let g = comm.register(&h);
                    let pending: Vec<CollectiveHandle> =
                        (0..4).map(|_| comm.all_reduce_async(&g, &[1.0f32; 8])).collect();
                    comm.quiesce();
                    assert_eq!(comm.in_flight(), 0);
                    for hd in pending {
                        assert!(matches!(hd.wait(), Err(CollectiveError::Lost(_))));
                    }
                });
            }
        });
        assert!(start.elapsed() < Duration::from_secs(30), "quiesce must not hang");
    }

    #[test]
    fn steady_state_collectives_allocate_nothing() {
        // after one warmup round the pool must serve every take
        let handles = Group::create(2);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let comm = CommThread::spawn();
                    let g = comm.register(&h);
                    for _ in 0..3 {
                        let out = comm.all_reduce_async(&g, &[1.0f32; 32]).wait().unwrap();
                        comm.recycle(out);
                    }
                    let before = comm.pool().stats().allocs;
                    for _ in 0..50 {
                        let out = comm.all_reduce_async(&g, &[1.0f32; 32]).wait().unwrap();
                        comm.recycle(out);
                    }
                    let after = comm.pool().stats().allocs;
                    assert_eq!(before, after, "steady-state all-reduce must not allocate");
                });
            }
        });
    }
}
