//! A reusable sense-reversing barrier built from atomics.
//!
//! `std::sync::Barrier` would work, but the sense-reversing construction is
//! the standard HPC pattern (one shared counter + a phase flag, no mutex,
//! no condvar on the fast path) and gives us spin-then-yield waiting which
//! is what a busy rank thread wants.
//!
//! For fault tolerance the barrier is *poisonable*: when a rank dies (or a
//! waiter times out), the barrier is permanently poisoned and every current
//! and future waiter returns [`RankLost`] within a bounded delay instead of
//! spinning forever — the poison path that lets an FSDP job abort a step
//! cleanly when a peer thread panics.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

/// A peer of this group died or stopped responding; the group is poisoned
/// and no further collectives can complete on it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RankLost {
    /// The group was poisoned (a peer panicked, crashed, or timed out
    /// elsewhere) — observed without waiting out a local timeout.
    Poisoned,
    /// This waiter's own bounded wait expired; it poisoned the group so
    /// every peer unblocks too.
    Timeout,
}

impl std::fmt::Display for RankLost {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Poisoned => write!(f, "peer rank lost: group poisoned"),
            Self::Timeout => write!(f, "peer rank lost: barrier wait timed out"),
        }
    }
}

impl std::error::Error for RankLost {}

/// A counter-based sense-reversing barrier for a fixed number of parties.
#[derive(Debug)]
pub struct SenseBarrier {
    parties: usize,
    count: AtomicUsize,
    sense: AtomicBool,
    poisoned: AtomicBool,
}

impl SenseBarrier {
    /// New barrier for `parties` threads.
    ///
    /// # Panics
    /// Panics if `parties == 0`.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        Self {
            parties,
            count: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
            poisoned: AtomicBool::new(false),
        }
    }

    /// Number of participating threads.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Permanently poison the barrier: every current and future waiter
    /// returns [`RankLost::Poisoned`]. Idempotent.
    pub fn poison(&self) {
        self.poisoned.store(true, Ordering::Release);
    }

    /// Whether the barrier has been poisoned.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.load(Ordering::Acquire)
    }

    /// Block until all parties arrive. The last arriver flips the sense and
    /// releases everyone; the barrier is immediately reusable.
    ///
    /// # Panics
    /// Panics if the barrier is (or becomes) poisoned — the infallible API
    /// cannot report a lost rank. Fault-tolerant callers use
    /// [`SenseBarrier::wait_timeout`].
    pub fn wait(&self) {
        self.wait_timeout(None).expect("barrier poisoned while waiting");
    }

    /// Block until all parties arrive, the barrier is poisoned, or
    /// `timeout` expires. On timeout the waiter poisons the barrier before
    /// returning, so one lost rank unblocks the whole group within one
    /// timeout period. `None` waits indefinitely (but still observes
    /// poisoning by peers).
    pub fn wait_timeout(&self, timeout: Option<Duration>) -> Result<(), RankLost> {
        if self.is_poisoned() {
            return Err(RankLost::Poisoned);
        }
        let my_sense = !self.sense.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.parties {
            // last one in: reset the counter, then flip the sense (Release
            // publishes all writes made by every party before the barrier).
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
            if self.is_poisoned() {
                return Err(RankLost::Poisoned);
            }
            Ok(())
        } else {
            let deadline = timeout.map(|t| Instant::now() + t);
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                if self.is_poisoned() {
                    return Err(RankLost::Poisoned);
                }
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                    if let Some(d) = deadline {
                        // Instant::now() after a yield: the syscall cost is
                        // already paid, the clock read is noise next to it
                        if Instant::now() >= d {
                            self.poison();
                            return Err(RankLost::Timeout);
                        }
                    }
                }
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_party_never_blocks() {
        let b = SenseBarrier::new(1);
        for _ in 0..10 {
            b.wait();
        }
    }

    #[test]
    fn synchronises_phases() {
        // Each thread increments a phase counter; after a barrier, every
        // thread must observe the full increment of the previous phase.
        let parties = 8;
        let barrier = Arc::new(SenseBarrier::new(parties));
        let counter = Arc::new(AtomicU64::new(0));
        let phases = 50;
        let handles: Vec<_> = (0..parties)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for phase in 0..phases {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        let seen = counter.load(Ordering::SeqCst);
                        assert!(
                            seen >= ((phase + 1) * parties) as u64,
                            "phase {}: saw {}",
                            phase,
                            seen
                        );
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), (parties * phases) as u64);
    }

    #[test]
    fn reusable_many_times_two_threads() {
        let barrier = Arc::new(SenseBarrier::new(2));
        let b2 = Arc::clone(&barrier);
        let t = std::thread::spawn(move || {
            for _ in 0..10_000 {
                b2.wait();
            }
        });
        for _ in 0..10_000 {
            barrier.wait();
        }
        t.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_rejected() {
        let _ = SenseBarrier::new(0);
    }

    #[test]
    fn timeout_with_missing_party_returns_rank_lost() {
        // one party never arrives: the waiter must time out, not hang
        let b = SenseBarrier::new(2);
        let start = Instant::now();
        let r = b.wait_timeout(Some(Duration::from_millis(50)));
        assert_eq!(r, Err(RankLost::Timeout));
        assert!(start.elapsed() < Duration::from_secs(5));
        assert!(b.is_poisoned());
    }

    #[test]
    fn poison_releases_all_waiters() {
        let parties = 4;
        // barrier sized for one more party than will ever arrive
        let barrier = Arc::new(SenseBarrier::new(parties + 1));
        let handles: Vec<_> = (0..parties)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || barrier.wait_timeout(Some(Duration::from_secs(30))))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(20));
        barrier.poison();
        for h in handles {
            let r = h.join().unwrap();
            assert!(r.is_err(), "waiter must be released with an error");
        }
    }

    #[test]
    fn poisoned_barrier_fails_fast_forever() {
        let b = SenseBarrier::new(3);
        b.poison();
        for _ in 0..5 {
            assert_eq!(b.wait_timeout(None), Err(RankLost::Poisoned));
        }
    }

    #[test]
    #[should_panic(expected = "poisoned")]
    fn infallible_wait_panics_on_poison() {
        let b = SenseBarrier::new(2);
        b.poison();
        b.wait();
    }

    #[test]
    fn one_timeout_cascades_to_peers_within_bound() {
        // 3 of 4 parties arrive; the first to time out poisons, releasing
        // the other two well before their own (long) timeouts.
        let barrier = Arc::new(SenseBarrier::new(4));
        let start = Instant::now();
        let handles: Vec<_> = (0..3)
            .map(|i| {
                let barrier = Arc::clone(&barrier);
                let timeout =
                    if i == 0 { Duration::from_millis(50) } else { Duration::from_secs(60) };
                std::thread::spawn(move || barrier.wait_timeout(Some(timeout)))
            })
            .collect();
        for h in handles {
            assert!(h.join().unwrap().is_err());
        }
        assert!(start.elapsed() < Duration::from_secs(10), "cascade must be fast");
    }
}
