//! A reusable sense-reversing barrier built from atomics.
//!
//! `std::sync::Barrier` would work, but the sense-reversing construction is
//! the standard HPC pattern (one shared counter + a phase flag, no mutex,
//! no condvar on the fast path) and gives us spin-then-yield waiting which
//! is what a busy rank thread wants.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

/// A counter-based sense-reversing barrier for a fixed number of parties.
#[derive(Debug)]
pub struct SenseBarrier {
    parties: usize,
    count: AtomicUsize,
    sense: AtomicBool,
}

impl SenseBarrier {
    /// New barrier for `parties` threads.
    ///
    /// # Panics
    /// Panics if `parties == 0`.
    pub fn new(parties: usize) -> Self {
        assert!(parties > 0, "barrier needs at least one party");
        Self { parties, count: AtomicUsize::new(0), sense: AtomicBool::new(false) }
    }

    /// Number of participating threads.
    pub fn parties(&self) -> usize {
        self.parties
    }

    /// Block until all parties arrive. The last arriver flips the sense and
    /// releases everyone; the barrier is immediately reusable.
    pub fn wait(&self) {
        let my_sense = !self.sense.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.parties {
            // last one in: reset the counter, then flip the sense (Release
            // publishes all writes made by every party before the barrier).
            self.count.store(0, Ordering::Relaxed);
            self.sense.store(my_sense, Ordering::Release);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                spins += 1;
                if spins < 64 {
                    std::hint::spin_loop();
                } else {
                    std::thread::yield_now();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_party_never_blocks() {
        let b = SenseBarrier::new(1);
        for _ in 0..10 {
            b.wait();
        }
    }

    #[test]
    fn synchronises_phases() {
        // Each thread increments a phase counter; after a barrier, every
        // thread must observe the full increment of the previous phase.
        let parties = 8;
        let barrier = Arc::new(SenseBarrier::new(parties));
        let counter = Arc::new(AtomicU64::new(0));
        let phases = 50;
        let handles: Vec<_> = (0..parties)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    for phase in 0..phases {
                        counter.fetch_add(1, Ordering::SeqCst);
                        barrier.wait();
                        let seen = counter.load(Ordering::SeqCst);
                        assert!(
                            seen >= ((phase + 1) * parties) as u64,
                            "phase {}: saw {}",
                            phase,
                            seen
                        );
                        barrier.wait();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(counter.load(Ordering::SeqCst), (parties * phases) as u64);
    }

    #[test]
    fn reusable_many_times_two_threads() {
        let barrier = Arc::new(SenseBarrier::new(2));
        let b2 = Arc::clone(&barrier);
        let t = std::thread::spawn(move || {
            for _ in 0..10_000 {
                b2.wait();
            }
        });
        for _ in 0..10_000 {
            barrier.wait();
        }
        t.join().unwrap();
    }

    #[test]
    #[should_panic(expected = "at least one party")]
    fn zero_parties_rejected() {
        let _ = SenseBarrier::new(0);
    }
}
