//! # geofm-collectives
//!
//! Shared-memory process groups and collective operations — the transport
//! substrate under `geofm-fsdp`, playing the role RCCL-over-Slingshot plays
//! on Frontier.
//!
//! A *rank* is an OS thread; a *group* is a set of ranks that synchronise
//! through a custom sense-reversing barrier (built from atomics, per the
//! "Rust Atomics and Locks" playbook) and exchange data through per-rank
//! mailboxes. Two algorithm families are provided:
//!
//! * **direct** — chunk-parallel: every collective is decomposed into a
//!   reduce-scatter-like phase (each rank owns a chunk) and a gather phase.
//!   This is the default; it is work-optimal in shared memory.
//! * **ring** — the classical 2(n−1)-step ring, implemented for fidelity to
//!   what RCCL actually runs and for the collective benchmarks.
//!
//! Every operation updates a [`TrafficCounter`] with the *logical network
//! bytes* the same collective would move on a real interconnect (ring-
//! algorithm accounting). `geofm-frontier` prices those same byte counts,
//! and an integration test cross-validates the two.
//!
//! The reduce collectives additionally carry a silent-data-corruption
//! guard (see [`guard`]): per-chunk CRC32 publication before the exchange
//! and optional post-exchange verification ([`RankHandle::with_checksums`]),
//! surfacing an injected or real bit flip as a structured
//! [`CorruptPayload`] on every rank instead of averaging garbage.
//!
//! Finally, the collectives come in a *nonblocking* flavour: a per-rank
//! [`CommThread`] plays the role of the GPU comm stream, and its
//! `*_async` methods return a [`CollectiveHandle`] whose `wait()` yields
//! bit-identical results to the blocking call (see [`nonblocking`]) —
//! the substrate of `geofm-fsdp`'s comm/compute overlap engine.

pub mod adaptive;
pub mod barrier;
pub mod consensus;
pub mod group;
pub mod guard;
pub mod hierarchy;
pub mod nonblocking;
pub mod pool;
pub mod ring;
pub mod simnet;
pub mod spsc;
pub mod traffic;
pub mod transport;

pub use adaptive::{AdaptiveTimeout, AdaptiveTimeoutConfig};
pub use barrier::{RankLost, SenseBarrier};
pub use consensus::{ConsensusError, SurvivorConsensus};
pub use group::{Algorithm, Group, RankHandle};
pub use guard::{CollectiveError, CorruptPayload, SabotageCell};
pub use hierarchy::{HierarchyLayout, ProcessGroups, RankGroups};
pub use nonblocking::{
    AsyncOp, CellPoolStats, CollectiveHandle, CommGroup, CommThread, OwnedAsyncOp,
};
pub use pool::{BufferPool, PoolStats};
pub use simnet::{SimNetConfig, SimNetTransport};
pub use traffic::{CollectiveKind, TrafficCounter, TrafficSnapshot};
pub use transport::{
    LoopbackTransport, SharedMemTransport, Ticket, Transport, TransportOp,
};
