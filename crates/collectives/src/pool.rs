//! Size-classed recycling pool for collective scratch buffers.
//!
//! Every nonblocking collective needs two transient `Vec<f32>`s: a copy of
//! the caller's input (so the caller may reuse its buffer immediately) and
//! an output the result lands in. Allocating those per collective put the
//! allocator on the hot path — at a few collectives per unit per step this
//! was a measurable slice of the `BENCH_overlap.json` regression. The
//! [`BufferPool`] recycles both: buffers are handed out by size class
//! (next power of two), returned after use, and reused across steps, so a
//! warmed-up training loop performs **zero** buffer allocations — the
//! property `tests/buffer_pool.rs` asserts through [`PoolStats`].
//!
//! The pool is `Arc`-shared between the rank thread and its comm thread.
//! Free lists sit behind (uncontended) mutexes — one lock round-trip per
//! collective, not per element — while the statistics counters are plain
//! atomics so tests and telemetry can read them without synchronising.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};

/// Buffers above this size class are never pooled (they would pin memory
/// for rare one-off giants); class 24 = 16 Mi elements = 64 MiB.
const MAX_CLASS: usize = 24;

/// Per-class free lists capped so a burst can't hoard unboundedly.
const MAX_FREE_PER_CLASS: usize = 32;

/// Monotonic usage counters (see [`BufferPool::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Buffers handed out in total.
    pub takes: u64,
    /// Takes served from a free list (no allocation).
    pub reuses: u64,
    /// Takes that had to allocate a fresh buffer.
    pub allocs: u64,
    /// Buffers returned to the pool.
    pub puts: u64,
}

impl PoolStats {
    /// Takes minus puts: buffers currently out in the wild (approximate
    /// under concurrency, exact when quiescent).
    pub fn outstanding(&self) -> i64 {
        self.takes as i64 - self.puts as i64
    }
}

/// A recycling pool of `Vec<f32>` scratch buffers, keyed by capacity class.
#[derive(Debug, Default)]
pub struct BufferPool {
    classes: Vec<Mutex<Vec<Vec<f32>>>>,
    takes: AtomicU64,
    reuses: AtomicU64,
    allocs: AtomicU64,
    puts: AtomicU64,
}

/// Size class of a buffer of `len` elements: index of the next power of
/// two. Class capacity is `1 << class`.
fn class_of(len: usize) -> usize {
    len.next_power_of_two().trailing_zeros() as usize
}

impl BufferPool {
    /// New empty pool.
    pub fn new() -> Self {
        Self {
            classes: (0..=MAX_CLASS).map(|_| Mutex::new(Vec::new())).collect(),
            takes: AtomicU64::new(0),
            reuses: AtomicU64::new(0),
            allocs: AtomicU64::new(0),
            puts: AtomicU64::new(0),
        }
    }

    /// Take an empty buffer with capacity for at least `len` elements.
    /// Served from the free list when possible; `len == 0` is allowed and
    /// pooled like any other class.
    pub fn take(&self, len: usize) -> Vec<f32> {
        self.takes.fetch_add(1, Ordering::Relaxed);
        let class = class_of(len);
        if class <= MAX_CLASS {
            if let Some(mut buf) = self.classes[class].lock().pop() {
                debug_assert!(buf.capacity() >= len);
                buf.clear();
                self.reuses.fetch_add(1, Ordering::Relaxed);
                return buf;
            }
        }
        self.allocs.fetch_add(1, Ordering::Relaxed);
        // allocate the full class capacity so the buffer is maximally
        // reusable when it comes back; unpoolable giants get exactly `len`
        Vec::with_capacity(if class <= MAX_CLASS { 1usize << class } else { len })
    }

    /// Take a buffer of exactly `len` elements, zero-filled.
    pub fn take_zeroed(&self, len: usize) -> Vec<f32> {
        let mut buf = self.take(len);
        buf.resize(len, 0.0);
        buf
    }

    /// Take a buffer initialised to a copy of `src`.
    pub fn take_copy(&self, src: &[f32]) -> Vec<f32> {
        let mut buf = self.take(src.len());
        buf.extend_from_slice(src);
        buf
    }

    /// Return a buffer for reuse. Buffers land in the class their
    /// *capacity* belongs to (so a grown buffer is filed where it can
    /// serve the takes it now fits); oversized or surplus buffers are
    /// simply dropped.
    pub fn put(&self, buf: Vec<f32>) {
        self.puts.fetch_add(1, Ordering::Relaxed);
        // file under the largest class the capacity fully covers
        let cap = buf.capacity();
        if cap == 0 {
            return;
        }
        let class = if cap.is_power_of_two() { class_of(cap) } else { class_of(cap) - 1 };
        if class > MAX_CLASS {
            return;
        }
        let mut list = self.classes[class].lock();
        if list.len() < MAX_FREE_PER_CLASS {
            list.push(buf);
        }
    }

    /// Snapshot the usage counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            takes: self.takes.load(Ordering::Relaxed),
            reuses: self.reuses.load(Ordering::Relaxed),
            allocs: self.allocs.load(Ordering::Relaxed),
            puts: self.puts.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_of_is_next_power_of_two_exponent() {
        assert_eq!(class_of(0), 0);
        assert_eq!(class_of(1), 0);
        assert_eq!(class_of(2), 1);
        assert_eq!(class_of(3), 2);
        assert_eq!(class_of(1024), 10);
        assert_eq!(class_of(1025), 11);
    }

    #[test]
    fn take_put_take_reuses_the_buffer() {
        let pool = BufferPool::new();
        let buf = pool.take_copy(&[1.0, 2.0, 3.0]);
        let ptr = buf.as_ptr();
        pool.put(buf);
        let again = pool.take(3);
        assert_eq!(again.as_ptr(), ptr, "same-class take must reuse the freed buffer");
        assert!(again.is_empty(), "reused buffers come back cleared");
        let s = pool.stats();
        assert_eq!((s.takes, s.reuses, s.allocs, s.puts), (2, 1, 1, 1));
    }

    #[test]
    fn mismatched_class_allocates_fresh() {
        let pool = BufferPool::new();
        pool.put(Vec::with_capacity(4));
        let big = pool.take(1000);
        assert!(big.capacity() >= 1000);
        assert_eq!(pool.stats().allocs, 1);
    }

    #[test]
    fn zeroed_take_is_full_length() {
        let pool = BufferPool::new();
        let mut b = pool.take_zeroed(7);
        assert_eq!(b.len(), 7);
        assert!(b.iter().all(|&v| v == 0.0));
        b[0] = 5.0;
        pool.put(b);
        let again = pool.take_zeroed(7);
        assert!(again.iter().all(|&v| v == 0.0), "recycled buffers must be re-zeroed");
    }

    #[test]
    fn grown_buffer_refiles_by_capacity() {
        let pool = BufferPool::new();
        let mut b = pool.take(2);
        b.resize(100, 0.0); // grows past its class
        pool.put(b);
        // a take needing the grown capacity must find it
        let again = pool.take(64);
        assert_eq!(pool.stats().reuses, 1, "grown buffer should serve the larger class");
        assert!(again.capacity() >= 64);
    }
}
