//! The classical ring all-reduce (reduce-scatter ring + all-gather ring).
//!
//! Functionally identical to the direct algorithm; implemented because it is
//! what RCCL actually executes on Frontier and because the collective
//! benchmarks compare the two movement patterns. Only all-reduce has a ring
//! variant here; the other collectives always use the direct algorithm.

use crate::barrier::RankLost;
use crate::group::{chunk_bounds, RankHandle};

/// Ring all-reduce over the handle's group. Called from
/// [`RankHandle::all_reduce`] when the algorithm is `Ring`. Fallible: each
/// ring step synchronises through the handle's (possibly timeout-bounded)
/// barrier, so a dead peer surfaces as `Err(RankLost)` mid-ring.
pub(crate) fn all_reduce_ring(h: &RankHandle, buf: &mut [f32]) -> Result<(), RankLost> {
    let n = h.size();
    let r = h.rank();
    debug_assert!(n > 1);
    let mut incoming = Vec::new();
    let len = buf.len();
    let chunk = move |c: usize| chunk_bounds(len, n, c);

    // Phase 1: reduce-scatter ring. After step s, the chunk each rank just
    // received has been accumulated s+2 times. After n-1 steps, rank r holds
    // the fully reduced chunk (r+1) mod n.
    for s in 0..n - 1 {
        let send_c = (r + n - s) % n;
        let recv_c = (r + n - s - 1) % n;
        let (slo, shi) = chunk(send_c);
        h.mailbox_write(r, &buf[slo..shi]);
        h.try_barrier()?;
        h.mailbox_read((r + n - 1) % n, &mut incoming);
        let (rlo, rhi) = chunk(recv_c);
        debug_assert_eq!(incoming.len(), rhi - rlo);
        for (dst, &src) in buf[rlo..rhi].iter_mut().zip(&incoming) {
            *dst += src;
        }
        h.try_barrier()?;
    }

    // Phase 2: all-gather ring circulating the reduced chunks.
    for s in 0..n - 1 {
        let send_c = (r + 1 + n - s) % n;
        let recv_c = (r + n - s) % n;
        let (slo, shi) = chunk(send_c);
        h.mailbox_write(r, &buf[slo..shi]);
        h.try_barrier()?;
        h.mailbox_read((r + n - 1) % n, &mut incoming);
        let (rlo, rhi) = chunk(recv_c);
        debug_assert_eq!(incoming.len(), rhi - rlo);
        buf[rlo..rhi].copy_from_slice(&incoming);
        h.try_barrier()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::group::{Algorithm, Group};

    fn run_ring(size: usize, len: usize) {
        let handles = Group::create(size);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let h = h.with_algorithm(Algorithm::Ring);
                    let mut buf: Vec<f32> =
                        (0..len).map(|i| (i + h.rank() * len) as f32 * 0.5).collect();
                    let expect: Vec<f32> = (0..len)
                        .map(|i| (0..size).map(|r| (i + r * len) as f32 * 0.5).sum())
                        .collect();
                    h.all_reduce(&mut buf);
                    for (a, e) in buf.iter().zip(&expect) {
                        assert!((a - e).abs() < 1e-3, "rank {}: {:?} vs {:?}", h.rank(), buf, expect);
                    }
                });
            }
        });
    }

    #[test]
    fn ring_matches_reference_various_sizes() {
        run_ring(2, 8);
        run_ring(3, 9);
        run_ring(4, 16);
        run_ring(5, 7); // uneven chunks
        run_ring(8, 64);
    }

    #[test]
    fn ring_repeated_rounds() {
        let handles = Group::create(4);
        std::thread::scope(|s| {
            for h in handles {
                s.spawn(move || {
                    let h = h.with_algorithm(Algorithm::Ring);
                    for round in 0..10 {
                        let mut buf = vec![(h.rank() + round) as f32; 12];
                        h.all_reduce(&mut buf);
                        let expect: f32 = (0..4).map(|r| (r + round) as f32).sum();
                        assert!(buf.iter().all(|&v| (v - expect).abs() < 1e-4));
                    }
                });
            }
        });
    }

    #[test]
    fn ring_len_smaller_than_ranks() {
        // chunks may be empty; algorithm must still terminate correctly
        run_ring(6, 3);
    }
}
