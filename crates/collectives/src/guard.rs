//! Payload-integrity guard for the reduce collectives: error types, the
//! one-shot corruption injector, and the checksum helper.
//!
//! The threat model is a *silent* bit flip in a rank's reduce contribution
//! — a single-event upset in HBM or on the wire that, un-checked, averages
//! garbage into every replica's optimizer state. The defense is the one
//! production systems use: each rank publishes a CRC32 of every chunk of
//! its contribution *before* the reduce; after the data exchange, every
//! rank re-computes the CRC of every chunk it read and compares. Because
//! each rank reads **all** mailboxes in the direct algorithms, all ranks
//! reach the identical verdict — a detected corruption surfaces as the
//! same structured [`CorruptPayload`] on every rank, which is what lets
//! the trainer recover *in-band* (rollback-and-skip) without poisoning
//! the group or restarting the world.
//!
//! The CRC implementation is [`geofm_resilience::crc32`] — the same
//! table-driven IEEE CRC32 that protects the step and encoder checkpoint
//! footers, so one implementation guards both the at-rest and the
//! in-flight state.

use crate::barrier::RankLost;
use std::sync::atomic::{AtomicU64, Ordering};

/// A corruption detected by the checksum layer of a reduce collective.
#[must_use = "a detected corruption must be handled (rollback or abort), not dropped"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorruptPayload {
    /// Rank whose contribution failed verification.
    pub rank: usize,
    /// Chunk index (in [`crate::group::chunk_bounds`] order) that failed.
    pub chunk: usize,
}

impl std::fmt::Display for CorruptPayload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "corrupt reduce payload: rank {} chunk {}", self.rank, self.chunk)
    }
}

impl std::error::Error for CorruptPayload {}

/// Why a checksummed reduce collective failed.
#[must_use = "a failed collective must be handled, not dropped"]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveError {
    /// A peer rank died or stopped responding (see [`RankLost`]). The
    /// group is poisoned; the attempt must be abandoned.
    Lost(RankLost),
    /// A rank's contribution failed checksum verification. The collective
    /// ran to completion (all barriers crossed), so the group is *not*
    /// poisoned — but the reduced values are garbage and must be
    /// discarded. All ranks observe the identical error.
    Corrupt(CorruptPayload),
}

impl From<RankLost> for CollectiveError {
    fn from(l: RankLost) -> Self {
        Self::Lost(l)
    }
}

impl From<CorruptPayload> for CollectiveError {
    fn from(c: CorruptPayload) -> Self {
        Self::Corrupt(c)
    }
}

impl std::fmt::Display for CollectiveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Lost(l) => write!(f, "{l}"),
            Self::Corrupt(c) => write!(f, "{c}"),
        }
    }
}

impl std::error::Error for CollectiveError {}

/// One-shot bit-flip injector shared by all of a rank's group handles.
///
/// Mirrors how the link-slowdown injector works (an atomic cell shared
/// across a rank's world/shard/replica handles), but is *consumed* by the
/// first reduce-type collective the rank runs after arming — a transient
/// upset corrupts one payload, not every payload. The corruption is
/// applied to the mailbox copy **after** the contribution's checksums are
/// computed, which is precisely what makes it in-flight corruption: the
/// sender vouches for what it meant to send, receivers see what actually
/// arrived.
#[derive(Debug, Default)]
pub struct SabotageCell {
    /// 0 = unarmed; otherwise `bit + 1` of the pending flip.
    armed: AtomicU64,
}

impl SabotageCell {
    /// A new, unarmed cell.
    pub fn new() -> Self {
        Self::default()
    }

    /// Arm a single bit flip: the next reduce collective on any handle
    /// sharing this cell flips bit `bit % 31` of one payload element.
    pub fn arm(&self, bit: u32) {
        self.armed.store(u64::from(bit % 31) + 1, Ordering::Release);
    }

    /// Consume the armed flip, if any (one-shot).
    pub fn take(&self) -> Option<u32> {
        match self.armed.swap(0, Ordering::AcqRel) {
            0 => None,
            b => Some((b - 1) as u32),
        }
    }

    /// Whether a flip is armed but not yet consumed.
    pub fn is_armed(&self) -> bool {
        self.armed.load(Ordering::Acquire) != 0
    }
}

/// Flip bit `bit` (0..=30) of a deterministically chosen element of
/// `payload`. The element index is derived from the bit index with a
/// Weyl-style multiplier so different bits corrupt different regions.
pub(crate) fn apply_bitflip(payload: &mut [f32], bit: u32) {
    if payload.is_empty() {
        return;
    }
    let idx = (bit as usize).wrapping_mul(2_654_435_761) % payload.len();
    let flipped = payload[idx].to_bits() ^ (1u32 << (bit % 31));
    payload[idx] = f32::from_bits(flipped);
}

/// CRC32 of an f32 slice's little-endian byte image — the checksum the
/// reduce collectives publish and verify per chunk.
pub(crate) fn payload_crc(data: &[f32]) -> u32 {
    // Hash in fixed-size stack batches to avoid a heap allocation on the
    // collective hot path.
    let mut crc_buf = [0u8; 256];
    let mut crc = 0xFFFF_FFFFu32;
    for chunk in data.chunks(64) {
        let mut n = 0;
        for v in chunk {
            crc_buf[n..n + 4].copy_from_slice(&v.to_bits().to_le_bytes());
            n += 4;
        }
        crc = geofm_resilience::crc32_update(crc, &crc_buf[..n]);
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sabotage_cell_is_one_shot() {
        let c = SabotageCell::new();
        assert!(!c.is_armed());
        assert_eq!(c.take(), None);
        c.arm(12);
        assert!(c.is_armed());
        assert_eq!(c.take(), Some(12));
        assert!(!c.is_armed());
        assert_eq!(c.take(), None, "an armed flip corrupts exactly one payload");
    }

    #[test]
    fn apply_bitflip_changes_exactly_one_element() {
        let clean = vec![1.0f32, 2.0, 3.0, 4.0, 5.0];
        for bit in 0..31 {
            let mut buf = clean.clone();
            apply_bitflip(&mut buf, bit);
            let changed: Vec<usize> = (0..buf.len())
                .filter(|&i| buf[i].to_bits() != clean[i].to_bits())
                .collect();
            assert_eq!(changed.len(), 1, "bit {bit} changed {changed:?}");
        }
    }

    #[test]
    fn bitflip_is_detected_by_payload_crc() {
        let clean = vec![0.5f32; 64];
        let crc = payload_crc(&clean);
        for bit in [0u32, 7, 22, 23, 30] {
            let mut buf = clean.clone();
            apply_bitflip(&mut buf, bit);
            assert_ne!(payload_crc(&buf), crc, "bit {bit} must change the CRC");
        }
    }

    #[test]
    fn payload_crc_matches_bytewise_reference() {
        // the batched implementation must equal one crc32 over the full
        // byte image (the same function the checkpoint footers use)
        let data: Vec<f32> = (0..173).map(|i| i as f32 * 0.37 - 9.0).collect();
        let bytes: Vec<u8> =
            data.iter().flat_map(|v| v.to_bits().to_le_bytes()).collect();
        assert_eq!(payload_crc(&data), geofm_resilience::crc32(&bytes));
    }

    #[test]
    fn empty_payload_flip_is_a_no_op() {
        let mut buf: Vec<f32> = Vec::new();
        apply_bitflip(&mut buf, 5);
        assert!(buf.is_empty());
    }
}
