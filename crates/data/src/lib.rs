//! # geofm-data
//!
//! Synthetic remote-sensing scene datasets and a multi-worker data loader.
//!
//! The paper pretrains on MillionAID (990 848 optical scenes, 51 classes)
//! and probes on UCM (21), AID (30) and NWPU-RESISC45 (45). Those archives
//! are not redistributable and far exceed this environment, so this crate
//! generates **procedural scenes whose class identity is a conjunction of
//! texture attributes** (layout kind × orientation × spatial frequency ×
//! palette) under heavy per-sample nuisance variation (illumination, phase,
//! jitter, sensor noise).
//!
//! Why this preserves the paper's phenomenon: linear probing from raw pixels
//! is weak because nuisances dominate pixel statistics; recovering the class
//! requires *combinations* of mid-level texture features, which is exactly
//! what MAE-pretrained encoders of growing capacity get progressively better
//! at extracting. That mechanism — not the specific imagery — is what
//! Table III measures.
//!
//! The [`loader::DataLoader`] mirrors the PyTorch dataloader the paper uses
//! (4 worker processes per rank): worker threads assemble batches in the
//! background and hand them over a bounded channel.
//!
//! On top of that sits the **fault-tolerant streaming ingest plane**:
//! [`shard`] defines the CRC-checked `GEOFMSH1` on-disk shard format,
//! [`store`] abstracts shard access behind a [`store::ShardStore`] trait
//! (real files or a fault-injectable simulation), and [`stream`] serves
//! verified, hedged, quarantine-aware batches to FSDP ranks.

pub mod datasets;
pub mod loader;
pub mod scene;
pub mod shard;
pub mod store;
pub mod stream;

pub use datasets::{DatasetKind, SceneDataset, SplitSizes};
pub use loader::DataLoader;
pub use scene::{ClassSpec, SceneRenderer};
pub use shard::{build_corpus, CorpusManifest, RawRecord, ShardError, ShardHeader, ShardReader};
pub use store::{FsShardStore, ReadError, ShardStore, SimShardStore, StoreMeta};
pub use stream::{Batch, DefenseConfig, IngestError, IngestPlane, StreamConfig, StreamingLoader};
