//! Procedural remote-sensing scene generation.
//!
//! Each class is a [`ClassSpec`]: a conjunction of a layout primitive
//! (fields / urban grid / water body / forest texture / road network), a
//! dominant orientation, a spatial frequency band and a colour palette.
//! Rendering adds per-sample nuisance variation so that class identity is
//! *not* linearly decodable from raw pixels.

use geofm_tensor::{Tensor, TensorRng};
use rayon::prelude::*;

/// The five layout primitives (loosely: agriculture, urban, water, forest,
/// infrastructure — the scene types that dominate aerial benchmarks).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Layout {
    /// Parallel stripes (crop fields).
    Stripes,
    /// Rectangular block grid (urban fabric).
    Grid,
    /// Smooth radial blob (water body / lake shore).
    Blob,
    /// Multi-scale ridged noise (forest canopy).
    Ridge,
    /// A few crossing linear features (roads / runways).
    Lines,
}

impl Layout {
    /// All layouts, indexable by attribute id.
    pub const ALL: [Layout; 5] = [Self::Stripes, Self::Grid, Self::Blob, Self::Ridge, Self::Lines];
}

/// Colour palettes (base colour, tint colour), loosely matching natural
/// aerial imagery statistics.
const PALETTES: [([f32; 3], [f32; 3]); 4] = [
    ([0.35, 0.45, 0.25], [0.55, 0.50, 0.30]), // vegetation / soil
    ([0.45, 0.42, 0.40], [0.65, 0.63, 0.60]), // built-up grey
    ([0.15, 0.25, 0.40], [0.30, 0.45, 0.55]), // water blues
    ([0.50, 0.40, 0.30], [0.70, 0.60, 0.45]), // arid / sand
];

/// One class's generative attributes.
#[derive(Debug, Clone, Copy)]
pub struct ClassSpec {
    /// Layout primitive.
    pub layout: Layout,
    /// Dominant orientation bin (0..4 ⇒ multiples of 45°).
    pub orientation: usize,
    /// Spatial frequency bin (0..3 ⇒ low/mid/high).
    pub frequency: usize,
    /// Palette bin (0..4).
    pub palette: usize,
}

impl ClassSpec {
    /// Derive the spec for `class_id` within a dataset identified by
    /// `dataset_salt`. A salted permutation of the attribute lattice makes
    /// each dataset's class set a different (but overlapping in attribute
    /// *values*) subset of the 240-point lattice — datasets are independent
    /// yet drawn from the same imagery family, as in the paper.
    pub fn for_class(class_id: usize, dataset_salt: u64) -> Self {
        let mut rng = TensorRng::seed_from(dataset_salt);
        let lattice = 5 * 4 * 3 * 4;
        let perm = rng.permutation(lattice);
        let code = perm[class_id % lattice];
        let layout = Layout::ALL[code % 5];
        let orientation = (code / 5) % 4;
        let frequency = (code / 20) % 3;
        let palette = (code / 60) % 4;
        Self { layout, orientation, frequency, palette }
    }
}

/// Renders images for classes of one dataset.
#[derive(Debug, Clone)]
pub struct SceneRenderer {
    /// Image edge length.
    pub img: usize,
    /// Channels (3 = RGB).
    pub channels: usize,
    dataset_salt: u64,
}

impl SceneRenderer {
    /// New renderer for a dataset identified by `dataset_salt`.
    pub fn new(img: usize, channels: usize, dataset_salt: u64) -> Self {
        assert!(channels == 1 || channels == 3, "1 or 3 channels supported");
        Self { img, channels, dataset_salt }
    }

    /// Render `n` samples of class `class_id`. `sample_offset` shifts the
    /// per-sample seeds so train/test splits never collide.
    pub fn render_class(&self, class_id: usize, n: usize, sample_offset: u64) -> Tensor {
        let pix = self.channels * self.img * self.img;
        let mut out = Tensor::zeros(&[n, pix]);
        let spec = ClassSpec::for_class(class_id, self.dataset_salt);
        out.data_mut().par_chunks_mut(pix).enumerate().for_each(|(i, buf)| {
            let seed = self
                .dataset_salt
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(((class_id as u64) << 32) ^ (sample_offset + i as u64));
            self.render_into(&spec, seed, buf);
        });
        out
    }

    /// Render `n` segmented samples of class `class_id`: images plus
    /// per-pixel semantic labels (0 = background, `1 + layout index` =
    /// foreground of that layout primitive). Ground truth comes for free
    /// because the generator knows the scene structure — the substrate for
    /// the segmentation downstream task (paper §VI future work).
    pub fn render_class_segmented(
        &self,
        class_id: usize,
        n: usize,
        sample_offset: u64,
    ) -> (Tensor, Vec<Vec<u8>>) {
        let pix = self.channels * self.img * self.img;
        let mut out = Tensor::zeros(&[n, pix]);
        let spec = ClassSpec::for_class(class_id, self.dataset_salt);
        let mut labels = vec![vec![0u8; self.img * self.img]; n];
        out.data_mut()
            .par_chunks_mut(pix)
            .zip(labels.par_iter_mut())
            .enumerate()
            .for_each(|(i, (buf, lab))| {
                let seed = self
                    .dataset_salt
                    .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                    .wrapping_add(((class_id as u64) << 32) ^ (sample_offset + i as u64));
                self.render_with_labels(&spec, seed, buf, Some(lab));
            });
        (out, labels)
    }

    /// Render one sample into a pixel buffer (channel-major).
    fn render_into(&self, spec: &ClassSpec, seed: u64, buf: &mut [f32]) {
        self.render_with_labels(spec, seed, buf, None);
    }

    /// Core renderer; optionally writes per-pixel semantic labels.
    fn render_with_labels(
        &self,
        spec: &ClassSpec,
        seed: u64,
        buf: &mut [f32],
        mut labels: Option<&mut Vec<u8>>,
    ) {
        let mut rng = TensorRng::seed_from(seed);
        let img = self.img;
        // per-sample nuisances
        let theta = spec.orientation as f32 * std::f32::consts::FRAC_PI_4
            + rng.uniform_in(-0.18, 0.18);
        let base_freq = [0.06, 0.14, 0.30][spec.frequency] * (1.0 + rng.uniform_in(-0.15, 0.15));
        let phase = rng.uniform_in(0.0, std::f32::consts::TAU);
        let gain = rng.uniform_in(0.6, 1.4);
        let offset = rng.uniform_in(-0.15, 0.15);
        let noise_sigma = rng.uniform_in(0.04, 0.14);
        let (cx, cy) = (rng.uniform_in(0.3, 0.7) * img as f32, rng.uniform_in(0.3, 0.7) * img as f32);
        let line_offsets: Vec<f32> = (0..3).map(|_| rng.uniform_in(0.15, 0.85)).collect();
        let ridge_seed = rng.uniform_in(0.0, 100.0);

        let (sin_t, cos_t) = theta.sin_cos();
        let freq = base_freq * std::f32::consts::TAU;

        let (base, tint) = PALETTES[spec.palette % PALETTES.len()];

        for y in 0..img {
            for x in 0..img {
                let xf = x as f32;
                let yf = y as f32;
                // rotate coordinates by the class orientation
                let u = cos_t * xf + sin_t * yf;
                let v = -sin_t * xf + cos_t * yf;
                let field = match spec.layout {
                    Layout::Stripes => (u * freq + phase).sin(),
                    Layout::Grid => {
                        let a = (u * freq + phase).sin();
                        let b = (v * freq + phase * 0.7).sin();
                        // sharp blocks: product of squared waves
                        (a * b).signum() * (a * b).abs().sqrt()
                    }
                    Layout::Blob => {
                        let d = ((xf - cx) * (xf - cx) + (yf - cy) * (yf - cy)).sqrt();
                        let r = img as f32 * (0.22 + 0.10 * (phase).sin().abs());
                        // soft disc edge modulated by ripples at the class frequency
                        let edge = ((r - d) * 0.35).tanh();
                        edge + 0.25 * (d * freq + phase).sin()
                    }
                    Layout::Ridge => {
                        // two-octave ridged sinusoid pseudo-noise
                        let n1 = ((u * freq + ridge_seed).sin() * (v * freq * 1.7 + phase).cos()).abs();
                        let n2 = ((u * freq * 2.3 + phase).cos() * (v * freq * 0.9 + ridge_seed).sin()).abs();
                        1.0 - (0.65 * n1 + 0.35 * n2) * 2.0
                    }
                    Layout::Lines => {
                        let w = img as f32 * 0.035;
                        let mut m = -0.6f32;
                        for (li, off) in line_offsets.iter().enumerate() {
                            let coord = if li % 2 == 0 { u } else { v };
                            let pos = off * img as f32;
                            let d = (coord.rem_euclid(img as f32) - pos).abs();
                            if d < w {
                                m = 1.0;
                            }
                        }
                        m + 0.15 * (u * freq + phase).sin()
                    }
                };
                if let Some(lab) = labels.as_deref_mut() {
                    let layout_idx = Layout::ALL
                        .iter()
                        .position(|&l| l == spec.layout)
                        .unwrap_or(0) as u8;
                    lab[y * img + x] = if field > 0.0 { 1 + layout_idx } else { 0 };
                }
                let signal = gain * field + offset;
                for ch in 0..self.channels {
                    let (b0, t0) = if self.channels == 3 {
                        (base[ch], tint[ch])
                    } else {
                        (0.4, 0.6)
                    };
                    let value = b0 + (t0 - b0) * (0.5 + 0.5 * signal) + noise_sigma * rng.normal();
                    buf[ch * img * img + y * img + x] = value;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rendering_is_deterministic() {
        let r = SceneRenderer::new(16, 3, 7);
        let a = r.render_class(3, 2, 0);
        let b = r.render_class(3, 2, 0);
        assert_eq!(a, b);
    }

    #[test]
    fn sample_offset_changes_samples() {
        let r = SceneRenderer::new(16, 3, 7);
        let a = r.render_class(3, 1, 0);
        let b = r.render_class(3, 1, 1000);
        assert!(a.max_abs_diff(&b) > 1e-3);
    }

    #[test]
    fn different_classes_differ() {
        let r = SceneRenderer::new(16, 3, 7);
        let a = r.render_class(0, 1, 0);
        let b = r.render_class(1, 1, 0);
        assert!(a.max_abs_diff(&b) > 1e-2);
    }

    #[test]
    fn different_dataset_salts_reassign_attributes() {
        let s1 = ClassSpec::for_class(0, 1);
        let s2 = ClassSpec::for_class(0, 2);
        // not guaranteed for every pair, but these seeds differ in the lattice
        let differs = s1.layout != s2.layout
            || s1.orientation != s2.orientation
            || s1.frequency != s2.frequency
            || s1.palette != s2.palette;
        assert!(differs);
    }

    #[test]
    fn class_specs_within_attribute_ranges() {
        for c in 0..60 {
            let s = ClassSpec::for_class(c, 42);
            assert!(s.orientation < 4);
            assert!(s.frequency < 3);
            assert!(s.palette < 4);
        }
    }

    #[test]
    fn lattice_classes_are_distinct() {
        // within one dataset, class specs must be pairwise distinct
        let specs: Vec<ClassSpec> = (0..51).map(|c| ClassSpec::for_class(c, 9)).collect();
        for i in 0..specs.len() {
            for j in (i + 1)..specs.len() {
                let a = &specs[i];
                let b = &specs[j];
                let same = a.layout == b.layout
                    && a.orientation == b.orientation
                    && a.frequency == b.frequency
                    && a.palette == b.palette;
                assert!(!same, "classes {} and {} share a spec", i, j);
            }
        }
    }

    #[test]
    fn pixel_values_are_bounded_and_finite() {
        let r = SceneRenderer::new(24, 3, 5);
        for c in 0..8 {
            let t = r.render_class(c, 2, 0);
            assert!(!t.has_non_finite());
            assert!(t.data().iter().all(|&v| (-2.0..3.0).contains(&v)));
        }
    }

    #[test]
    fn within_class_variance_is_substantial() {
        // nuisances must create real intra-class variation
        let r = SceneRenderer::new(16, 3, 7);
        let a = r.render_class(2, 1, 0);
        let b = r.render_class(2, 1, 1);
        let diff = a.sub(&b);
        assert!(diff.l2_norm() / a.numel() as f32 > 1e-4);
    }

    #[test]
    fn single_channel_supported() {
        let r = SceneRenderer::new(16, 1, 7);
        let t = r.render_class(0, 1, 0);
        assert_eq!(t.shape(), &[1, 256]);
    }
}
