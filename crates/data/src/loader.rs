//! Multi-worker batch loader.
//!
//! Mirrors the structure of the PyTorch `DataLoader` used in the paper
//! (4 workers per GPU rank): worker threads assemble batches in the
//! background and hand them over a bounded crossbeam channel, so the
//! training loop overlaps "IO" (here: gather + copy) with compute.

use crate::datasets::SceneDataset;
use crossbeam::channel::{bounded, Receiver};
use geofm_tensor::{Tensor, TensorRng};
use geofm_telemetry::{Stopwatch, Telemetry};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A prefetching loader over an in-memory [`SceneDataset`].
///
/// Iterating yields `(images, labels)` batches covering one epoch in a
/// deterministic shuffled order. Batch *content* is independent of the
/// worker count; only the assembly parallelism changes.
pub struct DataLoader {
    rx: Receiver<(usize, Tensor, Vec<usize>)>,
    workers: Vec<JoinHandle<()>>,
    /// Reorder buffer so batches arrive in deterministic order.
    pending: Vec<Option<(Tensor, Vec<usize>)>>,
    next: usize,
    batches: usize,
    /// Optional telemetry: `data.queue_depth` gauge (channel occupancy
    /// observed at each consume, with high-watermark), `data.wait.ns`
    /// histogram (time the training loop blocked waiting for a batch) and
    /// `data.batches` counter.
    telemetry: Option<Arc<Telemetry>>,
}

impl DataLoader {
    /// Start an epoch over `dataset` with the given batch size, worker
    /// count and shuffle seed. Drops the last partial batch (as the paper's
    /// fixed local-batch protocol does).
    pub fn new(dataset: Arc<SceneDataset>, batch_size: usize, num_workers: usize, seed: u64) -> Self {
        assert!(batch_size > 0, "batch_size must be positive");
        assert!(num_workers > 0, "need at least one worker");
        let n = dataset.len();
        let mut rng = TensorRng::seed_from(seed);
        let order = rng.permutation(n);
        let batches = n / batch_size;
        let (tx, rx) = bounded(2 * num_workers);
        let order = Arc::new(order);
        let mut workers = Vec::with_capacity(num_workers);
        for w in 0..num_workers {
            let tx = tx.clone();
            let dataset = Arc::clone(&dataset);
            let order = Arc::clone(&order);
            workers.push(std::thread::spawn(move || {
                // round-robin batch assignment: worker w handles batches w, w+W, ...
                let mut b = w;
                while b < batches {
                    let idx = &order[b * batch_size..(b + 1) * batch_size];
                    let (images, labels) = dataset.batch(idx);
                    if tx.send((b, images, labels)).is_err() {
                        return; // loader dropped early
                    }
                    b += num_workers;
                }
            }));
        }
        Self {
            rx,
            workers,
            pending: (0..batches).map(|_| None).collect(),
            next: 0,
            batches,
            telemetry: None,
        }
    }

    /// Record queue depth, consumer wait time and batch count into `tel`.
    pub fn with_telemetry(mut self, tel: Arc<Telemetry>) -> Self {
        self.telemetry = Some(tel);
        self
    }

    /// Number of batches this epoch.
    pub fn len(&self) -> usize {
        self.batches
    }

    /// True if the epoch has no batches.
    pub fn is_empty(&self) -> bool {
        self.batches == 0
    }
}

impl Iterator for DataLoader {
    type Item = (Tensor, Vec<usize>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.next >= self.batches {
            return None;
        }
        if let Some(tel) = &self.telemetry {
            tel.metrics.gauge("data.queue_depth").set(self.rx.len() as i64);
        }
        let wait = Stopwatch::start();
        // receive until the next in-order batch is available
        while self.pending[self.next].is_none() {
            let (b, images, labels) = self
                .rx
                .recv()
                .expect("loader worker died before producing all batches");
            self.pending[b] = Some((images, labels));
        }
        if let Some(tel) = &self.telemetry {
            tel.metrics.histogram("data.wait.ns").record(wait.elapsed_ns());
            tel.metrics.counter("data.batches").inc(1);
        }
        let item = self.pending[self.next].take();
        self.next += 1;
        item
    }
}

impl Drop for DataLoader {
    fn drop(&mut self) {
        // drain the channel so senders unblock, then join
        while self.rx.try_recv().is_ok() {}
        drop(std::mem::replace(&mut self.rx, bounded(1).1));
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;

    fn dataset(n: usize) -> Arc<SceneDataset> {
        Arc::new(SceneDataset::generate(DatasetKind::Ucm, n, 8, 1, 0, 3))
    }

    #[test]
    fn epoch_covers_every_sample_once() {
        let ds = dataset(40);
        let loader = DataLoader::new(Arc::clone(&ds), 8, 3, 42);
        assert_eq!(loader.len(), 5);
        let mut seen_labels = Vec::new();
        let mut batches = 0;
        for (imgs, labels) in loader {
            assert_eq!(imgs.shape(), &[8, 64]);
            assert_eq!(labels.len(), 8);
            seen_labels.extend(labels);
            batches += 1;
        }
        assert_eq!(batches, 5);
        // 40 samples, batch 8 → all 40 seen
        let mut expected = ds.labels.clone();
        expected.sort_unstable();
        seen_labels.sort_unstable();
        assert_eq!(seen_labels, expected);
    }

    #[test]
    fn batch_content_independent_of_worker_count() {
        let ds = dataset(32);
        let collect = |workers: usize| -> Vec<Vec<usize>> {
            DataLoader::new(Arc::clone(&ds), 4, workers, 7).map(|(_, l)| l).collect()
        };
        assert_eq!(collect(1), collect(4));
    }

    #[test]
    fn shuffle_depends_on_seed() {
        let ds = dataset(32);
        let labels = |seed: u64| -> Vec<usize> {
            DataLoader::new(Arc::clone(&ds), 4, 2, seed).flat_map(|(_, l)| l).collect()
        };
        assert_ne!(labels(1), labels(2));
        assert_eq!(labels(3), labels(3));
    }

    #[test]
    fn partial_batches_are_dropped() {
        let ds = dataset(30);
        let loader = DataLoader::new(ds, 8, 2, 1);
        assert_eq!(loader.len(), 3);
        assert_eq!(loader.count(), 3);
    }

    #[test]
    fn early_drop_does_not_hang() {
        let ds = dataset(64);
        let mut loader = DataLoader::new(ds, 4, 4, 1);
        let _ = loader.next();
        drop(loader); // must not deadlock on full channel
    }

    #[test]
    fn mid_epoch_drop_joins_workers_instead_of_leaking() {
        // regression: Drop must *join* the workers, not merely unblock
        // them — a leaked worker would still hold its dataset Arc
        let ds = dataset(64);
        let mut loader = DataLoader::new(Arc::clone(&ds), 4, 4, 1);
        let _ = loader.next();
        drop(loader);
        assert_eq!(
            Arc::strong_count(&ds),
            1,
            "worker threads must be joined on drop, not leaked"
        );
    }

    #[test]
    fn telemetry_counts_batches_and_waits() {
        let ds = dataset(32);
        let tel = Telemetry::new();
        let loader = DataLoader::new(ds, 4, 2, 9).with_telemetry(tel.clone());
        let n = loader.count();
        assert_eq!(n, 8);
        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("data.batches"), 8);
        assert_eq!(snap.histograms["data.wait.ns"].count, 8);
        assert!(snap.gauges["data.queue_depth"].max >= 0);
    }

    #[test]
    fn images_match_dataset_rows() {
        let ds = dataset(16);
        let mut rng = TensorRng::seed_from(5);
        let order = rng.permutation(16);
        let loader = DataLoader::new(Arc::clone(&ds), 4, 2, 5);
        for (b, (imgs, labels)) in loader.enumerate() {
            for (i, &src) in order[b * 4..(b + 1) * 4].iter().enumerate() {
                assert_eq!(imgs.row(i), ds.images.row(src));
                assert_eq!(labels[i], ds.labels[src]);
            }
        }
    }
}
