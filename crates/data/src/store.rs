//! The [`ShardStore`] abstraction: where raw records come from.
//!
//! A store returns **unverified** [`RawRecord`]s — the checksum verdict
//! is the streaming layer's to make, because what a mismatch *means*
//! (retry? hedge? quarantine?) depends on policy, not on the medium.
//! Two implementations:
//!
//! * [`FsShardStore`] — real `GEOFMSH1` files on a filesystem, opened
//!   lazily so a missing or truncated file surfaces as a structured
//!   [`ReadError`] at first touch rather than at startup.
//! * [`SimShardStore`] — a pristine in-memory corpus plus a shared
//!   [`FaultPlan`], injecting the I/O fault kinds (`CorruptRecord`,
//!   `FlakyRead`, `MissingShard`, `TruncatedShard`, `SlowShard`,
//!   `StalledRead`) deterministically. The simulated corpus is generated
//!   by exactly the same procedure as [`build_corpus`], so a clean
//!   `SimShardStore` and an `FsShardStore` over builder output serve
//!   bit-identical records.
//!
//! [`build_corpus`]: crate::shard::build_corpus
//! [`FaultPlan`]: geofm_resilience::FaultPlan

use crate::datasets::{DatasetKind, SceneDataset};
use crate::shard::{record_crc, RawRecord, ShardError, ShardReader};
use geofm_resilience::{FaultPlan, RecordId};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// Corpus geometry: how records are addressed across shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreMeta {
    /// Shards in the corpus.
    pub shards: usize,
    /// Records per shard (uniform by construction).
    pub records_per_shard: usize,
    /// f32 features per record.
    pub record_len: usize,
    /// Image edge length.
    pub img: usize,
    /// Channels.
    pub channels: usize,
    /// Class count of the generating dataset.
    pub classes: usize,
}

impl StoreMeta {
    /// Total records across the corpus.
    pub fn total_records(&self) -> usize {
        self.shards * self.records_per_shard
    }

    /// Map a global record index to its `(shard, record)` identity.
    pub fn locate(&self, global: usize) -> RecordId {
        RecordId { shard: global / self.records_per_shard, record: global % self.records_per_shard }
    }
}

/// Why a store could not return a record's bytes at all (as opposed to
/// returning bytes that fail verification, which is the caller's case to
/// judge via [`RawRecord::intact`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ReadError {
    /// The shard is gone — file absent, OST lost.
    MissingShard {
        /// Missing shard index.
        shard: usize,
    },
    /// The shard was truncated and this record lies past the cut.
    TruncatedShard {
        /// Truncated shard index.
        shard: usize,
        /// Records still readable.
        keep_records: usize,
    },
    /// The shard file exists but cannot be decoded (bad magic, header
    /// rot, size mismatch).
    ShardUnreadable {
        /// Undecodable shard index.
        shard: usize,
        /// Decoder error text.
        why: String,
    },
    /// The record index is outside the corpus.
    OutOfRange {
        /// Requested record.
        id: RecordId,
    },
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::MissingShard { shard } => write!(f, "shard {shard} missing"),
            Self::TruncatedShard { shard, keep_records } => {
                write!(f, "shard {shard} truncated to {keep_records} record(s)")
            }
            Self::ShardUnreadable { shard, why } => write!(f, "shard {shard} unreadable: {why}"),
            Self::OutOfRange { id } => write!(f, "record {id} out of range"),
        }
    }
}

impl std::error::Error for ReadError {}

impl ReadError {
    /// Whether the error condemns the whole shard (so a defended reader
    /// quarantines every record of it, not just the one requested).
    pub fn shard_fatal(&self) -> bool {
        !matches!(self, Self::OutOfRange { .. })
    }
}

/// A source of raw, unverified records.
pub trait ShardStore: Send + Sync {
    /// Corpus geometry.
    fn meta(&self) -> StoreMeta;

    /// Read one record's bytes. `Err` means the bytes are unobtainable;
    /// `Ok` bytes may still fail verification ([`RawRecord::intact`]).
    fn read(&self, id: RecordId) -> Result<RawRecord, ReadError>;
}

/// Cached outcome of opening one shard file: a validated reader, or the
/// structural error every read of that shard will return.
type OpenVerdict = Result<Arc<ShardReader>, ReadError>;

/// [`ShardStore`] over real `GEOFMSH1` files.
///
/// Shards are opened (and fully framing-validated) lazily on first touch
/// and cached; open failures are cached too, so a lost shard costs one
/// syscall, not one per read.
pub struct FsShardStore {
    meta: StoreMeta,
    paths: Vec<PathBuf>,
    open: Mutex<Vec<Option<OpenVerdict>>>,
}

impl FsShardStore {
    /// Address a corpus of shard files. `meta` must describe the files'
    /// actual geometry (as returned by the builder's manifest).
    pub fn new(paths: Vec<PathBuf>, meta: StoreMeta) -> Self {
        let open = Mutex::new(vec![None; paths.len()]);
        Self { meta, paths, open }
    }

    fn shard(&self, shard: usize) -> Result<Arc<ShardReader>, ReadError> {
        let mut open = self.open.lock().unwrap();
        if let Some(cached) = &open[shard] {
            return cached.clone();
        }
        let loaded = match std::fs::read(&self.paths[shard]) {
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                Err(ReadError::MissingShard { shard })
            }
            Err(e) => Err(ReadError::ShardUnreadable { shard, why: e.to_string() }),
            Ok(bytes) => match ShardReader::from_bytes(bytes) {
                Ok(r) => Ok(Arc::new(r)),
                Err(ShardError::SizeMismatch { expected, actual }) if actual < expected => {
                    // a truncated file: records before the cut are *not*
                    // recoverable through the framing check, so the whole
                    // shard is condemned with its surviving prefix length
                    let rb = 8 + 4 * self.meta.record_len as u64 + 4;
                    let keep =
                        (actual.saturating_sub(crate::shard::HEADER_LEN as u64) / rb) as usize;
                    Err(ReadError::TruncatedShard { shard, keep_records: keep })
                }
                Err(e) => Err(ReadError::ShardUnreadable { shard, why: e.to_string() }),
            },
        };
        open[shard] = Some(loaded.clone());
        loaded
    }
}

impl ShardStore for FsShardStore {
    fn meta(&self) -> StoreMeta {
        self.meta
    }

    fn read(&self, id: RecordId) -> Result<RawRecord, ReadError> {
        if id.shard >= self.meta.shards || id.record >= self.meta.records_per_shard {
            return Err(ReadError::OutOfRange { id });
        }
        let reader = self.shard(id.shard)?;
        reader.read_raw(id.record).map_err(|e| match e {
            ShardError::OutOfRange { .. } => ReadError::OutOfRange { id },
            other => ReadError::ShardUnreadable { shard: id.shard, why: other.to_string() },
        })
    }
}

/// Fault-injectable in-memory [`ShardStore`]: pristine records plus a
/// shared [`FaultPlan`] consulted on every read.
///
/// Fault semantics mirror the plan's contract: `CorruptRecord` rots the
/// returned bytes on *every* read (persistent), `FlakyRead` rots exactly
/// one read (one-shot — the retry is clean), `MissingShard` /
/// `TruncatedShard` are structural [`ReadError`]s, `SlowShard` delays
/// every read, `StalledRead` delays exactly one read (the hedge target).
pub struct SimShardStore {
    meta: StoreMeta,
    /// `records[shard][record]` = (label, features, crc).
    records: Vec<Vec<(u64, Vec<f32>, u32)>>,
    plan: Arc<FaultPlan>,
}

impl SimShardStore {
    /// Generate a pristine corpus (same procedure as the on-disk builder)
    /// and wire it to `plan` for fault injection. Use
    /// [`FaultPlan::none`] for a clean store.
    pub fn generate(
        kind: DatasetKind,
        shards: usize,
        records_per_shard: usize,
        img: usize,
        channels: usize,
        seed: u64,
        plan: Arc<FaultPlan>,
    ) -> Self {
        let n = shards * records_per_shard;
        let ds = SceneDataset::generate(kind, n, img, channels, 3_000_000, seed);
        let records = (0..shards)
            .map(|s| {
                (0..records_per_shard)
                    .map(|r| {
                        let row = s * records_per_shard + r;
                        let label = ds.labels[row] as u64;
                        let features = ds.images.row(row).to_vec();
                        let crc = record_crc(label, &features);
                        (label, features, crc)
                    })
                    .collect()
            })
            .collect();
        let meta = StoreMeta {
            shards,
            records_per_shard,
            record_len: channels * img * img,
            img,
            channels,
            classes: kind.classes(),
        };
        Self { meta, records, plan }
    }
}

impl ShardStore for SimShardStore {
    fn meta(&self) -> StoreMeta {
        self.meta
    }

    fn read(&self, id: RecordId) -> Result<RawRecord, ReadError> {
        if id.shard >= self.meta.shards || id.record >= self.meta.records_per_shard {
            return Err(ReadError::OutOfRange { id });
        }
        if self.plan.io_missing(id.shard) {
            return Err(ReadError::MissingShard { shard: id.shard });
        }
        if let Some(keep) = self.plan.io_truncated(id.shard) {
            // truncation condemns the whole shard — matching the on-disk
            // reality, where a size-mismatched file fails framing for
            // every record. Keeping both media identical keeps quarantine
            // independent of which record was touched first.
            return Err(ReadError::TruncatedShard { shard: id.shard, keep_records: keep });
        }
        if let Some(delay) = self.plan.io_slow(id.shard) {
            std::thread::sleep(delay);
        }
        if let Some(stall) = self.plan.take_io_stall(id.shard, id.record) {
            std::thread::sleep(stall);
        }
        let (label, features, crc) = &self.records[id.shard][id.record];
        let mut raw = RawRecord {
            label: *label,
            features: features.clone(),
            crc_stored: *crc,
            crc_actual: *crc,
        };
        if self.plan.io_corrupt(id.shard, id.record) || self.plan.take_io_flaky(id.shard, id.record)
        {
            // rot one payload bit deterministically and recompute what a
            // reader would hash over the rotten bytes
            let i = id.record % raw.features.len().max(1);
            raw.features[i] = f32::from_bits(raw.features[i].to_bits() ^ (1 << 17));
            raw.crc_actual = record_crc(raw.label, &raw.features);
        }
        Ok(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::shard::build_corpus;

    fn sim(plan: Arc<FaultPlan>) -> SimShardStore {
        SimShardStore::generate(DatasetKind::Ucm, 3, 8, 4, 1, 7, plan)
    }

    #[test]
    fn fs_and_sim_stores_serve_identical_records() {
        let dir = std::env::temp_dir().join(format!("geofm-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let m = build_corpus(&dir, DatasetKind::Ucm, 3, 8, 4, 1, 7).unwrap();
        let meta = StoreMeta {
            shards: 3,
            records_per_shard: 8,
            record_len: 16,
            img: 4,
            channels: 1,
            classes: 21,
        };
        let fs = FsShardStore::new(m.shard_files.clone(), meta);
        let simstore = sim(Arc::new(FaultPlan::none()));
        for g in 0..meta.total_records() {
            let id = meta.locate(g);
            let a = fs.read(id).unwrap();
            let b = simstore.read(id).unwrap();
            assert!(a.intact() && b.intact());
            assert_eq!(a, b, "record {id} differs between media");
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fs_store_reports_missing_and_truncated_shards() {
        let dir = std::env::temp_dir().join(format!("geofm-store-mt-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let m = build_corpus(&dir, DatasetKind::Ucm, 2, 4, 4, 1, 1).unwrap();
        let meta = StoreMeta {
            shards: 2,
            records_per_shard: 4,
            record_len: 16,
            img: 4,
            channels: 1,
            classes: 21,
        };
        std::fs::remove_file(&m.shard_files[0]).unwrap();
        let bytes = std::fs::read(&m.shard_files[1]).unwrap();
        let rb = 8 + 4 * 16 + 4;
        std::fs::write(&m.shard_files[1], &bytes[..crate::shard::HEADER_LEN + 2 * rb + 5]).unwrap();
        let fs = FsShardStore::new(m.shard_files.clone(), meta);
        assert_eq!(
            fs.read(RecordId { shard: 0, record: 0 }),
            Err(ReadError::MissingShard { shard: 0 })
        );
        // cached verdict on the second touch
        assert_eq!(
            fs.read(RecordId { shard: 0, record: 3 }),
            Err(ReadError::MissingShard { shard: 0 })
        );
        assert_eq!(
            fs.read(RecordId { shard: 1, record: 0 }),
            Err(ReadError::TruncatedShard { shard: 1, keep_records: 2 })
        );
        assert_eq!(
            fs.read(RecordId { shard: 2, record: 0 }),
            Err(ReadError::OutOfRange { id: RecordId { shard: 2, record: 0 } })
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fs_store_reports_garbage_shard_unreadable() {
        let dir = std::env::temp_dir().join(format!("geofm-store-g-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shard-0000.gsh");
        std::fs::write(&path, b"NOTASHARDFILE___________________________________________________")
            .unwrap();
        let meta = StoreMeta {
            shards: 1,
            records_per_shard: 4,
            record_len: 16,
            img: 4,
            channels: 1,
            classes: 21,
        };
        let fs = FsShardStore::new(vec![path], meta);
        assert!(matches!(
            fs.read(RecordId { shard: 0, record: 0 }),
            Err(ReadError::ShardUnreadable { shard: 0, .. })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn sim_store_injects_persistent_corruption() {
        let plan = Arc::new(FaultPlan::none().with_corrupt_record(1, 3));
        let store = sim(plan);
        for _ in 0..3 {
            let raw = store.read(RecordId { shard: 1, record: 3 }).unwrap();
            assert!(!raw.intact(), "rot must persist across retries");
        }
        assert!(store.read(RecordId { shard: 1, record: 2 }).unwrap().intact());
    }

    #[test]
    fn sim_store_flaky_read_heals_on_retry() {
        let plan = Arc::new(FaultPlan::none().with_flaky_read(0, 5));
        let store = sim(plan);
        assert!(!store.read(RecordId { shard: 0, record: 5 }).unwrap().intact());
        assert!(store.read(RecordId { shard: 0, record: 5 }).unwrap().intact());
    }

    #[test]
    fn sim_store_structural_faults_match_plan() {
        let plan = Arc::new(
            FaultPlan::none().with_missing_shard(2).with_truncated_shard(0, 6),
        );
        let store = sim(plan);
        assert_eq!(
            store.read(RecordId { shard: 2, record: 0 }),
            Err(ReadError::MissingShard { shard: 2 })
        );
        // truncation condemns every record of the shard, like real files
        assert_eq!(
            store.read(RecordId { shard: 0, record: 5 }),
            Err(ReadError::TruncatedShard { shard: 0, keep_records: 6 })
        );
        assert_eq!(
            store.read(RecordId { shard: 0, record: 6 }),
            Err(ReadError::TruncatedShard { shard: 0, keep_records: 6 })
        );
        assert!(store.read(RecordId { shard: 1, record: 0 }).is_ok());
        assert!(ReadError::MissingShard { shard: 2 }.shard_fatal());
        assert!(
            !ReadError::OutOfRange { id: RecordId { shard: 9, record: 0 } }.shard_fatal()
        );
    }

    #[test]
    fn locate_is_shard_major() {
        let meta = StoreMeta {
            shards: 4,
            records_per_shard: 10,
            record_len: 16,
            img: 4,
            channels: 1,
            classes: 21,
        };
        assert_eq!(meta.locate(0), RecordId { shard: 0, record: 0 });
        assert_eq!(meta.locate(27), RecordId { shard: 2, record: 7 });
        assert_eq!(meta.total_records(), 40);
    }
}
