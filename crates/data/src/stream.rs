//! The fault-tolerant streaming ingest plane.
//!
//! [`IngestPlane`] feeds FSDP ranks batches from a [`ShardStore`] in a
//! deterministic seeded shuffle order, defending every read:
//!
//! * **CRC verification** — a record whose checksum mismatches is never
//!   consumed; it is retried with exponential backoff and, if the rot is
//!   persistent, quarantined.
//! * **EWMA timeouts + hedged reads** — each read's latency feeds an
//!   EWMA; a read overrunning `multiplier ×` the EWMA (floored) gets a
//!   hedged second read racing the straggler, and the first finisher
//!   wins.
//! * **Quarantine-and-skip degradation** — records that are definitively
//!   unobtainable (persistent CRC failure, missing/truncated shard) are
//!   quarantined: their batch slots are dropped *in place* and the run
//!   continues over the survivors. The epoch order is a permutation of
//!   **all** records, independent of quarantine, so a faulted run is
//!   bit-identical to a clean run handed the same quarantine set up
//!   front — the contract the integrity guard established for steps,
//!   extended to records.
//!
//! Per rank, [`StreamingLoader`] prefetches batches on a background
//! thread over a bounded channel (`prefetch_depth` = 2 ⇒ double
//! buffering); [`IngestPlane::next_batch`] keeps one loader per rank and
//! rebuilds it whenever a restart, rollback or elastic reshard makes the
//! requested `(step, world)` discontiguous — batch *content* depends
//! only on `(step, rank, world)`, never on prefetch state.

use crate::shard::RawRecord;
use crate::store::{ReadError, ShardStore, StoreMeta};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use geofm_resilience::{DataReport, RecordId};
use geofm_tensor::{Tensor, TensorRng};
use geofm_telemetry::{Stopwatch, Telemetry};
use std::collections::{BTreeSet, HashMap};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Defense-layer knobs. [`DefenseConfig::default`] turns everything on;
/// [`DefenseConfig::off`] is the undefended negative control (consume
/// whatever the store returns, wait however long it takes).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseConfig {
    /// Verify per-record CRCs on every read; mismatches are retried and
    /// eventually quarantined, never consumed.
    pub verify_crc: bool,
    /// Retries after a checksum mismatch before quarantining.
    pub max_retries: u32,
    /// Base backoff after a failed read; doubles per retry.
    pub retry_backoff: Duration,
    /// Dispatch a hedged second read when a read overruns the EWMA
    /// timeout.
    pub hedge: bool,
    /// Timeout floor — hedges never fire faster than this.
    pub timeout_floor: Duration,
    /// Timeout = `max(floor, multiplier × EWMA read latency)`.
    pub timeout_multiplier: f64,
    /// Reads observed before the EWMA is trusted (floor applies before).
    pub warmup_reads: u64,
    /// Read-pool worker threads serving primary + hedged reads.
    pub pool_workers: usize,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        Self {
            verify_crc: true,
            max_retries: 2,
            retry_backoff: Duration::from_micros(200),
            hedge: true,
            timeout_floor: Duration::from_millis(15),
            timeout_multiplier: 8.0,
            warmup_reads: 8,
            pool_workers: 4,
        }
    }
}

impl DefenseConfig {
    /// Every defense disabled: reads are trusted and waited on forever.
    /// The negative control for chaos suites and the `figW` sweep.
    pub fn off() -> Self {
        Self { verify_crc: false, max_retries: 0, hedge: false, ..Self::default() }
    }
}

/// Configuration of an [`IngestPlane`].
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Global batch size; each rank receives its contiguous slice
    /// (`rank·B/world .. (rank+1)·B/world`) of the step's global slots.
    pub global_batch: usize,
    /// Shuffle seed. Each epoch reshuffles deterministically.
    pub seed: u64,
    /// Bounded prefetch depth per rank (2 = double buffering).
    pub prefetch_depth: usize,
    /// Defense-layer knobs.
    pub defense: DefenseConfig,
    /// Records to treat as quarantined from step 0 — how a recovery run
    /// reproduces a faulted run bit-identically.
    pub quarantine: BTreeSet<RecordId>,
}

impl StreamConfig {
    /// Defaults: double-buffered prefetch, all defenses on, nothing
    /// pre-quarantined.
    pub fn new(global_batch: usize, seed: u64) -> Self {
        Self {
            global_batch,
            seed,
            prefetch_depth: 2,
            defense: DefenseConfig::default(),
            quarantine: BTreeSet::new(),
        }
    }
}

/// One rank's slice of one step's global batch.
#[derive(Debug, Clone, PartialEq)]
pub struct Batch {
    /// Step this batch feeds.
    pub step: usize,
    /// `[rows, record_len]` features; `rows` shrinks when slots dropped.
    pub images: Tensor,
    /// Labels for the surviving rows.
    pub labels: Vec<usize>,
    /// Slots dropped because their record is quarantined.
    pub dropped: usize,
}

/// Hard ingest failure — degradation exhausted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// Every slot of the rank's slice was quarantined; there is nothing
    /// left to train on this step.
    EmptyBatch {
        /// Step whose batch came up empty.
        step: usize,
        /// Rank whose slice was empty.
        rank: usize,
        /// World size at the time.
        world: usize,
    },
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::EmptyBatch { step, rank, world } => write!(
                f,
                "ingest failed: every slot of rank {rank}/{world}'s batch at step {step} is quarantined"
            ),
        }
    }
}

impl std::error::Error for IngestError {}

/// Why a defended read gave up on a record.
#[derive(Debug, Clone, PartialEq, Eq)]
enum ReadFailure {
    /// The store cannot produce the bytes at all.
    Structural(ReadError),
    /// Checksum mismatch survived every retry — persistent rot.
    Corrupt,
}

#[derive(Default)]
struct IngestStats {
    records_read: AtomicU64,
    bytes_read: AtomicU64,
    retries: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    dropped_rows: AtomicU64,
    prefetch_stalls: AtomicU64,
    wait_ns_max: AtomicU64,
    queue_depth_max: AtomicI64,
}

impl IngestStats {
    fn max_u64(cell: &AtomicU64, v: u64) {
        cell.fetch_max(v, Ordering::Relaxed);
    }
}

/// Per-read EWMA latency clock driving hedge timeouts.
struct ReadClock {
    ewma_ns: AtomicU64, // f64 bits
    observed: AtomicU64,
}

impl ReadClock {
    fn new() -> Self {
        Self { ewma_ns: AtomicU64::new(0f64.to_bits()), observed: AtomicU64::new(0) }
    }

    fn observe(&self, latency: Duration) {
        let sample = latency.as_nanos() as f64;
        let mut cur = self.ewma_ns.load(Ordering::Relaxed);
        loop {
            let prev = f64::from_bits(cur);
            let next = if self.observed.load(Ordering::Relaxed) == 0 {
                sample
            } else {
                0.8 * prev + 0.2 * sample
            };
            match self.ewma_ns.compare_exchange_weak(
                cur,
                next.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => cur = now,
            }
        }
        self.observed.fetch_add(1, Ordering::Relaxed);
    }

    fn timeout(&self, d: &DefenseConfig) -> Duration {
        if self.observed.load(Ordering::Relaxed) < d.warmup_reads {
            return d.timeout_floor;
        }
        let ewma = f64::from_bits(self.ewma_ns.load(Ordering::Relaxed));
        let scaled = Duration::from_nanos((ewma * d.timeout_multiplier) as u64);
        scaled.max(d.timeout_floor)
    }
}

struct ReadJob {
    id: RecordId,
    attempt: u8,
    reply: Sender<(u8, Result<RawRecord, ReadError>, Duration)>,
}

/// Shared worker pool executing (possibly hedged) store reads.
struct ReadPool {
    tx: Sender<ReadJob>,
    workers: Vec<JoinHandle<()>>,
}

impl ReadPool {
    fn new(store: Arc<dyn ShardStore>, workers: usize) -> Self {
        let (tx, rx) = crossbeam::channel::unbounded::<ReadJob>();
        let workers = (0..workers.max(1))
            .map(|_| {
                let rx = rx.clone();
                let store = Arc::clone(&store);
                std::thread::spawn(move || {
                    while let Ok(job) = rx.recv() {
                        let t0 = Instant::now();
                        let res = store.read(job.id);
                        // receiver gone = caller took the other attempt
                        let _ = job.reply.send((job.attempt, res, t0.elapsed()));
                    }
                })
            })
            .collect();
        Self { tx, workers }
    }

    fn submit(&self, job: ReadJob) {
        assert!(
            self.tx.send(job).is_ok(),
            "read pool workers alive while the plane lives"
        );
    }
}

impl Drop for ReadPool {
    fn drop(&mut self) {
        let (dead_tx, _dead_rx) = crossbeam::channel::bounded(1);
        drop(std::mem::replace(&mut self.tx, dead_tx));
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

/// Everything shared between consumers and prefetch threads.
struct PlaneCore {
    cfg: StreamConfig,
    meta: StoreMeta,
    pool: ReadPool,
    clock: ReadClock,
    stats: IngestStats,
    /// Quarantined records (pre-seeded from the config) + the shards
    /// condemned wholesale. BTreeSets so reports come out sorted.
    quarantine: Mutex<(BTreeSet<RecordId>, BTreeSet<usize>)>,
    /// Cache of the last epoch permutation computed.
    perm: Mutex<Option<(usize, Arc<Vec<usize>>)>>,
    telemetry: Option<Arc<Telemetry>>,
}

impl PlaneCore {
    fn counter(&self, name: &'static str, by: u64) {
        if let Some(tel) = &self.telemetry {
            tel.metrics.counter(name).inc(by);
        }
    }

    fn epoch_perm(&self, epoch: usize) -> Arc<Vec<usize>> {
        let mut cache = self.perm.lock().unwrap();
        if let Some((e, p)) = cache.as_ref() {
            if *e == epoch {
                return Arc::clone(p);
            }
        }
        let n = self.meta.total_records();
        let salt = (epoch as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TensorRng::seed_from(self.cfg.seed ^ salt);
        let p = Arc::new(rng.permutation(n));
        *cache = Some((epoch, Arc::clone(&p)));
        p
    }

    fn is_quarantined(&self, id: RecordId) -> bool {
        let q = self.quarantine.lock().unwrap();
        q.0.contains(&id)
    }

    /// Condemn a record — or, for shard-fatal failures, its whole shard
    /// (every read of it fails identically, so quarantining all its
    /// records keeps the set independent of discovery order).
    fn quarantine(&self, id: RecordId, why: &ReadFailure) {
        let mut q = self.quarantine.lock().unwrap();
        let shard_fatal = matches!(why, ReadFailure::Structural(e) if e.shard_fatal());
        if shard_fatal {
            if q.1.insert(id.shard) {
                self.counter("data.quarantine.shards", 1);
            }
            for record in 0..self.meta.records_per_shard {
                if q.0.insert(RecordId { shard: id.shard, record }) {
                    self.counter("data.quarantine.records", 1);
                }
            }
        } else if q.0.insert(id) {
            self.counter("data.quarantine.records", 1);
        }
    }

    /// One read through the pool, hedged when the EWMA timeout trips.
    fn pool_read(&self, id: RecordId) -> (Result<RawRecord, ReadError>, Duration) {
        let d = &self.cfg.defense;
        let (reply_tx, reply_rx) = bounded(2);
        self.pool.submit(ReadJob { id, attempt: 1, reply: reply_tx.clone() });
        if !d.hedge {
            drop(reply_tx);
            let (_, res, lat) = reply_rx.recv().expect("pool worker replies");
            return (res, lat);
        }
        match reply_rx.recv_timeout(self.clock.timeout(d)) {
            Ok((_, res, lat)) => {
                drop(reply_tx);
                (res, lat)
            }
            Err(RecvTimeoutError::Timeout) => {
                self.stats.hedges.fetch_add(1, Ordering::Relaxed);
                self.counter("data.hedges", 1);
                self.pool.submit(ReadJob { id, attempt: 2, reply: reply_tx });
                let (attempt, res, lat) =
                    reply_rx.recv().expect("one of the two reads completes");
                if attempt == 2 {
                    self.stats.hedge_wins.fetch_add(1, Ordering::Relaxed);
                    self.counter("data.hedge_wins", 1);
                }
                (res, lat)
            }
            Err(RecvTimeoutError::Disconnected) => {
                unreachable!("reply sender held until a verdict arrives")
            }
        }
    }

    /// CRC-verified read with retry/backoff; `Err` is a quarantine
    /// verdict, never silently-consumed corruption (unless verification
    /// is explicitly disabled).
    fn defended_read(&self, id: RecordId) -> Result<RawRecord, ReadFailure> {
        let d = self.cfg.defense;
        let mut attempt = 0u32;
        loop {
            let (res, latency) = self.pool_read(id);
            match res {
                Err(e) => return Err(ReadFailure::Structural(e)),
                Ok(raw) => {
                    self.clock.observe(latency);
                    if !d.verify_crc || raw.intact() {
                        return Ok(raw);
                    }
                    if attempt >= d.max_retries {
                        return Err(ReadFailure::Corrupt);
                    }
                    self.stats.retries.fetch_add(1, Ordering::Relaxed);
                    self.counter("data.retries", 1);
                    std::thread::sleep(d.retry_backoff * 2u32.pow(attempt.min(16)));
                    attempt += 1;
                }
            }
        }
    }

    /// Assemble `(step, rank, world)`'s batch. Pure in the deterministic
    /// sense: content depends only on the arguments, the seed and the
    /// (timing-independent) quarantine set.
    fn fetch_batch(&self, step: usize, rank: usize, world: usize) -> Result<Batch, IngestError> {
        assert!(world > 0 && rank < world, "rank {rank} outside world {world}");
        let b = self.cfg.global_batch;
        let n = self.meta.total_records();
        let batches_per_epoch = n / b;
        let perm = self.epoch_perm(step / batches_per_epoch);
        let base = (step % batches_per_epoch) * b;
        let lo = base + rank * b / world;
        let hi = base + (rank + 1) * b / world;
        let mut rows: Vec<RawRecord> = Vec::with_capacity(hi - lo);
        let mut dropped = 0usize;
        for slot in lo..hi {
            let id = self.meta.locate(perm[slot]);
            if self.is_quarantined(id) {
                dropped += 1;
                continue;
            }
            match self.defended_read(id) {
                Ok(raw) => rows.push(raw),
                Err(why) => {
                    self.quarantine(id, &why);
                    dropped += 1;
                }
            }
        }
        self.stats.dropped_rows.fetch_add(dropped as u64, Ordering::Relaxed);
        if dropped > 0 {
            self.counter("data.dropped_rows", dropped as u64);
        }
        if rows.is_empty() {
            return Err(IngestError::EmptyBatch { step, rank, world });
        }
        let pix = self.meta.record_len;
        let mut images = Tensor::zeros(&[rows.len(), pix]);
        let mut labels = Vec::with_capacity(rows.len());
        for (i, raw) in rows.iter().enumerate() {
            images.data_mut()[i * pix..(i + 1) * pix].copy_from_slice(&raw.features);
            labels.push(raw.label as usize);
        }
        self.stats.records_read.fetch_add(rows.len() as u64, Ordering::Relaxed);
        self.stats.bytes_read.fetch_add((rows.len() * pix * 4) as u64, Ordering::Relaxed);
        self.counter("data.records", rows.len() as u64);
        Ok(Batch { step, images, labels, dropped })
    }
}

/// One rank's double-buffered prefetcher over an [`IngestPlane`].
///
/// A background thread assembles batches for consecutive steps into a
/// bounded channel. Dropping the loader disconnects the channel and
/// joins the thread — no detached workers.
pub struct StreamingLoader {
    rx: Receiver<(usize, Result<Batch, IngestError>)>,
    worker: Option<JoinHandle<()>>,
    core: Arc<PlaneCore>,
    next_step: usize,
    world: usize,
}

impl StreamingLoader {
    fn spawn(core: Arc<PlaneCore>, rank: usize, world: usize, start_step: usize) -> Self {
        let (tx, rx) = bounded(core.cfg.prefetch_depth.max(1));
        let fetch_core = Arc::clone(&core);
        let worker = std::thread::spawn(move || {
            let mut step = start_step;
            loop {
                let batch = fetch_core.fetch_batch(step, rank, world);
                if tx.send((step, batch)).is_err() {
                    return; // consumer resynced or the plane is gone
                }
                step += 1;
            }
        });
        Self { rx, worker: Some(worker), core, next_step: start_step, world }
    }

    /// Consume the next prefetched batch, recording wait time, queue
    /// depth and stalls.
    pub fn next_batch(&mut self) -> Result<Batch, IngestError> {
        let depth = self.rx.len() as i64;
        self.core.stats.queue_depth_max.fetch_max(depth, Ordering::Relaxed);
        if let Some(tel) = &self.core.telemetry {
            tel.metrics.gauge("data.queue_depth").set(depth);
        }
        if depth == 0 {
            self.core.stats.prefetch_stalls.fetch_add(1, Ordering::Relaxed);
            self.core.counter("data.prefetch.stalls", 1);
        }
        let wait = Stopwatch::start();
        let (step, batch) = self.rx.recv().expect("prefetch worker outlives the loader");
        let wait_ns = wait.elapsed_ns();
        IngestStats::max_u64(&self.core.stats.wait_ns_max, wait_ns);
        if let Some(tel) = &self.core.telemetry {
            tel.metrics.histogram("data.wait.ns").record(wait_ns);
            tel.metrics.counter("data.batches").inc(1);
        }
        debug_assert_eq!(step, self.next_step);
        self.next_step = step + 1;
        batch
    }
}

impl Drop for StreamingLoader {
    fn drop(&mut self) {
        // disconnect so a worker blocked on the full channel unblocks,
        // then join — same discipline as DataLoader
        while self.rx.try_recv().is_ok() {}
        drop(std::mem::replace(&mut self.rx, bounded(1).1));
        if let Some(w) = self.worker.take() {
            let _ = w.join();
        }
    }
}

/// The streaming ingest plane: a [`ShardStore`] behind per-rank
/// prefetchers, CRC verification, retry/hedge defenses and a
/// quarantine-and-skip degradation policy.
pub struct IngestPlane {
    core: Arc<PlaneCore>,
    cursors: Mutex<HashMap<usize, StreamingLoader>>,
}

impl IngestPlane {
    /// Build a plane over `store`. `cfg.global_batch` must fit the
    /// corpus (at least one batch per epoch).
    pub fn new(store: Arc<dyn ShardStore>, cfg: StreamConfig) -> Self {
        Self::build(store, cfg, None)
    }

    /// [`IngestPlane::new`] with `data.*` telemetry recorded into `tel`.
    pub fn with_telemetry(store: Arc<dyn ShardStore>, cfg: StreamConfig, tel: Arc<Telemetry>) -> Self {
        Self::build(store, cfg, Some(tel))
    }

    fn build(store: Arc<dyn ShardStore>, cfg: StreamConfig, telemetry: Option<Arc<Telemetry>>) -> Self {
        let meta = store.meta();
        assert!(cfg.global_batch > 0, "global batch must be positive");
        assert!(
            cfg.global_batch <= meta.total_records(),
            "global batch {} exceeds corpus of {} records",
            cfg.global_batch,
            meta.total_records()
        );
        let pool = ReadPool::new(store, cfg.defense.pool_workers);
        let quarantine = Mutex::new((cfg.quarantine.clone(), BTreeSet::new()));
        let core = Arc::new(PlaneCore {
            meta,
            pool,
            clock: ReadClock::new(),
            stats: IngestStats::default(),
            quarantine,
            perm: Mutex::new(None),
            telemetry,
            cfg,
        });
        Self { core, cursors: Mutex::new(HashMap::new()) }
    }

    /// Corpus geometry.
    pub fn meta(&self) -> StoreMeta {
        self.core.meta
    }

    /// Assemble `(step, rank, world)`'s batch directly, bypassing
    /// prefetch — the random-access path (restart, rollback, reshard
    /// reference runs). Deterministic for fixed arguments + quarantine.
    pub fn fetch_batch(&self, step: usize, rank: usize, world: usize) -> Result<Batch, IngestError> {
        self.core.fetch_batch(step, rank, world)
    }

    /// The prefetched path: returns the same batch `fetch_batch` would,
    /// served from rank-local double buffering. A discontiguous request
    /// (restart, rollback, world change) transparently resyncs the
    /// rank's prefetcher.
    pub fn next_batch(&self, step: usize, rank: usize, world: usize) -> Result<Batch, IngestError> {
        let cursor = self.cursors.lock().unwrap().remove(&rank);
        let mut cursor = match cursor {
            Some(c) if c.next_step == step && c.world == world => c,
            _ => StreamingLoader::spawn(Arc::clone(&self.core), rank, world, step),
        };
        let out = cursor.next_batch();
        self.cursors.lock().unwrap().insert(rank, cursor);
        out
    }

    /// Open a standalone prefetching loader (outside the per-rank cursor
    /// cache) — the direct-iteration API.
    pub fn loader(&self, rank: usize, world: usize, start_step: usize) -> StreamingLoader {
        StreamingLoader::spawn(Arc::clone(&self.core), rank, world, start_step)
    }

    /// Snapshot the plane's accounting.
    pub fn report(&self) -> DataReport {
        let s = &self.core.stats;
        let q = self.core.quarantine.lock().unwrap();
        DataReport {
            records_read: s.records_read.load(Ordering::Relaxed),
            bytes_read: s.bytes_read.load(Ordering::Relaxed),
            retries: s.retries.load(Ordering::Relaxed),
            hedges: s.hedges.load(Ordering::Relaxed),
            hedge_wins: s.hedge_wins.load(Ordering::Relaxed),
            quarantined: q.0.iter().copied().collect(),
            quarantined_shards: q.1.iter().copied().collect(),
            dropped_rows: s.dropped_rows.load(Ordering::Relaxed),
            prefetch_stalls: s.prefetch_stalls.load(Ordering::Relaxed),
            wait_ns_max: s.wait_ns_max.load(Ordering::Relaxed),
            queue_depth_max: s.queue_depth_max.load(Ordering::Relaxed),
        }
    }
}

impl Drop for IngestPlane {
    fn drop(&mut self) {
        // cursors join their prefetch threads; pool workers join when the
        // last PlaneCore reference (held by those threads) dies
        self.cursors.lock().unwrap().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::DatasetKind;
    use crate::store::SimShardStore;
    use geofm_resilience::FaultPlan;

    const SHARDS: usize = 3;
    const PER_SHARD: usize = 8;

    fn plane_with(plan: FaultPlan, cfg: StreamConfig) -> IngestPlane {
        let store = Arc::new(SimShardStore::generate(
            DatasetKind::Ucm,
            SHARDS,
            PER_SHARD,
            4,
            1,
            7,
            Arc::new(plan),
        ));
        IngestPlane::new(store, cfg)
    }

    fn collect(plane: &IngestPlane, steps: usize, world: usize) -> Vec<Vec<Batch>> {
        (0..world)
            .map(|rank| {
                (0..steps).map(|s| plane.next_batch(s, rank, world).unwrap()).collect()
            })
            .collect()
    }

    #[test]
    fn prefetched_and_random_access_paths_agree() {
        let a = plane_with(FaultPlan::none(), StreamConfig::new(8, 5));
        let b = plane_with(FaultPlan::none(), StreamConfig::new(8, 5));
        for step in 0..6 {
            for rank in 0..2 {
                let direct = a.fetch_batch(step, rank, 2).unwrap();
                let streamed = b.next_batch(step, rank, 2).unwrap();
                assert_eq!(direct, streamed, "step {step} rank {rank}");
            }
        }
    }

    #[test]
    fn epoch_covers_every_record_once() {
        let plane = plane_with(FaultPlan::none(), StreamConfig::new(8, 3));
        // 24 records, batch 8 → 3 steps per epoch
        let mut labels = Vec::new();
        for step in 0..3 {
            for rank in 0..2 {
                labels.extend(plane.next_batch(step, rank, 2).unwrap().labels);
            }
        }
        assert_eq!(labels.len(), 24);
        // next epoch reshuffles: same multiset, different order
        let mut epoch2 = Vec::new();
        for step in 3..6 {
            for rank in 0..2 {
                epoch2.extend(plane.next_batch(step, rank, 2).unwrap().labels);
            }
        }
        let mut a = labels.clone();
        let mut b = epoch2.clone();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b, "epochs cover the same records");
        assert_ne!(labels, epoch2, "epochs are reshuffled");
    }

    #[test]
    fn resync_after_discontiguous_step_matches_random_access() {
        let plane = plane_with(FaultPlan::none(), StreamConfig::new(8, 9));
        let _ = plane.next_batch(0, 0, 2).unwrap();
        let _ = plane.next_batch(1, 0, 2).unwrap();
        // rollback to step 0, as a guard recovery would
        let replay = plane.next_batch(0, 0, 2).unwrap();
        assert_eq!(replay, plane.fetch_batch(0, 0, 2).unwrap());
        // world change, as an elastic reshard would
        let shrunk = plane.next_batch(2, 0, 1).unwrap();
        assert_eq!(shrunk, plane.fetch_batch(2, 0, 1).unwrap());
    }

    #[test]
    fn corrupt_record_is_quarantined_not_consumed() {
        let store_plan = FaultPlan::none().with_corrupt_record(1, 3);
        let plane = plane_with(store_plan, StreamConfig::new(8, 3));
        let mut total_rows = 0;
        let mut total_dropped = 0;
        for step in 0..6 {
            let b = plane.next_batch(step, 0, 1).unwrap();
            total_rows += b.labels.len();
            total_dropped += b.dropped;
        }
        let report = plane.report();
        assert_eq!(report.quarantined, vec![RecordId { shard: 1, record: 3 }]);
        assert!(report.retries >= 2, "persistent rot must exhaust retries");
        // 2 epochs × 24 slots, the rotten record dropped each epoch
        assert_eq!(total_dropped, 2);
        assert_eq!(total_rows, 46);
        assert_eq!(report.dropped_rows, 2);
    }

    #[test]
    fn faulted_run_matches_clean_run_with_quarantine_upfront() {
        let faulted = plane_with(
            FaultPlan::none()
                .with_corrupt_record(1, 3)
                .with_missing_shard(2)
                .with_flaky_read(0, 2),
            StreamConfig::new(8, 11),
        );
        let faulted_batches = collect(&faulted, 6, 2);
        let report = faulted.report();
        assert!(report.quarantined.len() == 1 + PER_SHARD);
        assert_eq!(report.quarantined_shards, vec![2]);

        let mut cfg = StreamConfig::new(8, 11);
        cfg.quarantine = report.quarantined.iter().copied().collect();
        let clean = plane_with(FaultPlan::none(), cfg);
        let clean_batches = collect(&clean, 6, 2);
        assert_eq!(faulted_batches, clean_batches, "degradation contract violated");
        // and the clean comparator saw zero defense activity
        let clean_report = clean.report();
        assert_eq!(clean_report.retries, 0);
        assert_eq!(clean_report.quarantined, report.quarantined);
    }

    #[test]
    fn flaky_read_heals_without_quarantine() {
        let plane = plane_with(
            FaultPlan::none().with_flaky_read(0, 1),
            StreamConfig::new(8, 3),
        );
        for step in 0..3 {
            plane.next_batch(step, 0, 1).unwrap();
        }
        let report = plane.report();
        assert!(report.quarantined.is_empty(), "transient flake must not quarantine");
        assert!(report.retries >= 1, "the flake must have cost a retry");
        assert_eq!(report.dropped_rows, 0);
    }

    #[test]
    fn stalled_read_is_hedged_past() {
        let mut cfg = StreamConfig::new(8, 3);
        cfg.defense.timeout_floor = Duration::from_millis(10);
        let plane = plane_with(
            FaultPlan::none().with_stalled_read(0, 4, Duration::from_millis(150)),
            cfg,
        );
        let t0 = Instant::now();
        for step in 0..3 {
            plane.next_batch(step, 0, 1).unwrap();
        }
        let elapsed = t0.elapsed();
        let report = plane.report();
        assert!(report.hedges >= 1, "stall must trigger a hedge");
        assert!(report.hedge_wins >= 1, "hedged read must beat the straggler");
        assert!(
            elapsed < Duration::from_millis(150),
            "hedge must not wait out the stall ({elapsed:?})"
        );
    }

    #[test]
    fn undefended_plane_consumes_rot_silently() {
        let mut cfg = StreamConfig::new(8, 3);
        cfg.defense = DefenseConfig::off();
        let dirty = plane_with(FaultPlan::none().with_corrupt_record(0, 0), cfg.clone());
        let clean = plane_with(FaultPlan::none(), cfg);
        let a = collect(&dirty, 3, 1);
        let b = collect(&clean, 3, 1);
        assert_ne!(a, b, "defenses off: rot must flow through (negative control)");
        assert!(dirty.report().quarantined.is_empty());
    }

    #[test]
    fn empty_batch_is_a_structured_error() {
        // quarantine everything up front: first fetch must error, not hang
        let mut cfg = StreamConfig::new(8, 3);
        cfg.quarantine = (0..SHARDS)
            .flat_map(|s| (0..PER_SHARD).map(move |r| RecordId { shard: s, record: r }))
            .collect();
        let plane = plane_with(FaultPlan::none(), cfg);
        assert_eq!(
            plane.fetch_batch(0, 0, 1),
            Err(IngestError::EmptyBatch { step: 0, rank: 0, world: 1 })
        );
    }

    #[test]
    fn telemetry_records_ingest_vocabulary() {
        let tel = Telemetry::new();
        let store = Arc::new(SimShardStore::generate(
            DatasetKind::Ucm,
            SHARDS,
            PER_SHARD,
            4,
            1,
            7,
            Arc::new(FaultPlan::none().with_corrupt_record(0, 1)),
        ));
        let plane = IngestPlane::with_telemetry(store, StreamConfig::new(8, 3), tel.clone());
        for step in 0..3 {
            let _ = plane.next_batch(step, 0, 1).unwrap();
        }
        drop(plane);
        let snap = tel.metrics.snapshot();
        assert_eq!(snap.counter("data.batches"), 3);
        assert!(snap.counter("data.records") > 0);
        assert!(snap.counter("data.retries") >= 2);
        assert_eq!(snap.counter("data.quarantine.records"), 1);
        assert_eq!(snap.histograms["data.wait.ns"].count, 3);
        assert!(snap.gauges["data.queue_depth"].max >= 0);
    }

    #[test]
    fn report_surfaces_wait_and_queue_watermarks() {
        let plane = plane_with(FaultPlan::none(), StreamConfig::new(8, 3));
        for step in 0..3 {
            let _ = plane.next_batch(step, 0, 1).unwrap();
        }
        let r = plane.report();
        assert!(r.wait_ns_max > 0, "first batch always waits on the prefetcher");
        assert!(r.records_read == 24);
        assert_eq!(r.bytes_read, 24 * 16 * 4);
    }

    #[test]
    fn dropping_plane_mid_stream_joins_all_threads() {
        let plan = FaultPlan::none().with_slow_shard(0, Duration::from_millis(5));
        let store = Arc::new(SimShardStore::generate(
            DatasetKind::Ucm,
            SHARDS,
            PER_SHARD,
            4,
            1,
            7,
            Arc::new(plan),
        ));
        let plane = IngestPlane::new(Arc::clone(&store) as Arc<dyn ShardStore>, StreamConfig::new(8, 3));
        let _ = plane.next_batch(0, 0, 2).unwrap();
        let _ = plane.next_batch(0, 1, 2).unwrap();
        drop(plane);
        // all pool + prefetch threads released their store references
        assert_eq!(Arc::strong_count(&store), 1, "threads must be joined, not detached");
    }
}
