//! The `GEOFMSH1` on-disk shard format and its corpus builder.
//!
//! A pretraining corpus is split into fixed-size shards, each a single
//! file of CRC-checked records. The layout (all integers little-endian):
//!
//! ```text
//! offset 0   magic            b"GEOFMSH1"
//!        8   shard_index      u64
//!       16   n_records        u64
//!       24   record_len       u64   f32 features per record
//!       32   img              u64   image edge length
//!       40   channels         u64
//!       48   classes          u64
//!       56   header_crc       u32   CRC32 over bytes 0..56
//!       60   records          n_records × (label u64 | record_len × f32 | crc u32)
//! ```
//!
//! Each record carries its own CRC32 over its label + payload bytes, so a
//! reader can verify *per record* and quarantine precisely — a flipped bit
//! in record 17 must not cost the other records of the shard. The file
//! size is implied exactly by the header, so truncation and trailing
//! garbage are both detectable before any record is read.
//!
//! [`ShardReader`] holds the file bytes and validates magic, header CRC
//! and exact size at open; [`write_shard`]/[`build_corpus`] produce files
//! the reader round-trips bit-identically.

use crate::datasets::{DatasetKind, SceneDataset};
use geofm_resilience::crc32;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Magic bytes opening every shard file.
pub const SHARD_MAGIC: &[u8; 8] = b"GEOFMSH1";

/// Header length in bytes (magic + six u64 fields + header CRC).
pub const HEADER_LEN: usize = 60;

/// Why a shard file (or one of its records) could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// The file does not start with [`SHARD_MAGIC`].
    BadMagic([u8; 8]),
    /// The file is shorter than a header.
    TooShort(usize),
    /// The header CRC does not match its bytes.
    HeaderCorrupt {
        /// CRC stored in the file.
        stored: u32,
        /// CRC computed over the header bytes.
        actual: u32,
    },
    /// The file size disagrees with the size the header implies —
    /// truncation when smaller, trailing garbage when larger.
    SizeMismatch {
        /// Size the header implies.
        expected: u64,
        /// Actual file size.
        actual: u64,
    },
    /// Record `record`'s CRC does not match its bytes.
    RecordCorrupt {
        /// Index of the corrupt record.
        record: usize,
    },
    /// A record index past `n_records` was requested.
    OutOfRange {
        /// Requested record index.
        record: usize,
        /// Records in the shard.
        n_records: usize,
    },
    /// An OS-level I/O error (carried as text to stay `Eq`).
    Io(String),
}

impl std::fmt::Display for ShardError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadMagic(m) => write!(f, "bad shard magic {m:?}"),
            Self::TooShort(n) => write!(f, "file too short for a shard header ({n} bytes)"),
            Self::HeaderCorrupt { stored, actual } => {
                write!(f, "shard header CRC mismatch (stored {stored:08x}, actual {actual:08x})")
            }
            Self::SizeMismatch { expected, actual } if actual < expected => {
                write!(f, "shard truncated: {actual} bytes of {expected}")
            }
            Self::SizeMismatch { expected, actual } => {
                write!(f, "trailing garbage: {actual} bytes, header implies {expected}")
            }
            Self::RecordCorrupt { record } => write!(f, "record {record} CRC mismatch"),
            Self::OutOfRange { record, n_records } => {
                write!(f, "record {record} out of range (shard holds {n_records})")
            }
            Self::Io(e) => write!(f, "shard io error: {e}"),
        }
    }
}

impl std::error::Error for ShardError {}

impl From<std::io::Error> for ShardError {
    fn from(e: std::io::Error) -> Self {
        Self::Io(e.to_string())
    }
}

/// Parsed shard header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardHeader {
    /// Shard index within the corpus.
    pub shard_index: u64,
    /// Records in this shard.
    pub n_records: u64,
    /// f32 features per record.
    pub record_len: u64,
    /// Image edge length the features were rendered at.
    pub img: u64,
    /// Image channels.
    pub channels: u64,
    /// Class count of the generating dataset.
    pub classes: u64,
}

impl ShardHeader {
    /// Bytes one record occupies on disk: label + payload + CRC.
    pub fn record_bytes(&self) -> u64 {
        8 + 4 * self.record_len + 4
    }

    /// Exact file size this header implies.
    pub fn file_len(&self) -> u64 {
        HEADER_LEN as u64 + self.n_records * self.record_bytes()
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(HEADER_LEN);
        out.extend_from_slice(SHARD_MAGIC);
        for v in [self.shard_index, self.n_records, self.record_len, self.img, self.channels, self.classes] {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }
}

/// One decoded-and-unverified record: the bytes a store handed back plus
/// both CRCs, so the *caller* decides whether a mismatch means retry,
/// hedge or quarantine.
#[derive(Debug, Clone, PartialEq)]
pub struct RawRecord {
    /// Class label.
    pub label: u64,
    /// Feature payload (`record_len` f32s).
    pub features: Vec<f32>,
    /// CRC stored alongside the record.
    pub crc_stored: u32,
    /// CRC computed over the bytes actually read.
    pub crc_actual: u32,
}

impl RawRecord {
    /// Whether the bytes read back verify against the stored checksum.
    pub fn intact(&self) -> bool {
        self.crc_stored == self.crc_actual
    }
}

/// CRC32 over a record's label + payload bytes — the checksum stored per
/// record and recomputed on every read.
pub fn record_crc(label: u64, features: &[f32]) -> u32 {
    let mut crc = geofm_resilience::crc32_update(0xFFFF_FFFF, &label.to_le_bytes());
    for v in features {
        crc = geofm_resilience::crc32_update(crc, &v.to_le_bytes());
    }
    crc ^ 0xFFFF_FFFF
}

/// Write one shard file. Records are `(label, features)` rows; every
/// record must have `record_len` features.
pub fn write_shard(
    path: &Path,
    header: &ShardHeader,
    records: &[(u64, Vec<f32>)],
) -> Result<(), ShardError> {
    assert_eq!(records.len() as u64, header.n_records, "header/record count mismatch");
    let mut bytes = header.encode();
    for (label, features) in records {
        assert_eq!(features.len() as u64, header.record_len, "record length mismatch");
        bytes.extend_from_slice(&label.to_le_bytes());
        for v in features {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        bytes.extend_from_slice(&record_crc(*label, features).to_le_bytes());
    }
    let mut f = std::fs::File::create(path)?;
    f.write_all(&bytes)?;
    f.sync_all()?;
    Ok(())
}

/// An open shard: header-validated bytes, records decoded on demand.
///
/// Opening validates magic, header CRC and exact file size; per-record
/// CRCs are checked by [`ShardReader::read_record`] (and left to the
/// caller by [`ShardReader::read_raw`], which the defended streaming
/// layer uses so it can retry before condemning a record).
#[derive(Debug)]
pub struct ShardReader {
    header: ShardHeader,
    bytes: Vec<u8>,
}

impl ShardReader {
    /// Open and validate a shard file's framing.
    pub fn open(path: &Path) -> Result<Self, ShardError> {
        Self::from_bytes(std::fs::read(path)?)
    }

    /// Validate framing over in-memory bytes.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, ShardError> {
        if bytes.len() < HEADER_LEN {
            return Err(ShardError::TooShort(bytes.len()));
        }
        if &bytes[..8] != SHARD_MAGIC {
            let mut m = [0u8; 8];
            m.copy_from_slice(&bytes[..8]);
            return Err(ShardError::BadMagic(m));
        }
        let stored = u32::from_le_bytes(bytes[56..60].try_into().unwrap());
        let actual = crc32(&bytes[..56]);
        if stored != actual {
            return Err(ShardError::HeaderCorrupt { stored, actual });
        }
        let word = |i: usize| u64::from_le_bytes(bytes[8 + 8 * i..16 + 8 * i].try_into().unwrap());
        let header = ShardHeader {
            shard_index: word(0),
            n_records: word(1),
            record_len: word(2),
            img: word(3),
            channels: word(4),
            classes: word(5),
        };
        let expected = header.file_len();
        if bytes.len() as u64 != expected {
            return Err(ShardError::SizeMismatch { expected, actual: bytes.len() as u64 });
        }
        Ok(Self { header, bytes })
    }

    /// The validated header.
    pub fn header(&self) -> &ShardHeader {
        &self.header
    }

    /// Records in this shard.
    pub fn len(&self) -> usize {
        self.header.n_records as usize
    }

    /// True if the shard holds no records.
    pub fn is_empty(&self) -> bool {
        self.header.n_records == 0
    }

    /// Decode record `record` without judging its checksum.
    pub fn read_raw(&self, record: usize) -> Result<RawRecord, ShardError> {
        let n = self.header.n_records as usize;
        if record >= n {
            return Err(ShardError::OutOfRange { record, n_records: n });
        }
        let rb = self.header.record_bytes() as usize;
        let at = HEADER_LEN + record * rb;
        let bytes = &self.bytes[at..at + rb];
        let label = u64::from_le_bytes(bytes[..8].try_into().unwrap());
        let features: Vec<f32> = bytes[8..rb - 4]
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let crc_stored = u32::from_le_bytes(bytes[rb - 4..].try_into().unwrap());
        let crc_actual = crc32(&bytes[..rb - 4]);
        Ok(RawRecord { label, features, crc_stored, crc_actual })
    }

    /// Decode and *verify* record `record`; a checksum mismatch is
    /// [`ShardError::RecordCorrupt`], never silently returned data.
    pub fn read_record(&self, record: usize) -> Result<RawRecord, ShardError> {
        let raw = self.read_raw(record)?;
        if !raw.intact() {
            return Err(ShardError::RecordCorrupt { record });
        }
        Ok(raw)
    }
}

/// What [`build_corpus`] produced: the shard files plus the geometry a
/// store needs to address them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusManifest {
    /// Shard file paths, by shard index.
    pub shard_files: Vec<PathBuf>,
    /// Dataset the corpus was generated from.
    pub kind: DatasetKind,
    /// Records per shard (every shard is full by construction).
    pub records_per_shard: usize,
    /// f32 features per record.
    pub record_len: usize,
    /// Image edge length.
    pub img: usize,
    /// Channels.
    pub channels: usize,
}

impl CorpusManifest {
    /// Total records across the corpus.
    pub fn total_records(&self) -> usize {
        self.shard_files.len() * self.records_per_shard
    }
}

/// Generate a procedural corpus and persist it as `GEOFMSH1` shards
/// (`shard-NNNN.gsh` under `dir`). Deterministic per `seed`: the same
/// arguments always produce byte-identical files.
pub fn build_corpus(
    dir: &Path,
    kind: DatasetKind,
    shards: usize,
    records_per_shard: usize,
    img: usize,
    channels: usize,
    seed: u64,
) -> Result<CorpusManifest, ShardError> {
    std::fs::create_dir_all(dir)?;
    let n = shards * records_per_shard;
    let ds = SceneDataset::generate(kind, n, img, channels, 3_000_000, seed);
    let record_len = channels * img * img;
    let mut shard_files = Vec::with_capacity(shards);
    for s in 0..shards {
        let header = ShardHeader {
            shard_index: s as u64,
            n_records: records_per_shard as u64,
            record_len: record_len as u64,
            img: img as u64,
            channels: channels as u64,
            classes: kind.classes() as u64,
        };
        let records: Vec<(u64, Vec<f32>)> = (0..records_per_shard)
            .map(|r| {
                let row = s * records_per_shard + r;
                (ds.labels[row] as u64, ds.images.row(row).to_vec())
            })
            .collect();
        let path = dir.join(format!("shard-{s:04}.gsh"));
        write_shard(&path, &header, &records)?;
        shard_files.push(path);
    }
    Ok(CorpusManifest { shard_files, kind, records_per_shard, record_len, img, channels })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("geofm-shard-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn corpus_round_trips_bit_identically() {
        let dir = tmpdir("roundtrip");
        let m = build_corpus(&dir, DatasetKind::Ucm, 3, 8, 4, 1, 7).unwrap();
        assert_eq!(m.shard_files.len(), 3);
        assert_eq!(m.total_records(), 24);
        let ds = SceneDataset::generate(DatasetKind::Ucm, 24, 4, 1, 3_000_000, 7);
        for (s, path) in m.shard_files.iter().enumerate() {
            let reader = ShardReader::open(path).unwrap();
            assert_eq!(reader.len(), 8);
            assert_eq!(reader.header().shard_index, s as u64);
            assert_eq!(reader.header().classes, 21);
            for r in 0..8 {
                let rec = reader.read_record(r).unwrap();
                let row = s * 8 + r;
                assert_eq!(rec.label, ds.labels[row] as u64);
                assert_eq!(rec.features, ds.images.row(row).to_vec());
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn builder_is_deterministic() {
        let d1 = tmpdir("det-a");
        let d2 = tmpdir("det-b");
        let a = build_corpus(&d1, DatasetKind::Aid, 2, 5, 4, 1, 3).unwrap();
        let b = build_corpus(&d2, DatasetKind::Aid, 2, 5, 4, 1, 3).unwrap();
        for (pa, pb) in a.shard_files.iter().zip(&b.shard_files) {
            assert_eq!(std::fs::read(pa).unwrap(), std::fs::read(pb).unwrap());
        }
        std::fs::remove_dir_all(&d1).unwrap();
        std::fs::remove_dir_all(&d2).unwrap();
    }

    #[test]
    fn open_rejects_bad_magic_truncation_and_garbage() {
        let dir = tmpdir("framing");
        let m = build_corpus(&dir, DatasetKind::Ucm, 1, 4, 4, 1, 1).unwrap();
        let path = &m.shard_files[0];
        let pristine = std::fs::read(path).unwrap();

        let mut bad = pristine.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            ShardReader::from_bytes(bad),
            Err(ShardError::BadMagic(_))
        ));

        let cut = pristine[..pristine.len() - 3].to_vec();
        assert!(matches!(
            ShardReader::from_bytes(cut),
            Err(ShardError::SizeMismatch { .. })
        ));

        let mut grown = pristine.clone();
        grown.extend_from_slice(b"junk");
        assert!(matches!(
            ShardReader::from_bytes(grown),
            Err(ShardError::SizeMismatch { .. })
        ));

        let mut hdr = pristine.clone();
        hdr[20] ^= 0x01; // n_records field — header CRC must catch it
        assert!(matches!(
            ShardReader::from_bytes(hdr),
            Err(ShardError::HeaderCorrupt { .. })
        ));

        assert!(matches!(
            ShardReader::from_bytes(pristine[..10].to_vec()),
            Err(ShardError::TooShort(10))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_bit_flip_is_caught_and_isolated() {
        let dir = tmpdir("flip");
        let m = build_corpus(&dir, DatasetKind::Ucm, 1, 4, 4, 1, 2).unwrap();
        let mut bytes = std::fs::read(&m.shard_files[0]).unwrap();
        let rb = 8 + 4 * 16 + 4;
        // flip a payload bit of record 2
        bytes[HEADER_LEN + 2 * rb + 13] ^= 0x10;
        let reader = ShardReader::from_bytes(bytes).unwrap();
        assert_eq!(reader.read_record(2), Err(ShardError::RecordCorrupt { record: 2 }));
        let raw = reader.read_raw(2).unwrap();
        assert!(!raw.intact(), "read_raw must expose the mismatch");
        for r in [0usize, 1, 3] {
            assert!(reader.read_record(r).is_ok(), "record {r} must be unaffected");
        }
        assert!(matches!(
            reader.read_record(4),
            Err(ShardError::OutOfRange { record: 4, n_records: 4 })
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn record_crc_matches_byte_stream_crc() {
        let label = 7u64;
        let features = vec![1.5f32, -2.25, 0.0];
        let mut bytes = label.to_le_bytes().to_vec();
        for v in &features {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        assert_eq!(record_crc(label, &features), crc32(&bytes));
    }
}
