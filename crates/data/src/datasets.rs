//! The four benchmark datasets of the paper (Table II), as synthetic
//! analogues with the same class counts and split protocol.

use crate::scene::SceneRenderer;
use geofm_tensor::{Tensor, TensorRng};

/// The datasets used in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DatasetKind {
    /// MillionAID: 51 classes; 990 848 pretraining images; probe split
    /// 1000 train / 9000 test.
    MillionAid,
    /// UC Merced Land Use: 21 classes; 1050/1050 at TR=50 %.
    Ucm,
    /// AID: 30 classes; 2000/8000 at TR=20 %.
    Aid,
    /// NWPU-RESISC45: 45 classes; 3150/28350 at TR=10 %.
    Nwpu,
}

/// Train/test sample counts for a probe split.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitSizes {
    /// Training samples.
    pub train: usize,
    /// Testing samples.
    pub test: usize,
}

impl DatasetKind {
    /// All four datasets in paper order.
    pub fn all() -> [DatasetKind; 4] {
        [Self::MillionAid, Self::Ucm, Self::Aid, Self::Nwpu]
    }

    /// Paper display name.
    pub fn name(&self) -> &'static str {
        match self {
            Self::MillionAid => "MillionAID",
            Self::Ucm => "UCM",
            Self::Aid => "AID",
            Self::Nwpu => "NWPU",
        }
    }

    /// Number of scene classes (Table II).
    pub fn classes(&self) -> usize {
        match self {
            Self::MillionAid => 51,
            Self::Ucm => 21,
            Self::Aid => 30,
            Self::Nwpu => 45,
        }
    }

    /// The paper's probe split sizes (Table II).
    pub fn paper_split(&self) -> SplitSizes {
        match self {
            Self::MillionAid => SplitSizes { train: 1000, test: 9000 },
            Self::Ucm => SplitSizes { train: 1050, test: 1050 },
            Self::Aid => SplitSizes { train: 2000, test: 8000 },
            Self::Nwpu => SplitSizes { train: 3150, test: 28350 },
        }
    }

    /// The paper's pretraining corpus size (MillionAID only).
    pub fn paper_pretrain_size(&self) -> Option<usize> {
        match self {
            Self::MillionAid => Some(990_848),
            _ => None,
        }
    }

    /// Training ratio TR used in Table III.
    pub fn train_ratio(&self) -> f32 {
        let s = self.paper_split();
        s.train as f32 / (s.train + s.test) as f32
    }

    /// Deterministic generator salt (one generative "sensor/geography" per
    /// dataset).
    pub fn salt(&self) -> u64 {
        match self {
            Self::MillionAid => 0x4D41_4944, // "MAID"
            Self::Ucm => 0x0055_434D,
            Self::Aid => 0x0041_4944,
            Self::Nwpu => 0x4E57_5055,
        }
    }
}

/// An in-memory labelled scene dataset.
#[derive(Debug, Clone)]
pub struct SceneDataset {
    /// Which benchmark this models.
    pub kind: DatasetKind,
    /// `[n, channels·img·img]` images.
    pub images: Tensor,
    /// Class labels, `0..kind.classes()`.
    pub labels: Vec<usize>,
    /// Image edge length.
    pub img: usize,
    /// Channels.
    pub channels: usize,
}

impl SceneDataset {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Generate a dataset with `n` samples distributed round-robin across
    /// classes, shuffled deterministically by `seed`. `sample_offset`
    /// separates disjoint splits (train vs test vs pretrain).
    pub fn generate(
        kind: DatasetKind,
        n: usize,
        img: usize,
        channels: usize,
        sample_offset: u64,
        seed: u64,
    ) -> Self {
        let classes = kind.classes();
        let renderer = SceneRenderer::new(img, channels, kind.salt());
        let per_class = n / classes;
        let extra = n % classes;
        let pix = channels * img * img;
        let mut images = Tensor::zeros(&[n, pix]);
        let mut labels = Vec::with_capacity(n);
        let mut row = 0usize;
        for c in 0..classes {
            let count = per_class + usize::from(c < extra);
            if count == 0 {
                continue;
            }
            let rendered = renderer.render_class(c, count, sample_offset);
            images.data_mut()[row * pix..(row + count) * pix].copy_from_slice(rendered.data());
            labels.extend(std::iter::repeat_n(c, count));
            row += count;
        }
        // deterministic shuffle so batches are class-mixed
        let mut rng = TensorRng::seed_from(seed ^ kind.salt());
        let perm = rng.permutation(n);
        let shuffled_images = images.gather_rows(&perm);
        let shuffled_labels: Vec<usize> = perm.iter().map(|&i| labels[i]).collect();
        Self { kind, images: shuffled_images, labels: shuffled_labels, img, channels }
    }

    /// Generate a probe train/test pair with the paper's class-balanced
    /// protocol, scaled by `scale` (1.0 = the paper's exact Table II sizes).
    /// Train and test samples are disjoint by construction.
    pub fn probe_split(
        kind: DatasetKind,
        scale: f64,
        img: usize,
        channels: usize,
    ) -> (SceneDataset, SceneDataset) {
        let split = kind.paper_split();
        let train_n = ((split.train as f64 * scale).round() as usize).max(kind.classes());
        let test_n = ((split.test as f64 * scale).round() as usize).max(kind.classes());
        let train = Self::generate(kind, train_n, img, channels, 0, 11);
        // offset past any train index so the sample streams are disjoint
        let test = Self::generate(kind, test_n, img, channels, 1_000_000, 13);
        (train, test)
    }

    /// Generate a pretraining corpus (unlabelled use; labels still carried).
    pub fn pretrain_corpus(kind: DatasetKind, n: usize, img: usize, channels: usize) -> Self {
        Self::generate(kind, n, img, channels, 2_000_000, 17)
    }

    /// Borrow a batch by indices.
    pub fn batch(&self, idx: &[usize]) -> (Tensor, Vec<usize>) {
        let images = self.images.gather_rows(idx);
        let labels = idx.iter().map(|&i| self.labels[i]).collect();
        (images, labels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_constants() {
        assert_eq!(DatasetKind::MillionAid.classes(), 51);
        assert_eq!(DatasetKind::Ucm.classes(), 21);
        assert_eq!(DatasetKind::Aid.classes(), 30);
        assert_eq!(DatasetKind::Nwpu.classes(), 45);
        assert_eq!(DatasetKind::MillionAid.paper_split(), SplitSizes { train: 1000, test: 9000 });
        assert_eq!(DatasetKind::Ucm.paper_split(), SplitSizes { train: 1050, test: 1050 });
        assert_eq!(DatasetKind::Aid.paper_split(), SplitSizes { train: 2000, test: 8000 });
        assert_eq!(DatasetKind::Nwpu.paper_split(), SplitSizes { train: 3150, test: 28350 });
        assert_eq!(DatasetKind::MillionAid.paper_pretrain_size(), Some(990_848));
    }

    #[test]
    fn train_ratios_match_paper() {
        assert!((DatasetKind::Ucm.train_ratio() - 0.50).abs() < 1e-6);
        assert!((DatasetKind::Aid.train_ratio() - 0.20).abs() < 1e-6);
        assert!((DatasetKind::Nwpu.train_ratio() - 0.10).abs() < 1e-6);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = SceneDataset::generate(DatasetKind::Ucm, 42, 16, 3, 0, 5);
        let b = SceneDataset::generate(DatasetKind::Ucm, 42, 16, 3, 0, 5);
        assert_eq!(a.images, b.images);
        assert_eq!(a.labels, b.labels);
    }

    #[test]
    fn labels_cover_all_classes_when_big_enough() {
        let d = SceneDataset::generate(DatasetKind::Ucm, 63, 16, 3, 0, 5);
        let mut seen = [false; 21];
        for &l in &d.labels {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s), "all 21 classes present");
        // balanced: 63 = 3 per class
        for c in 0..21 {
            assert_eq!(d.labels.iter().filter(|&&l| l == c).count(), 3);
        }
    }

    #[test]
    fn probe_split_train_test_disjoint() {
        let (train, test) = SceneDataset::probe_split(DatasetKind::Ucm, 0.05, 16, 3);
        assert!(!train.is_empty() && !test.is_empty());
        // no identical images between splits (generated from disjoint seeds)
        for i in 0..train.len().min(10) {
            for j in 0..test.len().min(10) {
                let a = train.images.row(i);
                let b = test.images.row(j);
                let same = a.iter().zip(b).all(|(x, y)| (x - y).abs() < 1e-9);
                assert!(!same, "train[{}] == test[{}]", i, j);
            }
        }
    }

    #[test]
    fn batch_gathers_right_rows() {
        let d = SceneDataset::generate(DatasetKind::Aid, 30, 8, 1, 0, 3);
        let (imgs, labels) = d.batch(&[4, 7]);
        assert_eq!(imgs.shape(), &[2, 64]);
        assert_eq!(labels, vec![d.labels[4], d.labels[7]]);
        assert_eq!(imgs.row(0), d.images.row(4));
    }

    #[test]
    fn different_datasets_have_different_images() {
        let a = SceneDataset::generate(DatasetKind::Ucm, 10, 16, 3, 0, 5);
        let b = SceneDataset::generate(DatasetKind::Aid, 10, 16, 3, 0, 5);
        assert!(a.images.max_abs_diff(&b.images) > 1e-3);
    }

    /// A simple nearest-class-mean classifier on raw pixels should beat
    /// chance (classes are real) but stay far from perfect (nuisances are
    /// strong) — the regime where representation quality matters.
    #[test]
    fn raw_pixel_classification_is_hard_but_not_impossible() {
        let kind = DatasetKind::Ucm;
        let train = SceneDataset::generate(kind, 210, 16, 3, 0, 5);
        let test = SceneDataset::generate(kind, 105, 16, 3, 500_000, 7);
        let classes = kind.classes();
        let pix = 3 * 16 * 16;
        // class means
        let mut means = vec![vec![0.0f32; pix]; classes];
        let mut counts = vec![0usize; classes];
        for i in 0..train.len() {
            let c = train.labels[i];
            counts[c] += 1;
            for (m, &v) in means[c].iter_mut().zip(train.images.row(i)) {
                *m += v;
            }
        }
        for (m, &c) in means.iter_mut().zip(&counts) {
            for v in m.iter_mut() {
                *v /= c.max(1) as f32;
            }
        }
        let mut correct = 0usize;
        for i in 0..test.len() {
            let row = test.images.row(i);
            let mut best = (f32::INFINITY, 0usize);
            for (c, m) in means.iter().enumerate() {
                let d: f32 = row.iter().zip(m).map(|(a, b)| (a - b) * (a - b)).sum();
                if d < best.0 {
                    best = (d, c);
                }
            }
            if best.1 == test.labels[i] {
                correct += 1;
            }
        }
        let acc = correct as f32 / test.len() as f32;
        let chance = 1.0 / classes as f32;
        assert!(acc > 2.0 * chance, "above chance: acc {} vs chance {}", acc, chance);
        assert!(acc < 0.9, "not trivially easy: acc {}", acc);
    }
}
