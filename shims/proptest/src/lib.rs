//! Offline shim for [proptest](https://crates.io/crates/proptest).
//!
//! Implements the subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]` and `pat in strategy`
//! arguments), range / tuple / [`Just`] / [`prop_oneof!`] /
//! [`collection::vec`] strategies, `prop_map`, and the `prop_assert*`
//! macros.
//!
//! Unlike the real crate there is **no shrinking** and no persisted failure
//! seeds: each test runs `cases` deterministic samples derived from the
//! test's module path, so failures reproduce exactly across runs and
//! machines. That trades minimal-counterexample reporting for zero
//! dependencies, which is the right trade in this offline environment.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner plumbing used by the generated tests.
pub mod test_runner {
    use super::*;

    /// Deterministic per-(test, case) random source.
    pub struct TestRng(pub(crate) StdRng);

    impl TestRng {
        /// Derive the RNG for one case of one named test.
        pub fn deterministic(test_name: &str, case: u32) -> Self {
            use std::hash::{Hash, Hasher};
            let mut h = std::collections::hash_map::DefaultHasher::new();
            test_name.hash(&mut h);
            case.hash(&mut h);
            Self(StdRng::seed_from_u64(h.finish()))
        }

        /// Raw 64-bit draw.
        pub fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

use test_runner::TestRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each test runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` samples per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of test inputs.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values (mirrors proptest's `prop_map`).
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Uniform choice among boxed strategies (backs [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<Box<dyn Strategy<Value = T>>>,
}

impl<T> Union<T> {
    /// Build from the macro's collected arms.
    pub fn new(arms: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let i = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[i].sample(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.0.gen_range(self.clone())
            }
        }
    )*};
}

impl_int_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let u: f64 = rng.0.gen::<f64>();
                let (lo, hi) = (self.start as f64, self.end as f64);
                (lo + u * (hi - lo)) as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $i:tt),+ );)*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
}

/// Collection strategies, mirroring `proptest::collection`.
pub mod collection {
    use super::{Strategy, TestRng};

    /// Element count for [`vec`]: fixed or ranged.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self { lo: n, hi: n + 1 }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self { lo: r.start, hi: r.end }
        }
    }

    /// Strategy for `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a fixed or ranged length (mirrors
    /// `proptest::collection::vec`).
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi - self.size.lo) as u64;
            let n = self.size.lo + (rng.next_u64() % span) as usize;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Assert inside a proptest case (no shrinking, so a plain `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assert inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Uniform choice among strategies yielding one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$(Box::new($arm) as Box<dyn $crate::Strategy<Value = _>>),+])
    };
}

/// The proptest entry macro: wraps each `fn name(pat in strategy, ...)`
/// into a `#[test]` running `cases` deterministic samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!{ (<$crate::ProptestConfig as Default>::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident( $($p:pat in $s:expr),* $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            for __case in 0..__cfg.cases {
                let mut __rng = $crate::test_runner::TestRng::deterministic(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(let $p = $crate::Strategy::sample(&($s), &mut __rng);)*
                $body
            }
        }
        $crate::__proptest_tests!{ ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn evens() -> impl Strategy<Value = usize> {
        (0usize..50).prop_map(|v| v * 2)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(v in 3usize..17, f in -2.0f32..2.0) {
            prop_assert!((3..17).contains(&v));
            prop_assert!((-2.0..2.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps((a, b) in (0u64..10, 0u64..10), e in evens()) {
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(e % 2, 0);
        }

        #[test]
        fn oneof_picks_only_arms(v in prop_oneof![Just(1usize), Just(4usize), Just(9usize)]) {
            prop_assert!(matches!(v, 1usize | 4 | 9));
        }

        #[test]
        fn vec_lengths_in_range(v in crate::collection::vec(0u32..5, 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 5));
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = crate::test_runner::TestRng::deterministic("t", 3);
        let mut b = crate::test_runner::TestRng::deterministic("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::test_runner::TestRng::deterministic("t", 4);
        assert_ne!(a.next_u64(), c.next_u64());
    }
}
