//! Offline shim for [rayon](https://crates.io/crates/rayon).
//!
//! The build environment has no crates-io access, and the target machine
//! exposes a single CPU core, so data-parallel execution would win nothing.
//! This shim keeps the `par_*` call sites source-compatible by returning the
//! corresponding **sequential** standard-library iterators: `par_chunks`
//! is `chunks`, `par_iter_mut` is `iter_mut`, and every adaptor that the
//! workspace chains afterwards (`zip`, `enumerate`, `for_each`) is then the
//! plain `Iterator` method.
//!
//! The kernels written against this API therefore express their available
//! parallelism exactly as with the real rayon — swapping the real crate back
//! in requires no source change outside the workspace manifest.

/// Drop-in for `rayon::prelude`.
pub mod prelude {
    /// `par_iter`/`par_chunks` over shared slices.
    pub trait ParallelSlice<T> {
        /// Sequential stand-in for rayon's `par_iter`.
        fn par_iter(&self) -> std::slice::Iter<'_, T>;
        /// Sequential stand-in for rayon's `par_chunks`.
        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T>;
    }

    /// `par_iter_mut`/`par_chunks_mut` over mutable slices.
    pub trait ParallelSliceMut<T> {
        /// Sequential stand-in for rayon's `par_iter_mut`.
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T>;
        /// Sequential stand-in for rayon's `par_chunks_mut`.
        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T>;
    }

    impl<T> ParallelSlice<T> for [T] {
        fn par_iter(&self) -> std::slice::Iter<'_, T> {
            self.iter()
        }

        fn par_chunks(&self, chunk_size: usize) -> std::slice::Chunks<'_, T> {
            self.chunks(chunk_size)
        }
    }

    impl<T> ParallelSliceMut<T> for [T] {
        fn par_iter_mut(&mut self) -> std::slice::IterMut<'_, T> {
            self.iter_mut()
        }

        fn par_chunks_mut(&mut self, chunk_size: usize) -> std::slice::ChunksMut<'_, T> {
            self.chunks_mut(chunk_size)
        }
    }
}

/// Run two closures (sequentially here; in parallel under real rayon).
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_chunks_match_chunks() {
        let v = [1, 2, 3, 4, 5];
        let par: Vec<Vec<i32>> = v.par_chunks(2).map(|c| c.to_vec()).collect();
        assert_eq!(par, vec![vec![1, 2], vec![3, 4], vec![5]]);
    }

    #[test]
    fn par_iter_mut_applies_in_order() {
        let mut v = vec![1, 2, 3];
        v.par_iter_mut().enumerate().for_each(|(i, x)| *x += i as i32);
        assert_eq!(v, vec![1, 3, 5]);
    }

    #[test]
    fn zip_chains_work() {
        let a = [1.0f32, 2.0, 3.0, 4.0];
        let mut b = [0.0f32; 4];
        b.par_chunks_mut(2).zip(a.par_chunks(2)).for_each(|(dst, src)| {
            dst.copy_from_slice(src);
        });
        assert_eq!(a, b);
    }
}
