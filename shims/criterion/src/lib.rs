//! Offline shim for [criterion](https://crates.io/crates/criterion).
//!
//! Provides the macro/builder surface `geofm-bench` uses and measures each
//! benchmark as mean wall-clock time over a warm-up pass plus `sample_size`
//! timed samples, printed one line per benchmark. No statistics, HTML
//! reports, or outlier analysis — on a single shared core those numbers
//! would carry false precision anyway.
//!
//! Supports `--test` (run each benchmark once, for `cargo test --benches`)
//! and treats the first free CLI argument as a substring filter, like the
//! real crate.

use std::time::{Duration, Instant};

/// Per-invocation timing device handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    /// Total measured duration across `iters` runs.
    pub elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over this sample's iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Re-export matching criterion's own `black_box` export.
pub use std::hint::black_box;

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Compose a `function/parameter` id.
    pub fn new(function: impl std::fmt::Display, parameter: impl std::fmt::Display) -> Self {
        Self { name: format!("{}/{}", function, parameter) }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { name: s }
    }
}

/// The benchmark harness configuration and runner.
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            sample_size: 100,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_secs(3),
            test_mode: false,
            filter: None,
        }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Target measurement window (bounds total samples taken).
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up window before sampling.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Apply CLI arguments (`--test`, or a substring filter).
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(a) = args.next() {
            match a.as_str() {
                "--test" => self.test_mode = true,
                "--bench" => {}
                s if s.starts_with("--") => {
                    // consume a possible value of an unknown flag
                    let _ = args.next();
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    /// Run a single standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        self.run_one(name, f);
        self
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        if self.test_mode {
            f(&mut b);
            println!("test {} ... ok", name);
            return;
        }
        // warm-up: run until the warm-up window elapses at least once
        let warm_start = Instant::now();
        let mut warm_runs = 0u64;
        while warm_start.elapsed() < self.warm_up_time || warm_runs == 0 {
            f(&mut b);
            warm_runs += 1;
        }
        // sampling: `sample_size` single-iteration samples, capped by the
        // measurement window (but always at least one)
        let mut total = Duration::ZERO;
        let mut samples = 0u32;
        let window = Instant::now();
        for _ in 0..self.sample_size {
            f(&mut b);
            total += b.elapsed;
            samples += 1;
            if window.elapsed() > self.measurement_time {
                break;
            }
        }
        let mean = total / samples.max(1);
        println!("{:<48} time: [{:?} mean of {} samples]", name, mean, samples);
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmark a routine parameterised by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.name);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Benchmark an unparameterised routine within the group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().name);
        self.criterion.run_one(&full, &mut f);
        self
    }

    /// Finish the group (report boundary in the real crate; no-op here).
    pub fn finish(self) {}
}

/// Mirror of criterion's `criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default().configure_from_args();
            targets = $($target),+
        );
    };
}

/// Mirror of criterion's `criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Criterion {
        Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5))
    }

    #[test]
    fn bench_function_runs_routine() {
        let mut calls = 0u32;
        fast().bench_function("counting", |b| b.iter(|| calls += 1));
        assert!(calls >= 3, "warm-up + samples must run the routine, got {}", calls);
    }

    #[test]
    fn groups_compose_names_and_run() {
        let mut c = fast();
        let mut ran = false;
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 4), &4usize, |b, &n| {
            b.iter(|| n * 2);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn bencher_records_elapsed() {
        let mut b = Bencher { iters: 3, elapsed: Duration::ZERO };
        b.iter(|| std::thread::sleep(Duration::from_micros(200)));
        assert!(b.elapsed >= Duration::from_micros(600));
    }
}
