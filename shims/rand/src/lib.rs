//! Offline shim for [rand](https://crates.io/crates/rand).
//!
//! Provides `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! methods the workspace calls (`gen::<u64>`, `gen::<f32>`, `gen_range` over
//! integer ranges). The generator is **xoshiro256++** seeded through
//! SplitMix64 — the construction recommended by the xoshiro authors — which
//! is deterministic per seed and passes the statistical checks the test
//! suite applies (moment tests on Box–Muller normals, shuffle uniformity).
//!
//! It is deliberately *not* bit-compatible with the real crate's
//! ChaCha12-based `StdRng`; nothing in this workspace depends on the exact
//! stream, only on per-seed determinism.

/// Construct a generator from seed material.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed (SplitMix64-expanded to full state).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draw one uniform sample from `rng`.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 24 uniform mantissa bits in [0, 1)
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one uniform sample from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8);

/// The sampling methods the workspace uses from rand's `Rng`.
pub trait Rng {
    /// Next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of `T` (`u64` full-range, floats in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Uniform sample from an integer range.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

/// Generator namespace, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ generator (shim stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step (Blackman & Vigna)
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let d: f64 = rng.gen();
            assert!((0.0..1.0).contains(&d));
        }
    }

    #[test]
    fn float_mean_is_near_half() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        assert!((sum / n as f64 - 0.5).abs() < 5e-3);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0usize..=4);
            assert!(w <= 4);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 8];
        for _ in 0..500 {
            seen[rng.gen_range(0usize..8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
