//! Offline shim for [crossbeam](https://crates.io/crates/crossbeam).
//!
//! Provides `channel::{bounded, unbounded}` MPMC channels with cloneable
//! senders *and* receivers, built on `Mutex<VecDeque>` + two condvars. The
//! semantics the workspace relies on are preserved:
//!
//! * `send` blocks while the buffer is full and errors once every receiver
//!   is gone (returning the rejected value);
//! * `recv` blocks while the buffer is empty and errors once every sender
//!   is gone *and* the buffer has drained;
//! * dropping all receivers wakes blocked senders and vice versa.

/// MPMC channels, mirroring `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};

    struct State<T> {
        buf: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Error returned by [`Sender::send`] when all receivers are dropped;
    /// carries the unsent value.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Receiver::recv`] when the channel is empty and
    /// all senders are dropped.
    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty (senders still connected).
        Empty,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// The deadline passed with the channel still empty.
        Timeout,
        /// Channel empty and all senders dropped.
        Disconnected,
    }

    /// The sending half of a channel.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Create a channel buffering at most `cap` messages.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap))
    }

    /// Create a channel with unlimited buffering.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State { buf: VecDeque::new(), cap, senders: 1, receivers: 1 }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (Sender { shared: Arc::clone(&shared) }, Receiver { shared })
    }

    impl<T> Sender<T> {
        /// Block until the value is enqueued (or every receiver is gone).
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(value));
                }
                let full = st.cap.is_some_and(|c| st.buf.len() >= c.max(1));
                if !full {
                    st.buf.push_back(value);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).unwrap();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Block until a value arrives (or every sender is gone and the
        /// buffer has drained).
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.buf.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        /// Block until a value arrives, every sender is gone, or `timeout`
        /// elapses — whichever comes first.
        pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
            let deadline = std::time::Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(v) = st.buf.pop_front() {
                    self.shared.not_full.notify_one();
                    return Ok(v);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = std::time::Instant::now();
                let Some(left) = deadline.checked_duration_since(now).filter(|d| !d.is_zero())
                else {
                    return Err(RecvTimeoutError::Timeout);
                };
                let (guard, _timed_out) = self.shared.not_empty.wait_timeout(st, left).unwrap();
                st = guard;
            }
        }

        /// Dequeue without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            match st.buf.pop_front() {
                Some(v) => {
                    self.shared.not_full.notify_one();
                    Ok(v)
                }
                None if st.senders == 0 => Err(TryRecvError::Disconnected),
                None => Err(TryRecvError::Empty),
            }
        }

        /// Number of messages currently buffered.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().buf.len()
        }

        /// True if no messages are buffered.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Self { shared: Arc::clone(&self.shared) }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.senders -= 1;
            if st.senders == 0 {
                // wake receivers blocked on an empty buffer so they observe EOF
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let mut st = self.shared.state.lock().unwrap();
            st.receivers -= 1;
            if st.receivers == 0 {
                // wake senders blocked on a full buffer so they observe the hangup
                self.shared.not_full.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::channel::{bounded, unbounded, RecvError, RecvTimeoutError, TryRecvError};

    #[test]
    fn fifo_roundtrip() {
        let (tx, rx) = bounded(4);
        for i in 0..4 {
            tx.send(i).unwrap();
        }
        assert_eq!(rx.len(), 4);
        for i in 0..4 {
            assert_eq!(rx.recv().unwrap(), i);
        }
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }

    #[test]
    fn recv_errors_after_all_senders_drop() {
        let (tx, rx) = unbounded();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
    }

    #[test]
    fn send_errors_after_receiver_drops() {
        let (tx, rx) = bounded::<i32>(1);
        drop(rx);
        assert!(tx.send(5).is_err());
    }

    #[test]
    fn bounded_blocks_until_drained() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        let producer = std::thread::spawn(move || tx.send(1).is_ok());
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert_eq!(rx.recv().unwrap(), 0);
        assert_eq!(rx.recv().unwrap(), 1);
        assert!(producer.join().unwrap());
    }

    #[test]
    fn dropping_receiver_unblocks_full_sender() {
        let (tx, rx) = bounded(1);
        tx.send(0u32).unwrap();
        let producer = std::thread::spawn(move || tx.send(1));
        std::thread::sleep(std::time::Duration::from_millis(20));
        drop(rx);
        assert!(producer.join().unwrap().is_err());
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        let (tx, rx) = bounded(1);
        let t0 = std::time::Instant::now();
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(30)),
            Err(RecvTimeoutError::Timeout)
        );
        assert!(t0.elapsed() >= std::time::Duration::from_millis(30));
        tx.send(9u32).unwrap();
        assert_eq!(rx.recv_timeout(std::time::Duration::from_millis(30)), Ok(9));
    }

    #[test]
    fn recv_timeout_wakes_on_late_send() {
        let (tx, rx) = bounded(1);
        let producer = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            tx.send(7u32).unwrap();
        });
        assert_eq!(rx.recv_timeout(std::time::Duration::from_secs(5)), Ok(7));
        producer.join().unwrap();
    }

    #[test]
    fn recv_timeout_reports_disconnect() {
        let (tx, rx) = unbounded::<u8>();
        drop(tx);
        assert_eq!(
            rx.recv_timeout(std::time::Duration::from_millis(10)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn multi_producer_multi_consumer_totals() {
        let (tx, rx) = bounded(2);
        let total = std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for p in 0..3u64 {
                let tx = tx.clone();
                s.spawn(move || {
                    for i in 0..50 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                });
            }
            drop(tx);
            for _ in 0..2 {
                let rx = rx.clone();
                let total = &total;
                s.spawn(move || {
                    while let Ok(v) = rx.recv() {
                        total.fetch_add(v, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        let expect: u64 = (0..3u64).map(|p| (0..50).map(|i| p * 1000 + i).sum::<u64>()).sum();
        assert_eq!(total.load(std::sync::atomic::Ordering::Relaxed), expect);
    }
}
