//! Offline shim for [parking_lot](https://crates.io/crates/parking_lot).
//!
//! Wraps the standard-library locks behind parking_lot's non-poisoning API
//! (`lock()`/`read()`/`write()` return guards directly). Lock poisoning is
//! converted to a panic on acquisition, matching the practical behaviour of
//! code written against parking_lot: a panicking critical section is a bug
//! either way.

use std::sync::{self, LockResult};

/// Ignore poison: the thread that poisoned the lock already panicked, and
/// these locks guard plain data (no invariants that survive a panic).
fn unpoison<G>(r: LockResult<G>) -> G {
    match r {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Mutual exclusion lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard type for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        unpoison(self.0.lock())
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

/// Reader-writer lock with parking_lot's infallible API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared guard type for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive guard type for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Create a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        unpoison(self.0.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        unpoison(self.0.read())
    }

    /// Acquire an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        unpoison(self.0.write())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        unpoison(self.0.get_mut())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_many_readers() {
        let l = RwLock::new(vec![1, 2, 3]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 6);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn shared_across_threads() {
        let l = std::sync::Arc::new(RwLock::new(0usize));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let l = std::sync::Arc::clone(&l);
                s.spawn(move || {
                    for _ in 0..100 {
                        *l.write() += 1;
                    }
                });
            }
        });
        assert_eq!(*l.read(), 400);
    }
}
