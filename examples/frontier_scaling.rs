//! Frontier scaling explorer: sweep sharding strategies for any Table I
//! model on the simulated machine and print throughput / memory / comm
//! share — the workflow behind the paper's §IV performance study.
//!
//! ```sh
//! cargo run --release --example frontier_scaling -- ViT-3B 16
//! ```
//! (model name and node count are optional; defaults: ViT-3B on 16 nodes)

use geofm::frontier::{simulate, FrontierMachine, SimConfig, VitWorkload};
use geofm::fsdp::ShardingStrategy;
use geofm::vit::{VitConfig, VitVariant};

fn parse_model(name: &str) -> VitVariant {
    match name {
        "ViT-Base" | "base" => VitVariant::Base,
        "ViT-Huge" | "huge" => VitVariant::Huge,
        "ViT-1B" | "1b" => VitVariant::B1,
        "ViT-3B" | "3b" => VitVariant::B3,
        "ViT-5B" | "5b" => VitVariant::B5,
        "ViT-15B" | "15b" => VitVariant::B15,
        other => panic!("unknown model '{}'; use e.g. ViT-3B", other),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let variant = parse_model(args.get(1).map(String::as_str).unwrap_or("ViT-3B"));
    let nodes: usize = args.get(2).and_then(|v| v.parse().ok()).unwrap_or(16);

    let cfg = VitConfig::table1(variant);
    let machine = FrontierMachine::new(nodes);
    let wl = VitWorkload::build(&cfg, 32, 224);
    println!(
        "{} ({} M params) on {} Frontier nodes ({} GCDs), local batch 32:\n",
        cfg.name,
        cfg.params_m(),
        nodes,
        machine.world()
    );
    println!(
        "{:<16} {:>10} {:>10} {:>10} {:>9} {:>6}",
        "strategy", "ips", "step[s]", "mem[GiB]", "comm[%]", "fits"
    );
    for strategy in [
        ShardingStrategy::ddp_default(),
        ShardingStrategy::NoShard,
        ShardingStrategy::Hybrid { shard_size: 1 },
        ShardingStrategy::Hybrid { shard_size: 2 },
        ShardingStrategy::Hybrid { shard_size: 4 },
        ShardingStrategy::Hybrid { shard_size: 8 },
        ShardingStrategy::FullShard,
        ShardingStrategy::ShardGradOp,
    ] {
        if strategy.shard_group_size(machine.world()) > machine.world() {
            continue;
        }
        let sim = simulate(&SimConfig::tuned(machine, strategy, wl.clone()));
        println!(
            "{:<16} {:>10.0} {:>10.3} {:>10.1} {:>8.1}% {:>6}",
            strategy.name(),
            sim.ips_syn,
            sim.step_time_syn,
            sim.memory.total_gib(),
            sim.comm_share() * 100.0,
            if sim.fits { "yes" } else { "OOM" }
        );
    }
    println!("\nTip: try `ViT-15B 64` to see SHARD_GRAD_OP take the lead (paper §IV-D).");
}
