//! End-to-end geospatial scene classification across model scales:
//! pretrain two encoder sizes, probe both on two benchmarks, and show the
//! capacity effect the paper's Table III measures.
//!
//! ```sh
//! cargo run --release --example geospatial_classification
//! ```

use geofm::core::{pretrain, probe_dataset, RecipeConfig};
use geofm::data::{DatasetKind, SceneDataset};
use geofm::vit::VitConfig;

fn main() {
    // first, look at the data itself
    let preview = SceneDataset::generate(DatasetKind::Aid, 4, 48, 3, 0, 1);
    println!(
        "synthetic AID scenes: {} samples of {} px, classes like {:?}",
        preview.len(),
        preview.img,
        &preview.labels
    );
    let stats = |row: &[f32]| {
        let mean = row.iter().sum::<f32>() / row.len() as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / row.len() as f32;
        (mean, var.sqrt())
    };
    for i in 0..2 {
        let (m, s) = stats(preview.images.row(i));
        println!("  sample {} (class {:>2}): mean {:+.2}, std {:.2}", i, preview.labels[i], m, s);
    }

    let rc = RecipeConfig {
        pretrain_images: 384,
        pretrain_epochs: 8,
        probe_epochs: 25,
        probe_scale: 0.1,
        max_test: 500,
        ..RecipeConfig::default()
    };

    let family = VitConfig::tiny_family();
    let small = &family[0];
    let large = &family[3];
    println!("\ncomparing {} ({} params) vs {} ({} params)\n",
        small.name, small.param_count(), large.name, large.param_count());

    for cfg in [small, large] {
        let t0 = std::time::Instant::now();
        let out = pretrain(cfg, &rc);
        println!("{} pretrained in {:.0?}", cfg.name, t0.elapsed());
        for kind in [DatasetKind::Ucm, DatasetKind::Aid] {
            let probe = probe_dataset(&out.encoder, kind, &rc);
            println!(
                "  {:<6} top-1 {:>5.1}%  top-5 {:>5.1}%   ({} train / {} test)",
                kind.name(),
                probe.final_top1 * 100.0,
                probe.final_top5 * 100.0,
                probe.train_n,
                probe.test_n
            );
        }
    }
    println!("\nThe larger encoder extracts better frozen features — the mechanism behind");
    println!("the paper's +30-point Table III gains at billion scale.");
}
