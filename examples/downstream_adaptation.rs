//! Beyond linear probing: the other adaptation modes the paper discusses —
//! full fine-tuning (§II "fine-tuning configurations") and few-shot
//! evaluation (§VI envisioned next steps) — on a pretrained encoder.
//!
//! ```sh
//! cargo run --release --example downstream_adaptation
//! ```

use geofm::core::{pretrain_cached, RecipeConfig};
use geofm::data::{DatasetKind, SceneDataset, SceneRenderer};
use geofm::mae::{few_shot_eval, patch_labels, FineTuner, LinearProbe, SegProbe};
use geofm::tensor::{Tensor, TensorRng};
use geofm::vit::VitConfig;

fn main() {
    let rc = RecipeConfig {
        pretrain_images: 256,
        pretrain_epochs: 8,
        ..RecipeConfig::default()
    };
    let cfg = &VitConfig::tiny_family()[1]; // T-Huge
    println!("pretraining {} ({} params)...", cfg.name, cfg.param_count());
    let out = pretrain_cached(cfg, &rc);

    // a small UCM-syn task
    let (train, test) = SceneDataset::probe_split(DatasetKind::Ucm, 0.25, cfg.img, cfg.channels);
    let classes = DatasetKind::Ucm.classes();
    let mut rng = TensorRng::seed_from(7);

    // 1) few-shot: nearest class-mean on frozen moment features
    let feats = LinearProbe::extract_moment_features(&out.encoder, &test.images, 64);
    for k in [1usize, 5] {
        let r = few_shot_eval(&feats, &test.labels, classes, k, 10, &mut rng);
        println!(
            "  {}-shot nearest-prototype accuracy: {:.1}%  (chance {:.1}%)",
            k,
            r.accuracy * 100.0,
            100.0 / classes as f32
        );
    }

    // 2) full fine-tuning with layer-wise lr decay (0.75, the ViT default)
    println!("fine-tuning end-to-end ({} train images)...", train.len());
    let mut ft = FineTuner::new(out.encoder, classes, 1e-3, 0.75, 15, &mut rng);
    for epoch in 0..15 {
        let loss = ft.train_epoch(&train.images, &train.labels, 16, &mut rng);
        if epoch % 3 == 0 {
            println!("  epoch {:>2}: train loss {:.3}", epoch, loss);
        }
    }
    let acc = ft.evaluate(&test.images, &test.labels);
    println!("  fine-tuned top-1 on UCM-syn: {:.1}%", acc * 100.0);

    // 3) semantic segmentation probe (the encoder was consumed by the
    //    fine-tuner, so reuse its now-adapted weights for the seg head demo)
    println!("semantic-segmentation probing (per-token head, generator masks)...");
    let renderer = SceneRenderer::new(cfg.img, cfg.channels, 7);
    let num_classes = 6;
    let collect = |offset: u64| {
        let mut feats: Vec<f32> = Vec::new();
        let mut labels: Vec<usize> = Vec::new();
        for class in 0..6 {
            let (imgs, masks) = renderer.render_class_segmented(class, 6, offset);
            let f = SegProbe::token_features(&ft.encoder, &imgs);
            feats.extend_from_slice(f.data());
            for m in &masks {
                labels.extend(patch_labels(m, cfg.img, cfg.patch, num_classes));
            }
        }
        let rows = feats.len() / cfg.width;
        (Tensor::from_vec(&[rows, cfg.width], feats), labels)
    };
    let (mut train_f, train_l) = collect(0);
    let (mut test_f, test_l) = collect(50_000);
    let (mean, std) = LinearProbe::feature_stats(&train_f);
    LinearProbe::standardize(&mut train_f, &mean, &std);
    LinearProbe::standardize(&mut test_f, &mean, &std);
    let mut seg = SegProbe::new(cfg.width, num_classes, 6.0, 25, &mut rng);
    for _ in 0..25 {
        seg.train_epoch(&train_f, &train_l, 128, &mut rng);
    }
    let m = seg.evaluate(&test_f, &test_l);
    println!("  patch accuracy {:.1}%  mIoU {:.3}", m.pixel_acc * 100.0, m.miou);

    println!("\nAs the paper notes (§V), fine-tuning adapts more parameters than probing;");
    println!("the paper evaluates with probing because fine-tuned accuracy saturates.");
}
