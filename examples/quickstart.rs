//! Quickstart: pretrain a tiny MAE-ViT on synthetic MillionAID scenes and
//! linear-probe it on UCM — the paper's §V pipeline in one minute.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use geofm::core::{pretrain, probe_dataset, RecipeConfig};
use geofm::data::DatasetKind;
use geofm::vit::VitConfig;

fn main() {
    // A small budget so the example finishes in ~a minute on one core.
    let rc = RecipeConfig {
        pretrain_images: 256,
        pretrain_epochs: 6,
        probe_epochs: 20,
        probe_scale: 0.1,
        max_test: 400,
        ..RecipeConfig::default()
    };

    let family = VitConfig::tiny_family();
    let cfg = &family[1]; // T-Huge
    println!("pretraining {} ({} params) with MAE (75% masking) ...", cfg.name, cfg.param_count());

    let t0 = std::time::Instant::now();
    let out = pretrain(cfg, &rc);
    let (first, last) = (
        out.eval_curve.first().map(|&(_, l)| l).unwrap_or(f32::NAN),
        out.eval_curve.last().map(|&(_, l)| l).unwrap_or(f32::NAN),
    );
    println!("  reconstruction loss: {:.3} -> {:.3}  ({:.0?})", first, last, t0.elapsed());

    println!("linear probing on UCM (frozen encoder, LARS) ...");
    let probe = probe_dataset(&out.encoder, DatasetKind::Ucm, &rc);
    println!(
        "  UCM ({} train / {} test, {} classes): top-1 {:.1}%  top-5 {:.1}%",
        probe.train_n,
        probe.test_n,
        DatasetKind::Ucm.classes(),
        probe.final_top1 * 100.0,
        probe.final_top5 * 100.0
    );
    let chance = 100.0 / DatasetKind::Ucm.classes() as f32;
    println!("  (chance would be {:.1}%)", chance);
}
