//! FSDP equivalence demo: train the same tiny ViT under every sharding
//! strategy (4 rank threads) and show that all of them produce the same
//! weights as single-rank training — while moving very different traffic.
//!
//! ```sh
//! cargo run --release --example fsdp_equivalence
//! ```

use geofm::fsdp::{run_data_parallel, FsdpConfig, ShardingStrategy};
use geofm::tensor::{Tensor, TensorRng};
use geofm::vit::{VitConfig, VitModel};

fn tiny() -> VitConfig {
    VitConfig {
        name: "demo".into(),
        width: 16,
        depth: 2,
        mlp: 32,
        heads: 4,
        patch: 4,
        img: 8,
        channels: 1,
    }
}

fn global_batch(cfg: &VitConfig, step: usize) -> (Tensor, Tensor) {
    let mut rng = TensorRng::seed_from(7000 + step as u64);
    let imgs = rng.randn(&[8, cfg.channels * cfg.img * cfg.img], 1.0);
    let tgt = rng.randn(&[8, cfg.tokens(), cfg.width], 0.5);
    (imgs, tgt)
}

fn run(strategy: ShardingStrategy, world: usize) -> geofm::fsdp::DistReport {
    let cfg = tiny();
    run_data_parallel(
        FsdpConfig::tuned(strategy),
        world,
        0.01,
        6,
        |_| {
            let mut rng = TensorRng::seed_from(99);
            let cfg = tiny();
            let mut m = VitModel::new(&cfg, &mut rng);
            let units = m.unit_param_counts();
            (m, units)
        },
        move |m, rank, step| {
            use geofm::nn::Module;
            let per = 8 / world;
            let (imgs, tgt) = global_batch(&cfg, step);
            let xl = imgs.rows(rank * per, (rank + 1) * per);
            let tw = cfg.tokens() * cfg.width;
            let tl = Tensor::from_vec(
                &[per, cfg.tokens(), cfg.width],
                tgt.data()[rank * per * tw..(rank + 1) * per * tw].to_vec(),
            );
            m.zero_grad();
            let enc = m.forward(&xl);
            let diff = enc.sub(&tl);
            let n = diff.numel() as f32;
            let loss = diff.sum_sq() / n;
            m.backward(&diff.scale(2.0 / n));
            loss
        },
        |_| 1e-3,
    )
}

fn main() {
    println!("training a tiny ViT for 6 steps under each strategy (world=4 threads)...\n");
    let baseline = run(ShardingStrategy::NoShard, 1);
    println!(
        "{:<16} {:>12} {:>12} {:>10} {:>10} {:>8}",
        "strategy", "max |Δw|", "loss[last]", "AG[B]", "RS[B]", "AR[B]"
    );
    for strategy in [
        ShardingStrategy::NoShard,
        ShardingStrategy::ddp_default(),
        ShardingStrategy::FullShard,
        ShardingStrategy::ShardGradOp,
        ShardingStrategy::Hybrid { shard_size: 2 },
    ] {
        let r = run(strategy, 4);
        let max_diff = baseline
            .final_params
            .iter()
            .zip(&r.final_params)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        println!(
            "{:<16} {:>12.2e} {:>12.5} {:>10} {:>10} {:>8}",
            strategy.name(),
            max_diff,
            r.mean_losses.last().unwrap(),
            r.traffic.all_gather,
            r.traffic.reduce_scatter,
            r.traffic.all_reduce,
        );
    }
    println!("\nEvery strategy reproduces single-rank training (max |Δw| ≈ f32 noise),");
    println!("while the traffic columns show each strategy's distinct communication pattern.");
}
