/root/repo/target/debug/deps/geofm_tensor-e26c75725a4283bc.d: crates/tensor/src/lib.rs crates/tensor/src/matmul.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_tensor-e26c75725a4283bc.rmeta: crates/tensor/src/lib.rs crates/tensor/src/matmul.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/random.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
