/root/repo/target/debug/deps/geofm_repro-5a584169a21d4ad1.d: crates/repro/src/lib.rs

/root/repo/target/debug/deps/libgeofm_repro-5a584169a21d4ad1.rlib: crates/repro/src/lib.rs

/root/repo/target/debug/deps/libgeofm_repro-5a584169a21d4ad1.rmeta: crates/repro/src/lib.rs

crates/repro/src/lib.rs:
