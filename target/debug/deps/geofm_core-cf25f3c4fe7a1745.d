/root/repo/target/debug/deps/geofm_core-cf25f3c4fe7a1745.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/debug/deps/geofm_core-cf25f3c4fe7a1745: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/pipeline.rs:
crates/core/src/recipe.rs:
