/root/repo/target/debug/deps/geofm_data-1cfba18149f074db.d: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

/root/repo/target/debug/deps/libgeofm_data-1cfba18149f074db.rlib: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

/root/repo/target/debug/deps/libgeofm_data-1cfba18149f074db.rmeta: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

crates/data/src/lib.rs:
crates/data/src/datasets.rs:
crates/data/src/loader.rs:
crates/data/src/scene.rs:
