/root/repo/target/debug/deps/proptests-73730599d8b7109a.d: crates/collectives/tests/proptests.rs

/root/repo/target/debug/deps/proptests-73730599d8b7109a: crates/collectives/tests/proptests.rs

crates/collectives/tests/proptests.rs:
