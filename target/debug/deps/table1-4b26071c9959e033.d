/root/repo/target/debug/deps/table1-4b26071c9959e033.d: crates/repro/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-4b26071c9959e033.rmeta: crates/repro/src/bin/table1.rs

crates/repro/src/bin/table1.rs:
