/root/repo/target/debug/deps/geofm_data-de4b156fe2bdb29d.d: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

/root/repo/target/debug/deps/libgeofm_data-de4b156fe2bdb29d.rmeta: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

crates/data/src/lib.rs:
crates/data/src/datasets.rs:
crates/data/src/loader.rs:
crates/data/src/scene.rs:
