/root/repo/target/debug/deps/telemetry_volume-902b93dac8a6e79b.d: tests/telemetry_volume.rs

/root/repo/target/debug/deps/telemetry_volume-902b93dac8a6e79b: tests/telemetry_volume.rs

tests/telemetry_volume.rs:
