/root/repo/target/debug/deps/geofm-a5600b47ab54d971.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm-a5600b47ab54d971.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
