/root/repo/target/debug/deps/tune_pretrain-20eb3025d3dcc81f.d: crates/repro/src/bin/tune_pretrain.rs

/root/repo/target/debug/deps/tune_pretrain-20eb3025d3dcc81f: crates/repro/src/bin/tune_pretrain.rs

crates/repro/src/bin/tune_pretrain.rs:
