/root/repo/target/debug/deps/telemetry_determinism-6e23223a976205f4.d: tests/telemetry_determinism.rs

/root/repo/target/debug/deps/telemetry_determinism-6e23223a976205f4: tests/telemetry_determinism.rs

tests/telemetry_determinism.rs:
