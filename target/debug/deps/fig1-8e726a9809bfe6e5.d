/root/repo/target/debug/deps/fig1-8e726a9809bfe6e5.d: crates/repro/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-8e726a9809bfe6e5: crates/repro/src/bin/fig1.rs

crates/repro/src/bin/fig1.rs:
