/root/repo/target/debug/deps/calibrate-e74c9e862eb7fc99.d: crates/repro/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-e74c9e862eb7fc99.rmeta: crates/repro/src/bin/calibrate.rs Cargo.toml

crates/repro/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
