/root/repo/target/debug/deps/geofm_telemetry-7cc98df762aabfa2.d: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/timer.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libgeofm_telemetry-7cc98df762aabfa2.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/timer.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/timer.rs:
crates/telemetry/src/trace.rs:
