/root/repo/target/debug/deps/geofm_fsdp-d4bb214efd3abb98.d: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_fsdp-d4bb214efd3abb98.rmeta: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs Cargo.toml

crates/fsdp/src/lib.rs:
crates/fsdp/src/flat.rs:
crates/fsdp/src/rank.rs:
crates/fsdp/src/strategy.rs:
crates/fsdp/src/trainer.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
