/root/repo/target/debug/deps/geofm_core-fa23fd74d1bbf22c.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_core-fa23fd74d1bbf22c.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/pipeline.rs:
crates/core/src/recipe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
