/root/repo/target/debug/deps/fig5-96571491378804c0.d: crates/repro/src/bin/fig5.rs

/root/repo/target/debug/deps/libfig5-96571491378804c0.rmeta: crates/repro/src/bin/fig5.rs

crates/repro/src/bin/fig5.rs:
