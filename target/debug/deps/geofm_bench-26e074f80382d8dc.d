/root/repo/target/debug/deps/geofm_bench-26e074f80382d8dc.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgeofm_bench-26e074f80382d8dc.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgeofm_bench-26e074f80382d8dc.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
