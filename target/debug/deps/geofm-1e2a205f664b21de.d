/root/repo/target/debug/deps/geofm-1e2a205f664b21de.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm-1e2a205f664b21de.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
