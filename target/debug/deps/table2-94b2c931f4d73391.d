/root/repo/target/debug/deps/table2-94b2c931f4d73391.d: crates/repro/src/bin/table2.rs

/root/repo/target/debug/deps/table2-94b2c931f4d73391: crates/repro/src/bin/table2.rs

crates/repro/src/bin/table2.rs:
