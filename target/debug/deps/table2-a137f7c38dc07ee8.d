/root/repo/target/debug/deps/table2-a137f7c38dc07ee8.d: crates/repro/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-a137f7c38dc07ee8.rmeta: crates/repro/src/bin/table2.rs Cargo.toml

crates/repro/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
