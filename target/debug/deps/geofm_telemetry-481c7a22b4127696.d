/root/repo/target/debug/deps/geofm_telemetry-481c7a22b4127696.d: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/timer.rs crates/telemetry/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_telemetry-481c7a22b4127696.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/timer.rs crates/telemetry/src/trace.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/timer.rs:
crates/telemetry/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
