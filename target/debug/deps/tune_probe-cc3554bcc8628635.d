/root/repo/target/debug/deps/tune_probe-cc3554bcc8628635.d: crates/repro/src/bin/tune_probe.rs

/root/repo/target/debug/deps/tune_probe-cc3554bcc8628635: crates/repro/src/bin/tune_probe.rs

crates/repro/src/bin/tune_probe.rs:
