/root/repo/target/debug/deps/proptests-bd5e6dcfcd760ebd.d: crates/nn/tests/proptests.rs

/root/repo/target/debug/deps/proptests-bd5e6dcfcd760ebd: crates/nn/tests/proptests.rs

crates/nn/tests/proptests.rs:
