/root/repo/target/debug/deps/geofm_repro-c03baa250e8f3894.d: crates/repro/src/lib.rs

/root/repo/target/debug/deps/libgeofm_repro-c03baa250e8f3894.rmeta: crates/repro/src/lib.rs

crates/repro/src/lib.rs:
