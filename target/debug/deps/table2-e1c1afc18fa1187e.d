/root/repo/target/debug/deps/table2-e1c1afc18fa1187e.d: crates/repro/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-e1c1afc18fa1187e.rmeta: crates/repro/src/bin/table2.rs

crates/repro/src/bin/table2.rs:
