/root/repo/target/debug/deps/mae_step-82132ec819c1a17c.d: crates/bench/benches/mae_step.rs Cargo.toml

/root/repo/target/debug/deps/libmae_step-82132ec819c1a17c.rmeta: crates/bench/benches/mae_step.rs Cargo.toml

crates/bench/benches/mae_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
