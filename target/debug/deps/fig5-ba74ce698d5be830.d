/root/repo/target/debug/deps/fig5-ba74ce698d5be830.d: crates/repro/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-ba74ce698d5be830.rmeta: crates/repro/src/bin/fig5.rs Cargo.toml

crates/repro/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
