/root/repo/target/debug/deps/tune_probe-a2881ab862901b30.d: crates/repro/src/bin/tune_probe.rs

/root/repo/target/debug/deps/libtune_probe-a2881ab862901b30.rmeta: crates/repro/src/bin/tune_probe.rs

crates/repro/src/bin/tune_probe.rs:
