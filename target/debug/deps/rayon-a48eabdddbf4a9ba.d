/root/repo/target/debug/deps/rayon-a48eabdddbf4a9ba.d: shims/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-a48eabdddbf4a9ba.rmeta: shims/rayon/src/lib.rs Cargo.toml

shims/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
