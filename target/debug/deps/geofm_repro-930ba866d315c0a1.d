/root/repo/target/debug/deps/geofm_repro-930ba866d315c0a1.d: crates/repro/src/lib.rs

/root/repo/target/debug/deps/geofm_repro-930ba866d315c0a1: crates/repro/src/lib.rs

crates/repro/src/lib.rs:
