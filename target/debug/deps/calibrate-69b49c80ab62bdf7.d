/root/repo/target/debug/deps/calibrate-69b49c80ab62bdf7.d: crates/repro/src/bin/calibrate.rs

/root/repo/target/debug/deps/libcalibrate-69b49c80ab62bdf7.rmeta: crates/repro/src/bin/calibrate.rs

crates/repro/src/bin/calibrate.rs:
