/root/repo/target/debug/deps/geofm_nn-8dc52749745fb919.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/attention.rs crates/nn/src/block.rs crates/nn/src/embed.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/norm.rs crates/nn/src/optim.rs crates/nn/src/param.rs crates/nn/src/schedule.rs

/root/repo/target/debug/deps/libgeofm_nn-8dc52749745fb919.rmeta: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/attention.rs crates/nn/src/block.rs crates/nn/src/embed.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/norm.rs crates/nn/src/optim.rs crates/nn/src/param.rs crates/nn/src/schedule.rs

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/attention.rs:
crates/nn/src/block.rs:
crates/nn/src/embed.rs:
crates/nn/src/linear.rs:
crates/nn/src/loss.rs:
crates/nn/src/norm.rs:
crates/nn/src/optim.rs:
crates/nn/src/param.rs:
crates/nn/src/schedule.rs:
