/root/repo/target/debug/deps/proptests-200193f7ad06968e.d: crates/fsdp/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-200193f7ad06968e.rmeta: crates/fsdp/tests/proptests.rs Cargo.toml

crates/fsdp/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
