/root/repo/target/debug/deps/rayon-b2bf7d488a0785c4.d: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-b2bf7d488a0785c4.rmeta: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
