/root/repo/target/debug/deps/fig2-8cbadf047f6cddc5.d: crates/repro/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-8cbadf047f6cddc5: crates/repro/src/bin/fig2.rs

crates/repro/src/bin/fig2.rs:
