/root/repo/target/debug/deps/geofm_frontier-7996188d7c10a1c6.d: crates/frontier/src/lib.rs crates/frontier/src/analytic.rs crates/frontier/src/engine.rs crates/frontier/src/faults.rs crates/frontier/src/io.rs crates/frontier/src/machine.rs crates/frontier/src/memory.rs crates/frontier/src/power.rs crates/frontier/src/schedule.rs crates/frontier/src/sim.rs crates/frontier/src/workload.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_frontier-7996188d7c10a1c6.rmeta: crates/frontier/src/lib.rs crates/frontier/src/analytic.rs crates/frontier/src/engine.rs crates/frontier/src/faults.rs crates/frontier/src/io.rs crates/frontier/src/machine.rs crates/frontier/src/memory.rs crates/frontier/src/power.rs crates/frontier/src/schedule.rs crates/frontier/src/sim.rs crates/frontier/src/workload.rs Cargo.toml

crates/frontier/src/lib.rs:
crates/frontier/src/analytic.rs:
crates/frontier/src/engine.rs:
crates/frontier/src/faults.rs:
crates/frontier/src/io.rs:
crates/frontier/src/machine.rs:
crates/frontier/src/memory.rs:
crates/frontier/src/power.rs:
crates/frontier/src/schedule.rs:
crates/frontier/src/sim.rs:
crates/frontier/src/workload.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
