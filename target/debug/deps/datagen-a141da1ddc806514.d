/root/repo/target/debug/deps/datagen-a141da1ddc806514.d: crates/bench/benches/datagen.rs

/root/repo/target/debug/deps/libdatagen-a141da1ddc806514.rmeta: crates/bench/benches/datagen.rs

crates/bench/benches/datagen.rs:
