/root/repo/target/debug/deps/proptest-1b92f9b8f8b4ac63.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-1b92f9b8f8b4ac63.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
