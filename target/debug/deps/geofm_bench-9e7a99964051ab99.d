/root/repo/target/debug/deps/geofm_bench-9e7a99964051ab99.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgeofm_bench-9e7a99964051ab99.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
