/root/repo/target/debug/deps/fig3-8243ac46d4f91f36.d: crates/repro/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-8243ac46d4f91f36: crates/repro/src/bin/fig3.rs

crates/repro/src/bin/fig3.rs:
