/root/repo/target/debug/deps/geofm_nn-7b20dcbb631b4c5d.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/attention.rs crates/nn/src/block.rs crates/nn/src/embed.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/norm.rs crates/nn/src/optim.rs crates/nn/src/param.rs crates/nn/src/schedule.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_nn-7b20dcbb631b4c5d.rmeta: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/attention.rs crates/nn/src/block.rs crates/nn/src/embed.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/norm.rs crates/nn/src/optim.rs crates/nn/src/param.rs crates/nn/src/schedule.rs Cargo.toml

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/attention.rs:
crates/nn/src/block.rs:
crates/nn/src/embed.rs:
crates/nn/src/linear.rs:
crates/nn/src/loss.rs:
crates/nn/src/norm.rs:
crates/nn/src/optim.rs:
crates/nn/src/param.rs:
crates/nn/src/schedule.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
