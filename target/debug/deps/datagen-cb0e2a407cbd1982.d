/root/repo/target/debug/deps/datagen-cb0e2a407cbd1982.d: crates/bench/benches/datagen.rs Cargo.toml

/root/repo/target/debug/deps/libdatagen-cb0e2a407cbd1982.rmeta: crates/bench/benches/datagen.rs Cargo.toml

crates/bench/benches/datagen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
