/root/repo/target/debug/deps/criterion-73d0d457f83fb32f.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-73d0d457f83fb32f.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
