/root/repo/target/debug/deps/tune_pretrain-dace723827da0c8b.d: crates/repro/src/bin/tune_pretrain.rs Cargo.toml

/root/repo/target/debug/deps/libtune_pretrain-dace723827da0c8b.rmeta: crates/repro/src/bin/tune_pretrain.rs Cargo.toml

crates/repro/src/bin/tune_pretrain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
