/root/repo/target/debug/deps/geofm_tensor-e94fdd4a4b69fc01.d: crates/tensor/src/lib.rs crates/tensor/src/matmul.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libgeofm_tensor-e94fdd4a4b69fc01.rmeta: crates/tensor/src/lib.rs crates/tensor/src/matmul.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/random.rs:
crates/tensor/src/tensor.rs:
