/root/repo/target/debug/deps/fig1-dd72ee7aecd85215.d: crates/repro/src/bin/fig1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1-dd72ee7aecd85215.rmeta: crates/repro/src/bin/fig1.rs Cargo.toml

crates/repro/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
