/root/repo/target/debug/deps/table2-5ed382a7461a8d28.d: crates/repro/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-5ed382a7461a8d28.rmeta: crates/repro/src/bin/table2.rs Cargo.toml

crates/repro/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
