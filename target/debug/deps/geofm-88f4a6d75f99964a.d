/root/repo/target/debug/deps/geofm-88f4a6d75f99964a.d: src/lib.rs

/root/repo/target/debug/deps/libgeofm-88f4a6d75f99964a.rlib: src/lib.rs

/root/repo/target/debug/deps/libgeofm-88f4a6d75f99964a.rmeta: src/lib.rs

src/lib.rs:
