/root/repo/target/debug/deps/proptests-2fc58815c7d94a9b.d: crates/tensor/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-2fc58815c7d94a9b.rmeta: crates/tensor/tests/proptests.rs Cargo.toml

crates/tensor/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
