/root/repo/target/debug/deps/figR-7db8b4bcf5fccc55.d: crates/repro/src/bin/figR.rs Cargo.toml

/root/repo/target/debug/deps/libfigR-7db8b4bcf5fccc55.rmeta: crates/repro/src/bin/figR.rs Cargo.toml

crates/repro/src/bin/figR.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
