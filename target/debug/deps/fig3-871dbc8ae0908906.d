/root/repo/target/debug/deps/fig3-871dbc8ae0908906.d: crates/repro/src/bin/fig3.rs Cargo.toml

/root/repo/target/debug/deps/libfig3-871dbc8ae0908906.rmeta: crates/repro/src/bin/fig3.rs Cargo.toml

crates/repro/src/bin/fig3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
