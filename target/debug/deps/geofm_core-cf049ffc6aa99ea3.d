/root/repo/target/debug/deps/geofm_core-cf049ffc6aa99ea3.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/debug/deps/libgeofm_core-cf049ffc6aa99ea3.rlib: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/debug/deps/libgeofm_core-cf049ffc6aa99ea3.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/pipeline.rs:
crates/core/src/recipe.rs:
