/root/repo/target/debug/deps/fig1-51f0abd7ec20e4d6.d: crates/repro/src/bin/fig1.rs

/root/repo/target/debug/deps/libfig1-51f0abd7ec20e4d6.rmeta: crates/repro/src/bin/fig1.rs

crates/repro/src/bin/fig1.rs:
