/root/repo/target/debug/deps/proptests-25683bb11300b1e9.d: crates/fsdp/tests/proptests.rs

/root/repo/target/debug/deps/proptests-25683bb11300b1e9: crates/fsdp/tests/proptests.rs

crates/fsdp/tests/proptests.rs:
