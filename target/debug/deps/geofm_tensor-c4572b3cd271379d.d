/root/repo/target/debug/deps/geofm_tensor-c4572b3cd271379d.d: crates/tensor/src/lib.rs crates/tensor/src/matmul.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libgeofm_tensor-c4572b3cd271379d.rmeta: crates/tensor/src/lib.rs crates/tensor/src/matmul.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/random.rs:
crates/tensor/src/tensor.rs:
