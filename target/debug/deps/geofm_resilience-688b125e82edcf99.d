/root/repo/target/debug/deps/geofm_resilience-688b125e82edcf99.d: crates/resilience/src/lib.rs crates/resilience/src/ckpt.rs crates/resilience/src/fault.rs crates/resilience/src/mtbf.rs

/root/repo/target/debug/deps/geofm_resilience-688b125e82edcf99: crates/resilience/src/lib.rs crates/resilience/src/ckpt.rs crates/resilience/src/fault.rs crates/resilience/src/mtbf.rs

crates/resilience/src/lib.rs:
crates/resilience/src/ckpt.rs:
crates/resilience/src/fault.rs:
crates/resilience/src/mtbf.rs:
