/root/repo/target/debug/deps/fig4-a1d2d652e0398c54.d: crates/repro/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-a1d2d652e0398c54: crates/repro/src/bin/fig4.rs

crates/repro/src/bin/fig4.rs:
