/root/repo/target/debug/deps/table1-dd87f9c7bcdb7414.d: crates/repro/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-dd87f9c7bcdb7414.rmeta: crates/repro/src/bin/table1.rs Cargo.toml

crates/repro/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
