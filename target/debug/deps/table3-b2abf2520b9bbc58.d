/root/repo/target/debug/deps/table3-b2abf2520b9bbc58.d: crates/repro/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-b2abf2520b9bbc58.rmeta: crates/repro/src/bin/table3.rs Cargo.toml

crates/repro/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
