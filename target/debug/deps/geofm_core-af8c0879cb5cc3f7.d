/root/repo/target/debug/deps/geofm_core-af8c0879cb5cc3f7.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/debug/deps/libgeofm_core-af8c0879cb5cc3f7.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/pipeline.rs:
crates/core/src/recipe.rs:
