/root/repo/target/debug/deps/cross_validation-9a7c0790a49d3d34.d: tests/cross_validation.rs

/root/repo/target/debug/deps/libcross_validation-9a7c0790a49d3d34.rmeta: tests/cross_validation.rs

tests/cross_validation.rs:
