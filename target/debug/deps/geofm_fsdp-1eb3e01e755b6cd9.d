/root/repo/target/debug/deps/geofm_fsdp-1eb3e01e755b6cd9.d: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

/root/repo/target/debug/deps/libgeofm_fsdp-1eb3e01e755b6cd9.rmeta: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

crates/fsdp/src/lib.rs:
crates/fsdp/src/flat.rs:
crates/fsdp/src/rank.rs:
crates/fsdp/src/strategy.rs:
crates/fsdp/src/trainer.rs:
