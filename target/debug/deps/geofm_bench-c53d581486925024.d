/root/repo/target/debug/deps/geofm_bench-c53d581486925024.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgeofm_bench-c53d581486925024.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgeofm_bench-c53d581486925024.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
