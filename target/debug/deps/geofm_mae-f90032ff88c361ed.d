/root/repo/target/debug/deps/geofm_mae-f90032ff88c361ed.d: crates/mae/src/lib.rs crates/mae/src/fewshot.rs crates/mae/src/finetune.rs crates/mae/src/mask.rs crates/mae/src/model.rs crates/mae/src/pretrain.rs crates/mae/src/probe.rs crates/mae/src/segmentation.rs

/root/repo/target/debug/deps/geofm_mae-f90032ff88c361ed: crates/mae/src/lib.rs crates/mae/src/fewshot.rs crates/mae/src/finetune.rs crates/mae/src/mask.rs crates/mae/src/model.rs crates/mae/src/pretrain.rs crates/mae/src/probe.rs crates/mae/src/segmentation.rs

crates/mae/src/lib.rs:
crates/mae/src/fewshot.rs:
crates/mae/src/finetune.rs:
crates/mae/src/mask.rs:
crates/mae/src/model.rs:
crates/mae/src/pretrain.rs:
crates/mae/src/probe.rs:
crates/mae/src/segmentation.rs:
