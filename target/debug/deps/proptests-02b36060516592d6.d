/root/repo/target/debug/deps/proptests-02b36060516592d6.d: crates/collectives/tests/proptests.rs

/root/repo/target/debug/deps/proptests-02b36060516592d6: crates/collectives/tests/proptests.rs

crates/collectives/tests/proptests.rs:
