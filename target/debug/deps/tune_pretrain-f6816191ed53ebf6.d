/root/repo/target/debug/deps/tune_pretrain-f6816191ed53ebf6.d: crates/repro/src/bin/tune_pretrain.rs

/root/repo/target/debug/deps/tune_pretrain-f6816191ed53ebf6: crates/repro/src/bin/tune_pretrain.rs

crates/repro/src/bin/tune_pretrain.rs:
