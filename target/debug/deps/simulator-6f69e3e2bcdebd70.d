/root/repo/target/debug/deps/simulator-6f69e3e2bcdebd70.d: crates/bench/benches/simulator.rs

/root/repo/target/debug/deps/libsimulator-6f69e3e2bcdebd70.rmeta: crates/bench/benches/simulator.rs

crates/bench/benches/simulator.rs:
