/root/repo/target/debug/deps/geofm-2ca39cf5a91d6fe8.d: src/lib.rs

/root/repo/target/debug/deps/libgeofm-2ca39cf5a91d6fe8.rlib: src/lib.rs

/root/repo/target/debug/deps/libgeofm-2ca39cf5a91d6fe8.rmeta: src/lib.rs

src/lib.rs:
