/root/repo/target/debug/deps/experiments-2761e515903c2cac.d: tests/experiments.rs

/root/repo/target/debug/deps/experiments-2761e515903c2cac: tests/experiments.rs

tests/experiments.rs:
