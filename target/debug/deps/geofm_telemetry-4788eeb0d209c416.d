/root/repo/target/debug/deps/geofm_telemetry-4788eeb0d209c416.d: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/timer.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/geofm_telemetry-4788eeb0d209c416: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/timer.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/timer.rs:
crates/telemetry/src/trace.rs:
