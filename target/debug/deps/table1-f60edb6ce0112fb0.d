/root/repo/target/debug/deps/table1-f60edb6ce0112fb0.d: crates/repro/src/bin/table1.rs

/root/repo/target/debug/deps/libtable1-f60edb6ce0112fb0.rmeta: crates/repro/src/bin/table1.rs

crates/repro/src/bin/table1.rs:
