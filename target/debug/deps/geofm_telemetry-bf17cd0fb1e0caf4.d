/root/repo/target/debug/deps/geofm_telemetry-bf17cd0fb1e0caf4.d: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/timer.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libgeofm_telemetry-bf17cd0fb1e0caf4.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/timer.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/timer.rs:
crates/telemetry/src/trace.rs:
