/root/repo/target/debug/deps/geofm_repro-b2faf022010b3e9d.d: crates/repro/src/lib.rs

/root/repo/target/debug/deps/libgeofm_repro-b2faf022010b3e9d.rlib: crates/repro/src/lib.rs

/root/repo/target/debug/deps/libgeofm_repro-b2faf022010b3e9d.rmeta: crates/repro/src/lib.rs

crates/repro/src/lib.rs:
