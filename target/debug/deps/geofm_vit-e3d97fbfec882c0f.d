/root/repo/target/debug/deps/geofm_vit-e3d97fbfec882c0f.d: crates/vit/src/lib.rs crates/vit/src/config.rs crates/vit/src/flops.rs crates/vit/src/model.rs

/root/repo/target/debug/deps/geofm_vit-e3d97fbfec882c0f: crates/vit/src/lib.rs crates/vit/src/config.rs crates/vit/src/flops.rs crates/vit/src/model.rs

crates/vit/src/lib.rs:
crates/vit/src/config.rs:
crates/vit/src/flops.rs:
crates/vit/src/model.rs:
