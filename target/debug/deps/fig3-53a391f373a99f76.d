/root/repo/target/debug/deps/fig3-53a391f373a99f76.d: crates/repro/src/bin/fig3.rs

/root/repo/target/debug/deps/libfig3-53a391f373a99f76.rmeta: crates/repro/src/bin/fig3.rs

crates/repro/src/bin/fig3.rs:
