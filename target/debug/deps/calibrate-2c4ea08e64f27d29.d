/root/repo/target/debug/deps/calibrate-2c4ea08e64f27d29.d: crates/repro/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-2c4ea08e64f27d29: crates/repro/src/bin/calibrate.rs

crates/repro/src/bin/calibrate.rs:
