/root/repo/target/debug/deps/table3-fc7dd9c891926580.d: crates/repro/src/bin/table3.rs

/root/repo/target/debug/deps/table3-fc7dd9c891926580: crates/repro/src/bin/table3.rs

crates/repro/src/bin/table3.rs:
