/root/repo/target/debug/deps/fig4-f5f051b68e18d900.d: crates/repro/src/bin/fig4.rs

/root/repo/target/debug/deps/libfig4-f5f051b68e18d900.rmeta: crates/repro/src/bin/fig4.rs

crates/repro/src/bin/fig4.rs:
