/root/repo/target/debug/deps/table1-0fa2cce63202c194.d: crates/repro/src/bin/table1.rs

/root/repo/target/debug/deps/table1-0fa2cce63202c194: crates/repro/src/bin/table1.rs

crates/repro/src/bin/table1.rs:
