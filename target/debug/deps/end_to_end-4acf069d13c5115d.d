/root/repo/target/debug/deps/end_to_end-4acf069d13c5115d.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-4acf069d13c5115d: tests/end_to_end.rs

tests/end_to_end.rs:
