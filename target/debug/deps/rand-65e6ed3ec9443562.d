/root/repo/target/debug/deps/rand-65e6ed3ec9443562.d: shims/rand/src/lib.rs

/root/repo/target/debug/deps/librand-65e6ed3ec9443562.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
