/root/repo/target/debug/deps/geofm_frontier-1991b34271ed84d1.d: crates/frontier/src/lib.rs crates/frontier/src/analytic.rs crates/frontier/src/engine.rs crates/frontier/src/io.rs crates/frontier/src/machine.rs crates/frontier/src/memory.rs crates/frontier/src/power.rs crates/frontier/src/schedule.rs crates/frontier/src/sim.rs crates/frontier/src/workload.rs

/root/repo/target/debug/deps/libgeofm_frontier-1991b34271ed84d1.rlib: crates/frontier/src/lib.rs crates/frontier/src/analytic.rs crates/frontier/src/engine.rs crates/frontier/src/io.rs crates/frontier/src/machine.rs crates/frontier/src/memory.rs crates/frontier/src/power.rs crates/frontier/src/schedule.rs crates/frontier/src/sim.rs crates/frontier/src/workload.rs

/root/repo/target/debug/deps/libgeofm_frontier-1991b34271ed84d1.rmeta: crates/frontier/src/lib.rs crates/frontier/src/analytic.rs crates/frontier/src/engine.rs crates/frontier/src/io.rs crates/frontier/src/machine.rs crates/frontier/src/memory.rs crates/frontier/src/power.rs crates/frontier/src/schedule.rs crates/frontier/src/sim.rs crates/frontier/src/workload.rs

crates/frontier/src/lib.rs:
crates/frontier/src/analytic.rs:
crates/frontier/src/engine.rs:
crates/frontier/src/io.rs:
crates/frontier/src/machine.rs:
crates/frontier/src/memory.rs:
crates/frontier/src/power.rs:
crates/frontier/src/schedule.rs:
crates/frontier/src/sim.rs:
crates/frontier/src/workload.rs:
