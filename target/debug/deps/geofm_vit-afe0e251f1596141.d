/root/repo/target/debug/deps/geofm_vit-afe0e251f1596141.d: crates/vit/src/lib.rs crates/vit/src/config.rs crates/vit/src/flops.rs crates/vit/src/model.rs

/root/repo/target/debug/deps/libgeofm_vit-afe0e251f1596141.rmeta: crates/vit/src/lib.rs crates/vit/src/config.rs crates/vit/src/flops.rs crates/vit/src/model.rs

crates/vit/src/lib.rs:
crates/vit/src/config.rs:
crates/vit/src/flops.rs:
crates/vit/src/model.rs:
