/root/repo/target/debug/deps/fig2-c95ccc6f033024c4.d: crates/repro/src/bin/fig2.rs

/root/repo/target/debug/deps/libfig2-c95ccc6f033024c4.rmeta: crates/repro/src/bin/fig2.rs

crates/repro/src/bin/fig2.rs:
