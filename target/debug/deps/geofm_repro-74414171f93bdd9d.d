/root/repo/target/debug/deps/geofm_repro-74414171f93bdd9d.d: crates/repro/src/lib.rs

/root/repo/target/debug/deps/geofm_repro-74414171f93bdd9d: crates/repro/src/lib.rs

crates/repro/src/lib.rs:
