/root/repo/target/debug/deps/geofm_telemetry-575f22ef9d782601.d: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/timer.rs crates/telemetry/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_telemetry-575f22ef9d782601.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/timer.rs crates/telemetry/src/trace.rs Cargo.toml

crates/telemetry/src/lib.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/timer.rs:
crates/telemetry/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
