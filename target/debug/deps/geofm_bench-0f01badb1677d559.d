/root/repo/target/debug/deps/geofm_bench-0f01badb1677d559.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/geofm_bench-0f01badb1677d559: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
