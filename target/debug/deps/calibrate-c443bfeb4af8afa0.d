/root/repo/target/debug/deps/calibrate-c443bfeb4af8afa0.d: crates/repro/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-c443bfeb4af8afa0.rmeta: crates/repro/src/bin/calibrate.rs Cargo.toml

crates/repro/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
