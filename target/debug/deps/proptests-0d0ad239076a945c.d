/root/repo/target/debug/deps/proptests-0d0ad239076a945c.d: crates/fsdp/tests/proptests.rs

/root/repo/target/debug/deps/proptests-0d0ad239076a945c: crates/fsdp/tests/proptests.rs

crates/fsdp/tests/proptests.rs:
