/root/repo/target/debug/deps/cross_validation-fc76835a3b219d02.d: tests/cross_validation.rs Cargo.toml

/root/repo/target/debug/deps/libcross_validation-fc76835a3b219d02.rmeta: tests/cross_validation.rs Cargo.toml

tests/cross_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
