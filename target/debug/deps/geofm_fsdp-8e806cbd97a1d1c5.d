/root/repo/target/debug/deps/geofm_fsdp-8e806cbd97a1d1c5.d: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

/root/repo/target/debug/deps/libgeofm_fsdp-8e806cbd97a1d1c5.rlib: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

/root/repo/target/debug/deps/libgeofm_fsdp-8e806cbd97a1d1c5.rmeta: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

crates/fsdp/src/lib.rs:
crates/fsdp/src/flat.rs:
crates/fsdp/src/rank.rs:
crates/fsdp/src/strategy.rs:
crates/fsdp/src/trainer.rs:
