/root/repo/target/debug/deps/table1-1a169bf876bed54c.d: crates/repro/src/bin/table1.rs

/root/repo/target/debug/deps/table1-1a169bf876bed54c: crates/repro/src/bin/table1.rs

crates/repro/src/bin/table1.rs:
