/root/repo/target/debug/deps/calibrate-578ebc0651af5df6.d: crates/repro/src/bin/calibrate.rs Cargo.toml

/root/repo/target/debug/deps/libcalibrate-578ebc0651af5df6.rmeta: crates/repro/src/bin/calibrate.rs Cargo.toml

crates/repro/src/bin/calibrate.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
