/root/repo/target/debug/deps/geofm_resilience-5539dc478bf91347.d: crates/resilience/src/lib.rs crates/resilience/src/ckpt.rs crates/resilience/src/fault.rs crates/resilience/src/mtbf.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_resilience-5539dc478bf91347.rmeta: crates/resilience/src/lib.rs crates/resilience/src/ckpt.rs crates/resilience/src/fault.rs crates/resilience/src/mtbf.rs Cargo.toml

crates/resilience/src/lib.rs:
crates/resilience/src/ckpt.rs:
crates/resilience/src/fault.rs:
crates/resilience/src/mtbf.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
