/root/repo/target/debug/deps/geofm_tensor-3d85003dd44c34a3.d: crates/tensor/src/lib.rs crates/tensor/src/matmul.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libgeofm_tensor-3d85003dd44c34a3.rlib: crates/tensor/src/lib.rs crates/tensor/src/matmul.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/libgeofm_tensor-3d85003dd44c34a3.rmeta: crates/tensor/src/lib.rs crates/tensor/src/matmul.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/random.rs:
crates/tensor/src/tensor.rs:
