/root/repo/target/debug/deps/checkpoint_corruption-dcbbbe05fc2a8b8f.d: tests/checkpoint_corruption.rs Cargo.toml

/root/repo/target/debug/deps/libcheckpoint_corruption-dcbbbe05fc2a8b8f.rmeta: tests/checkpoint_corruption.rs Cargo.toml

tests/checkpoint_corruption.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
