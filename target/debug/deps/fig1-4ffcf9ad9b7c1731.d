/root/repo/target/debug/deps/fig1-4ffcf9ad9b7c1731.d: crates/repro/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-4ffcf9ad9b7c1731: crates/repro/src/bin/fig1.rs

crates/repro/src/bin/fig1.rs:
