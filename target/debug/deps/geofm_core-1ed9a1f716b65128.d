/root/repo/target/debug/deps/geofm_core-1ed9a1f716b65128.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_core-1ed9a1f716b65128.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/pipeline.rs:
crates/core/src/recipe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
