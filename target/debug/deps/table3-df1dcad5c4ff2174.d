/root/repo/target/debug/deps/table3-df1dcad5c4ff2174.d: crates/repro/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-df1dcad5c4ff2174.rmeta: crates/repro/src/bin/table3.rs

crates/repro/src/bin/table3.rs:
