/root/repo/target/debug/deps/geofm_repro-788bafab7ca3426a.d: crates/repro/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_repro-788bafab7ca3426a.rmeta: crates/repro/src/lib.rs Cargo.toml

crates/repro/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
