/root/repo/target/debug/deps/crossbeam-744a3fc0eaaf1552.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-744a3fc0eaaf1552.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
