/root/repo/target/debug/deps/geofm_bench-c93f1e5d74bb8cfa.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_bench-c93f1e5d74bb8cfa.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
