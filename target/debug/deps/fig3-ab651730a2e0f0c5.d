/root/repo/target/debug/deps/fig3-ab651730a2e0f0c5.d: crates/repro/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-ab651730a2e0f0c5: crates/repro/src/bin/fig3.rs

crates/repro/src/bin/fig3.rs:
