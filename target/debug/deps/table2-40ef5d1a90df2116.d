/root/repo/target/debug/deps/table2-40ef5d1a90df2116.d: crates/repro/src/bin/table2.rs

/root/repo/target/debug/deps/libtable2-40ef5d1a90df2116.rmeta: crates/repro/src/bin/table2.rs

crates/repro/src/bin/table2.rs:
