/root/repo/target/debug/deps/fsdp_step-3fc5b4ed484f8f47.d: crates/bench/benches/fsdp_step.rs Cargo.toml

/root/repo/target/debug/deps/libfsdp_step-3fc5b4ed484f8f47.rmeta: crates/bench/benches/fsdp_step.rs Cargo.toml

crates/bench/benches/fsdp_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
