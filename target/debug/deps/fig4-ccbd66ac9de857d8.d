/root/repo/target/debug/deps/fig4-ccbd66ac9de857d8.d: crates/repro/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-ccbd66ac9de857d8: crates/repro/src/bin/fig4.rs

crates/repro/src/bin/fig4.rs:
