/root/repo/target/debug/deps/telemetry_determinism-89629b6cf6ee5a17.d: tests/telemetry_determinism.rs

/root/repo/target/debug/deps/libtelemetry_determinism-89629b6cf6ee5a17.rmeta: tests/telemetry_determinism.rs

tests/telemetry_determinism.rs:
