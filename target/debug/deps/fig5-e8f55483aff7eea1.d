/root/repo/target/debug/deps/fig5-e8f55483aff7eea1.d: crates/repro/src/bin/fig5.rs

/root/repo/target/debug/deps/libfig5-e8f55483aff7eea1.rmeta: crates/repro/src/bin/fig5.rs

crates/repro/src/bin/fig5.rs:
