/root/repo/target/debug/deps/geofm-f5538a03ac33bd4b.d: src/lib.rs

/root/repo/target/debug/deps/geofm-f5538a03ac33bd4b: src/lib.rs

src/lib.rs:
