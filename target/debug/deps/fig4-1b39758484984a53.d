/root/repo/target/debug/deps/fig4-1b39758484984a53.d: crates/repro/src/bin/fig4.rs

/root/repo/target/debug/deps/fig4-1b39758484984a53: crates/repro/src/bin/fig4.rs

crates/repro/src/bin/fig4.rs:
