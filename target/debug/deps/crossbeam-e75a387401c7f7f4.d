/root/repo/target/debug/deps/crossbeam-e75a387401c7f7f4.d: shims/crossbeam/src/lib.rs

/root/repo/target/debug/deps/libcrossbeam-e75a387401c7f7f4.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
