/root/repo/target/debug/deps/tune_pretrain-40aebd387ecea315.d: crates/repro/src/bin/tune_pretrain.rs

/root/repo/target/debug/deps/libtune_pretrain-40aebd387ecea315.rmeta: crates/repro/src/bin/tune_pretrain.rs

crates/repro/src/bin/tune_pretrain.rs:
