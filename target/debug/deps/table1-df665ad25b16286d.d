/root/repo/target/debug/deps/table1-df665ad25b16286d.d: crates/repro/src/bin/table1.rs

/root/repo/target/debug/deps/table1-df665ad25b16286d: crates/repro/src/bin/table1.rs

crates/repro/src/bin/table1.rs:
