/root/repo/target/debug/deps/kernels-8078146098fc1d01.d: crates/bench/benches/kernels.rs

/root/repo/target/debug/deps/libkernels-8078146098fc1d01.rmeta: crates/bench/benches/kernels.rs

crates/bench/benches/kernels.rs:
