/root/repo/target/debug/deps/geofm_collectives-2d7e8cbcb38a53b3.d: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/group.rs crates/collectives/src/hierarchy.rs crates/collectives/src/ring.rs crates/collectives/src/traffic.rs

/root/repo/target/debug/deps/libgeofm_collectives-2d7e8cbcb38a53b3.rlib: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/group.rs crates/collectives/src/hierarchy.rs crates/collectives/src/ring.rs crates/collectives/src/traffic.rs

/root/repo/target/debug/deps/libgeofm_collectives-2d7e8cbcb38a53b3.rmeta: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/group.rs crates/collectives/src/hierarchy.rs crates/collectives/src/ring.rs crates/collectives/src/traffic.rs

crates/collectives/src/lib.rs:
crates/collectives/src/barrier.rs:
crates/collectives/src/group.rs:
crates/collectives/src/hierarchy.rs:
crates/collectives/src/ring.rs:
crates/collectives/src/traffic.rs:
