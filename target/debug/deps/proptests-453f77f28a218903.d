/root/repo/target/debug/deps/proptests-453f77f28a218903.d: crates/fsdp/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-453f77f28a218903.rmeta: crates/fsdp/tests/proptests.rs

crates/fsdp/tests/proptests.rs:
