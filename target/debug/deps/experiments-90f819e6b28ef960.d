/root/repo/target/debug/deps/experiments-90f819e6b28ef960.d: tests/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-90f819e6b28ef960.rmeta: tests/experiments.rs Cargo.toml

tests/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
