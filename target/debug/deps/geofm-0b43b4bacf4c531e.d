/root/repo/target/debug/deps/geofm-0b43b4bacf4c531e.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm-0b43b4bacf4c531e.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
