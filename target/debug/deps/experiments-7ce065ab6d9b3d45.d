/root/repo/target/debug/deps/experiments-7ce065ab6d9b3d45.d: tests/experiments.rs

/root/repo/target/debug/deps/libexperiments-7ce065ab6d9b3d45.rmeta: tests/experiments.rs

tests/experiments.rs:
