/root/repo/target/debug/deps/end_to_end-d22d63eb874d89a6.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-d22d63eb874d89a6: tests/end_to_end.rs

tests/end_to_end.rs:
