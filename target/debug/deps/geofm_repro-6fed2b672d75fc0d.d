/root/repo/target/debug/deps/geofm_repro-6fed2b672d75fc0d.d: crates/repro/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_repro-6fed2b672d75fc0d.rmeta: crates/repro/src/lib.rs Cargo.toml

crates/repro/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
