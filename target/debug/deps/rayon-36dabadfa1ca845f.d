/root/repo/target/debug/deps/rayon-36dabadfa1ca845f.d: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-36dabadfa1ca845f.rmeta: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
