/root/repo/target/debug/deps/collectives-17254ef2ab6d17aa.d: crates/bench/benches/collectives.rs Cargo.toml

/root/repo/target/debug/deps/libcollectives-17254ef2ab6d17aa.rmeta: crates/bench/benches/collectives.rs Cargo.toml

crates/bench/benches/collectives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
