/root/repo/target/debug/deps/geofm-fd70794b4e8436f0.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm-fd70794b4e8436f0.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
