/root/repo/target/debug/deps/fig3-f8298866d061c76b.d: crates/repro/src/bin/fig3.rs

/root/repo/target/debug/deps/libfig3-f8298866d061c76b.rmeta: crates/repro/src/bin/fig3.rs

crates/repro/src/bin/fig3.rs:
