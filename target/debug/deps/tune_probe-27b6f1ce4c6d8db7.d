/root/repo/target/debug/deps/tune_probe-27b6f1ce4c6d8db7.d: crates/repro/src/bin/tune_probe.rs

/root/repo/target/debug/deps/tune_probe-27b6f1ce4c6d8db7: crates/repro/src/bin/tune_probe.rs

crates/repro/src/bin/tune_probe.rs:
