/root/repo/target/debug/deps/proptests-5be031af327d9493.d: crates/frontier/tests/proptests.rs

/root/repo/target/debug/deps/proptests-5be031af327d9493: crates/frontier/tests/proptests.rs

crates/frontier/tests/proptests.rs:
