/root/repo/target/debug/deps/parking_lot-af07177069201d92.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-af07177069201d92.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
