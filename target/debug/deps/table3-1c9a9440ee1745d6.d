/root/repo/target/debug/deps/table3-1c9a9440ee1745d6.d: crates/repro/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-1c9a9440ee1745d6.rmeta: crates/repro/src/bin/table3.rs Cargo.toml

crates/repro/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
