/root/repo/target/debug/deps/geofm_core-26779e5e52497a4f.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/debug/deps/geofm_core-26779e5e52497a4f: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/pipeline.rs:
crates/core/src/recipe.rs:
