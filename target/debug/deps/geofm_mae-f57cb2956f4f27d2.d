/root/repo/target/debug/deps/geofm_mae-f57cb2956f4f27d2.d: crates/mae/src/lib.rs crates/mae/src/fewshot.rs crates/mae/src/finetune.rs crates/mae/src/mask.rs crates/mae/src/model.rs crates/mae/src/pretrain.rs crates/mae/src/probe.rs crates/mae/src/segmentation.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_mae-f57cb2956f4f27d2.rmeta: crates/mae/src/lib.rs crates/mae/src/fewshot.rs crates/mae/src/finetune.rs crates/mae/src/mask.rs crates/mae/src/model.rs crates/mae/src/pretrain.rs crates/mae/src/probe.rs crates/mae/src/segmentation.rs Cargo.toml

crates/mae/src/lib.rs:
crates/mae/src/fewshot.rs:
crates/mae/src/finetune.rs:
crates/mae/src/mask.rs:
crates/mae/src/model.rs:
crates/mae/src/pretrain.rs:
crates/mae/src/probe.rs:
crates/mae/src/segmentation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
