/root/repo/target/debug/deps/geofm_data-c25a740ea1b3a66d.d: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

/root/repo/target/debug/deps/libgeofm_data-c25a740ea1b3a66d.rlib: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

/root/repo/target/debug/deps/libgeofm_data-c25a740ea1b3a66d.rmeta: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

crates/data/src/lib.rs:
crates/data/src/datasets.rs:
crates/data/src/loader.rs:
crates/data/src/scene.rs:
