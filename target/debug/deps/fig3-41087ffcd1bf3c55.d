/root/repo/target/debug/deps/fig3-41087ffcd1bf3c55.d: crates/repro/src/bin/fig3.rs

/root/repo/target/debug/deps/fig3-41087ffcd1bf3c55: crates/repro/src/bin/fig3.rs

crates/repro/src/bin/fig3.rs:
