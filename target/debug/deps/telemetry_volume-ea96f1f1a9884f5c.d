/root/repo/target/debug/deps/telemetry_volume-ea96f1f1a9884f5c.d: tests/telemetry_volume.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_volume-ea96f1f1a9884f5c.rmeta: tests/telemetry_volume.rs Cargo.toml

tests/telemetry_volume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
