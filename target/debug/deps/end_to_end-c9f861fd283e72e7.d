/root/repo/target/debug/deps/end_to_end-c9f861fd283e72e7.d: tests/end_to_end.rs

/root/repo/target/debug/deps/libend_to_end-c9f861fd283e72e7.rmeta: tests/end_to_end.rs

tests/end_to_end.rs:
