/root/repo/target/debug/deps/fig4-6829edf8a23386fa.d: crates/repro/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-6829edf8a23386fa.rmeta: crates/repro/src/bin/fig4.rs Cargo.toml

crates/repro/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
