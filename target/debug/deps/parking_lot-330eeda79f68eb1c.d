/root/repo/target/debug/deps/parking_lot-330eeda79f68eb1c.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-330eeda79f68eb1c.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
