/root/repo/target/debug/deps/calibrate-6cab7efeb5ecb2f2.d: crates/repro/src/bin/calibrate.rs

/root/repo/target/debug/deps/libcalibrate-6cab7efeb5ecb2f2.rmeta: crates/repro/src/bin/calibrate.rs

crates/repro/src/bin/calibrate.rs:
