/root/repo/target/debug/deps/fig4-d4fc7d1ce3515b8f.d: crates/repro/src/bin/fig4.rs

/root/repo/target/debug/deps/libfig4-d4fc7d1ce3515b8f.rmeta: crates/repro/src/bin/fig4.rs

crates/repro/src/bin/fig4.rs:
