/root/repo/target/debug/deps/geofm_bench-f5c4f9e2ce7fc604.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/geofm_bench-f5c4f9e2ce7fc604: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
