/root/repo/target/debug/deps/tune_pretrain-3a487de29a8a0116.d: crates/repro/src/bin/tune_pretrain.rs Cargo.toml

/root/repo/target/debug/deps/libtune_pretrain-3a487de29a8a0116.rmeta: crates/repro/src/bin/tune_pretrain.rs Cargo.toml

crates/repro/src/bin/tune_pretrain.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
