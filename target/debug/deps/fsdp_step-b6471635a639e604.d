/root/repo/target/debug/deps/fsdp_step-b6471635a639e604.d: crates/bench/benches/fsdp_step.rs Cargo.toml

/root/repo/target/debug/deps/libfsdp_step-b6471635a639e604.rmeta: crates/bench/benches/fsdp_step.rs Cargo.toml

crates/bench/benches/fsdp_step.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
