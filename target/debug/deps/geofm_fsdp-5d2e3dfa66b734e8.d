/root/repo/target/debug/deps/geofm_fsdp-5d2e3dfa66b734e8.d: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

/root/repo/target/debug/deps/geofm_fsdp-5d2e3dfa66b734e8: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

crates/fsdp/src/lib.rs:
crates/fsdp/src/flat.rs:
crates/fsdp/src/rank.rs:
crates/fsdp/src/strategy.rs:
crates/fsdp/src/trainer.rs:
