/root/repo/target/debug/deps/geofm_core-f982de1455065cc6.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/debug/deps/libgeofm_core-f982de1455065cc6.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/pipeline.rs:
crates/core/src/recipe.rs:
