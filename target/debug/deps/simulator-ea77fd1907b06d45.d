/root/repo/target/debug/deps/simulator-ea77fd1907b06d45.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-ea77fd1907b06d45.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
