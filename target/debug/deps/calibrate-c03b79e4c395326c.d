/root/repo/target/debug/deps/calibrate-c03b79e4c395326c.d: crates/repro/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-c03b79e4c395326c: crates/repro/src/bin/calibrate.rs

crates/repro/src/bin/calibrate.rs:
