/root/repo/target/debug/deps/geofm_core-8348b505aa7d1923.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/debug/deps/geofm_core-8348b505aa7d1923: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/pipeline.rs:
crates/core/src/recipe.rs:
