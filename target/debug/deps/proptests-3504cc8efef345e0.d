/root/repo/target/debug/deps/proptests-3504cc8efef345e0.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/proptests-3504cc8efef345e0: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
