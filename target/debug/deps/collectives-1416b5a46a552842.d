/root/repo/target/debug/deps/collectives-1416b5a46a552842.d: crates/bench/benches/collectives.rs

/root/repo/target/debug/deps/libcollectives-1416b5a46a552842.rmeta: crates/bench/benches/collectives.rs

crates/bench/benches/collectives.rs:
