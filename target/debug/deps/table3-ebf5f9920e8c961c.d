/root/repo/target/debug/deps/table3-ebf5f9920e8c961c.d: crates/repro/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-ebf5f9920e8c961c.rmeta: crates/repro/src/bin/table3.rs Cargo.toml

crates/repro/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
