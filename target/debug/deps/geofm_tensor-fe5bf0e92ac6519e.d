/root/repo/target/debug/deps/geofm_tensor-fe5bf0e92ac6519e.d: crates/tensor/src/lib.rs crates/tensor/src/matmul.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/tensor.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_tensor-fe5bf0e92ac6519e.rmeta: crates/tensor/src/lib.rs crates/tensor/src/matmul.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/tensor.rs Cargo.toml

crates/tensor/src/lib.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/random.rs:
crates/tensor/src/tensor.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
