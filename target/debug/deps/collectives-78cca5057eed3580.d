/root/repo/target/debug/deps/collectives-78cca5057eed3580.d: crates/bench/benches/collectives.rs Cargo.toml

/root/repo/target/debug/deps/libcollectives-78cca5057eed3580.rmeta: crates/bench/benches/collectives.rs Cargo.toml

crates/bench/benches/collectives.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
