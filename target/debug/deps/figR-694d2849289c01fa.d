/root/repo/target/debug/deps/figR-694d2849289c01fa.d: crates/repro/src/bin/figR.rs Cargo.toml

/root/repo/target/debug/deps/libfigR-694d2849289c01fa.rmeta: crates/repro/src/bin/figR.rs Cargo.toml

crates/repro/src/bin/figR.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
