/root/repo/target/debug/deps/rayon-31df9e7144a534f1.d: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/rayon-31df9e7144a534f1: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
