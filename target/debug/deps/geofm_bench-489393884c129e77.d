/root/repo/target/debug/deps/geofm_bench-489393884c129e77.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/geofm_bench-489393884c129e77: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
