/root/repo/target/debug/deps/geofm_collectives-33c7c8245e5ed6d5.d: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/group.rs crates/collectives/src/hierarchy.rs crates/collectives/src/ring.rs crates/collectives/src/traffic.rs

/root/repo/target/debug/deps/geofm_collectives-33c7c8245e5ed6d5: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/group.rs crates/collectives/src/hierarchy.rs crates/collectives/src/ring.rs crates/collectives/src/traffic.rs

crates/collectives/src/lib.rs:
crates/collectives/src/barrier.rs:
crates/collectives/src/group.rs:
crates/collectives/src/hierarchy.rs:
crates/collectives/src/ring.rs:
crates/collectives/src/traffic.rs:
