/root/repo/target/debug/deps/fig6-16ca29a5e2d94f6e.d: crates/repro/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-16ca29a5e2d94f6e.rmeta: crates/repro/src/bin/fig6.rs Cargo.toml

crates/repro/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
