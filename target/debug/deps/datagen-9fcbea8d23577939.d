/root/repo/target/debug/deps/datagen-9fcbea8d23577939.d: crates/bench/benches/datagen.rs Cargo.toml

/root/repo/target/debug/deps/libdatagen-9fcbea8d23577939.rmeta: crates/bench/benches/datagen.rs Cargo.toml

crates/bench/benches/datagen.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
