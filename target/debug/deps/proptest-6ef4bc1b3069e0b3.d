/root/repo/target/debug/deps/proptest-6ef4bc1b3069e0b3.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-6ef4bc1b3069e0b3.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
