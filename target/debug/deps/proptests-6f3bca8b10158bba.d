/root/repo/target/debug/deps/proptests-6f3bca8b10158bba.d: crates/collectives/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-6f3bca8b10158bba.rmeta: crates/collectives/tests/proptests.rs

crates/collectives/tests/proptests.rs:
