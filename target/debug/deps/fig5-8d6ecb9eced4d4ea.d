/root/repo/target/debug/deps/fig5-8d6ecb9eced4d4ea.d: crates/repro/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-8d6ecb9eced4d4ea: crates/repro/src/bin/fig5.rs

crates/repro/src/bin/fig5.rs:
