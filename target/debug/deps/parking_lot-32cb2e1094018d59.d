/root/repo/target/debug/deps/parking_lot-32cb2e1094018d59.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-32cb2e1094018d59: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
