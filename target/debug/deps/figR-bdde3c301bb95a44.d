/root/repo/target/debug/deps/figR-bdde3c301bb95a44.d: crates/repro/src/bin/figR.rs

/root/repo/target/debug/deps/figR-bdde3c301bb95a44: crates/repro/src/bin/figR.rs

crates/repro/src/bin/figR.rs:
