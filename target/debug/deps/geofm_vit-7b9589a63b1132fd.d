/root/repo/target/debug/deps/geofm_vit-7b9589a63b1132fd.d: crates/vit/src/lib.rs crates/vit/src/config.rs crates/vit/src/flops.rs crates/vit/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_vit-7b9589a63b1132fd.rmeta: crates/vit/src/lib.rs crates/vit/src/config.rs crates/vit/src/flops.rs crates/vit/src/model.rs Cargo.toml

crates/vit/src/lib.rs:
crates/vit/src/config.rs:
crates/vit/src/flops.rs:
crates/vit/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
