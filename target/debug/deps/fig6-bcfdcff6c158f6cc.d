/root/repo/target/debug/deps/fig6-bcfdcff6c158f6cc.d: crates/repro/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-bcfdcff6c158f6cc.rmeta: crates/repro/src/bin/fig6.rs Cargo.toml

crates/repro/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
