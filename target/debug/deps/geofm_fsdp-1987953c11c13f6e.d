/root/repo/target/debug/deps/geofm_fsdp-1987953c11c13f6e.d: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

/root/repo/target/debug/deps/geofm_fsdp-1987953c11c13f6e: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

crates/fsdp/src/lib.rs:
crates/fsdp/src/flat.rs:
crates/fsdp/src/rank.rs:
crates/fsdp/src/strategy.rs:
crates/fsdp/src/trainer.rs:
