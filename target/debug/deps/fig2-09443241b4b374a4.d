/root/repo/target/debug/deps/fig2-09443241b4b374a4.d: crates/repro/src/bin/fig2.rs Cargo.toml

/root/repo/target/debug/deps/libfig2-09443241b4b374a4.rmeta: crates/repro/src/bin/fig2.rs Cargo.toml

crates/repro/src/bin/fig2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
