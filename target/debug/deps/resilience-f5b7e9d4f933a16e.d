/root/repo/target/debug/deps/resilience-f5b7e9d4f933a16e.d: tests/resilience.rs Cargo.toml

/root/repo/target/debug/deps/libresilience-f5b7e9d4f933a16e.rmeta: tests/resilience.rs Cargo.toml

tests/resilience.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
