/root/repo/target/debug/deps/fig6-9a58cbc495a103c7.d: crates/repro/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-9a58cbc495a103c7: crates/repro/src/bin/fig6.rs

crates/repro/src/bin/fig6.rs:
