/root/repo/target/debug/deps/proptests-c15040926b2e9556.d: crates/frontier/tests/proptests.rs

/root/repo/target/debug/deps/proptests-c15040926b2e9556: crates/frontier/tests/proptests.rs

crates/frontier/tests/proptests.rs:
