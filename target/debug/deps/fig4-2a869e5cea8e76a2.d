/root/repo/target/debug/deps/fig4-2a869e5cea8e76a2.d: crates/repro/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-2a869e5cea8e76a2.rmeta: crates/repro/src/bin/fig4.rs Cargo.toml

crates/repro/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
