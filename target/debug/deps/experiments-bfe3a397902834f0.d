/root/repo/target/debug/deps/experiments-bfe3a397902834f0.d: tests/experiments.rs Cargo.toml

/root/repo/target/debug/deps/libexperiments-bfe3a397902834f0.rmeta: tests/experiments.rs Cargo.toml

tests/experiments.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
