/root/repo/target/debug/deps/geofm_vit-0cdc7b0741e126f3.d: crates/vit/src/lib.rs crates/vit/src/config.rs crates/vit/src/flops.rs crates/vit/src/model.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_vit-0cdc7b0741e126f3.rmeta: crates/vit/src/lib.rs crates/vit/src/config.rs crates/vit/src/flops.rs crates/vit/src/model.rs Cargo.toml

crates/vit/src/lib.rs:
crates/vit/src/config.rs:
crates/vit/src/flops.rs:
crates/vit/src/model.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
