/root/repo/target/debug/deps/proptests-08aa665e8cc9d062.d: crates/frontier/tests/proptests.rs

/root/repo/target/debug/deps/proptests-08aa665e8cc9d062: crates/frontier/tests/proptests.rs

crates/frontier/tests/proptests.rs:
