/root/repo/target/debug/deps/rayon-ad7143acadd6826d.d: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-ad7143acadd6826d.rlib: shims/rayon/src/lib.rs

/root/repo/target/debug/deps/librayon-ad7143acadd6826d.rmeta: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
