/root/repo/target/debug/deps/geofm_telemetry-a5ca2c28282441d0.d: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/timer.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libgeofm_telemetry-a5ca2c28282441d0.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/timer.rs crates/telemetry/src/trace.rs

/root/repo/target/debug/deps/libgeofm_telemetry-a5ca2c28282441d0.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/timer.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/timer.rs:
crates/telemetry/src/trace.rs:
