/root/repo/target/debug/deps/geofm_repro-e2cd1c5cdba973eb.d: crates/repro/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_repro-e2cd1c5cdba973eb.rmeta: crates/repro/src/lib.rs Cargo.toml

crates/repro/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
