/root/repo/target/debug/deps/fig6-3fa27e3cd96ca869.d: crates/repro/src/bin/fig6.rs

/root/repo/target/debug/deps/libfig6-3fa27e3cd96ca869.rmeta: crates/repro/src/bin/fig6.rs

crates/repro/src/bin/fig6.rs:
