/root/repo/target/debug/deps/tune_pretrain-8521c3912fe072c2.d: crates/repro/src/bin/tune_pretrain.rs

/root/repo/target/debug/deps/tune_pretrain-8521c3912fe072c2: crates/repro/src/bin/tune_pretrain.rs

crates/repro/src/bin/tune_pretrain.rs:
