/root/repo/target/debug/deps/proptests-ff8858f6aab7bc5c.d: crates/fsdp/tests/proptests.rs

/root/repo/target/debug/deps/proptests-ff8858f6aab7bc5c: crates/fsdp/tests/proptests.rs

crates/fsdp/tests/proptests.rs:
