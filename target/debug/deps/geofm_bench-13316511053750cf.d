/root/repo/target/debug/deps/geofm_bench-13316511053750cf.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgeofm_bench-13316511053750cf.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgeofm_bench-13316511053750cf.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
