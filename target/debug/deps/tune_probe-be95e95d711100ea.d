/root/repo/target/debug/deps/tune_probe-be95e95d711100ea.d: crates/repro/src/bin/tune_probe.rs

/root/repo/target/debug/deps/tune_probe-be95e95d711100ea: crates/repro/src/bin/tune_probe.rs

crates/repro/src/bin/tune_probe.rs:
