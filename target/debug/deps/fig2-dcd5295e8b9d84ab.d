/root/repo/target/debug/deps/fig2-dcd5295e8b9d84ab.d: crates/repro/src/bin/fig2.rs

/root/repo/target/debug/deps/libfig2-dcd5295e8b9d84ab.rmeta: crates/repro/src/bin/fig2.rs

crates/repro/src/bin/fig2.rs:
