/root/repo/target/debug/deps/proptests-90d2fd25347f7623.d: crates/frontier/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-90d2fd25347f7623.rmeta: crates/frontier/tests/proptests.rs

crates/frontier/tests/proptests.rs:
