/root/repo/target/debug/deps/fig4-d0e61be28c91ea9c.d: crates/repro/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-d0e61be28c91ea9c.rmeta: crates/repro/src/bin/fig4.rs Cargo.toml

crates/repro/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
