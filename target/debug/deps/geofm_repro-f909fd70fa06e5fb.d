/root/repo/target/debug/deps/geofm_repro-f909fd70fa06e5fb.d: crates/repro/src/lib.rs

/root/repo/target/debug/deps/geofm_repro-f909fd70fa06e5fb: crates/repro/src/lib.rs

crates/repro/src/lib.rs:
