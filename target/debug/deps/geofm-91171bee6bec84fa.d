/root/repo/target/debug/deps/geofm-91171bee6bec84fa.d: src/lib.rs

/root/repo/target/debug/deps/libgeofm-91171bee6bec84fa.rmeta: src/lib.rs

src/lib.rs:
