/root/repo/target/debug/deps/fig6-9bae7378f0e90654.d: crates/repro/src/bin/fig6.rs Cargo.toml

/root/repo/target/debug/deps/libfig6-9bae7378f0e90654.rmeta: crates/repro/src/bin/fig6.rs Cargo.toml

crates/repro/src/bin/fig6.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
