/root/repo/target/debug/deps/table3-3e53f799299f8fe8.d: crates/repro/src/bin/table3.rs

/root/repo/target/debug/deps/table3-3e53f799299f8fe8: crates/repro/src/bin/table3.rs

crates/repro/src/bin/table3.rs:
