/root/repo/target/debug/deps/telemetry_determinism-85ea9603ecbd1e5e.d: tests/telemetry_determinism.rs

/root/repo/target/debug/deps/telemetry_determinism-85ea9603ecbd1e5e: tests/telemetry_determinism.rs

tests/telemetry_determinism.rs:
