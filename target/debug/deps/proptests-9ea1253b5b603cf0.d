/root/repo/target/debug/deps/proptests-9ea1253b5b603cf0.d: crates/nn/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-9ea1253b5b603cf0.rmeta: crates/nn/tests/proptests.rs

crates/nn/tests/proptests.rs:
