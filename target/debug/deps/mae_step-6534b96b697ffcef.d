/root/repo/target/debug/deps/mae_step-6534b96b697ffcef.d: crates/bench/benches/mae_step.rs

/root/repo/target/debug/deps/libmae_step-6534b96b697ffcef.rmeta: crates/bench/benches/mae_step.rs

crates/bench/benches/mae_step.rs:
