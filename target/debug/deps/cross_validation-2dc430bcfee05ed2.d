/root/repo/target/debug/deps/cross_validation-2dc430bcfee05ed2.d: tests/cross_validation.rs

/root/repo/target/debug/deps/cross_validation-2dc430bcfee05ed2: tests/cross_validation.rs

tests/cross_validation.rs:
