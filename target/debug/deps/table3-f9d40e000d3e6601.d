/root/repo/target/debug/deps/table3-f9d40e000d3e6601.d: crates/repro/src/bin/table3.rs

/root/repo/target/debug/deps/libtable3-f9d40e000d3e6601.rmeta: crates/repro/src/bin/table3.rs

crates/repro/src/bin/table3.rs:
