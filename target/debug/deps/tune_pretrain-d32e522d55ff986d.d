/root/repo/target/debug/deps/tune_pretrain-d32e522d55ff986d.d: crates/repro/src/bin/tune_pretrain.rs

/root/repo/target/debug/deps/libtune_pretrain-d32e522d55ff986d.rmeta: crates/repro/src/bin/tune_pretrain.rs

crates/repro/src/bin/tune_pretrain.rs:
