/root/repo/target/debug/deps/geofm_core-6a7b3aae7d64122c.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/debug/deps/libgeofm_core-6a7b3aae7d64122c.rlib: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/debug/deps/libgeofm_core-6a7b3aae7d64122c.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/pipeline.rs:
crates/core/src/recipe.rs:
