/root/repo/target/debug/deps/geofm_mae-a6cd958bd1055928.d: crates/mae/src/lib.rs crates/mae/src/fewshot.rs crates/mae/src/finetune.rs crates/mae/src/mask.rs crates/mae/src/model.rs crates/mae/src/pretrain.rs crates/mae/src/probe.rs crates/mae/src/segmentation.rs

/root/repo/target/debug/deps/libgeofm_mae-a6cd958bd1055928.rmeta: crates/mae/src/lib.rs crates/mae/src/fewshot.rs crates/mae/src/finetune.rs crates/mae/src/mask.rs crates/mae/src/model.rs crates/mae/src/pretrain.rs crates/mae/src/probe.rs crates/mae/src/segmentation.rs

crates/mae/src/lib.rs:
crates/mae/src/fewshot.rs:
crates/mae/src/finetune.rs:
crates/mae/src/mask.rs:
crates/mae/src/model.rs:
crates/mae/src/pretrain.rs:
crates/mae/src/probe.rs:
crates/mae/src/segmentation.rs:
