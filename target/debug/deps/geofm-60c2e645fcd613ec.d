/root/repo/target/debug/deps/geofm-60c2e645fcd613ec.d: src/lib.rs

/root/repo/target/debug/deps/geofm-60c2e645fcd613ec: src/lib.rs

src/lib.rs:
