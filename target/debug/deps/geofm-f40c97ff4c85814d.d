/root/repo/target/debug/deps/geofm-f40c97ff4c85814d.d: src/lib.rs

/root/repo/target/debug/deps/libgeofm-f40c97ff4c85814d.rlib: src/lib.rs

/root/repo/target/debug/deps/libgeofm-f40c97ff4c85814d.rmeta: src/lib.rs

src/lib.rs:
