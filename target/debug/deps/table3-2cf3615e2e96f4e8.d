/root/repo/target/debug/deps/table3-2cf3615e2e96f4e8.d: crates/repro/src/bin/table3.rs

/root/repo/target/debug/deps/table3-2cf3615e2e96f4e8: crates/repro/src/bin/table3.rs

crates/repro/src/bin/table3.rs:
