/root/repo/target/debug/deps/fig2-e50944facc8b1638.d: crates/repro/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-e50944facc8b1638: crates/repro/src/bin/fig2.rs

crates/repro/src/bin/fig2.rs:
