/root/repo/target/debug/deps/checkpoint_corruption-75e5db13eed1b392.d: tests/checkpoint_corruption.rs

/root/repo/target/debug/deps/checkpoint_corruption-75e5db13eed1b392: tests/checkpoint_corruption.rs

tests/checkpoint_corruption.rs:
