/root/repo/target/debug/deps/geofm_resilience-2db42cf7a1311196.d: crates/resilience/src/lib.rs crates/resilience/src/ckpt.rs crates/resilience/src/fault.rs crates/resilience/src/mtbf.rs

/root/repo/target/debug/deps/libgeofm_resilience-2db42cf7a1311196.rlib: crates/resilience/src/lib.rs crates/resilience/src/ckpt.rs crates/resilience/src/fault.rs crates/resilience/src/mtbf.rs

/root/repo/target/debug/deps/libgeofm_resilience-2db42cf7a1311196.rmeta: crates/resilience/src/lib.rs crates/resilience/src/ckpt.rs crates/resilience/src/fault.rs crates/resilience/src/mtbf.rs

crates/resilience/src/lib.rs:
crates/resilience/src/ckpt.rs:
crates/resilience/src/fault.rs:
crates/resilience/src/mtbf.rs:
