/root/repo/target/debug/deps/geofm_core-2fe331d6999d2220.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/debug/deps/libgeofm_core-2fe331d6999d2220.rlib: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/debug/deps/libgeofm_core-2fe331d6999d2220.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/pipeline.rs:
crates/core/src/recipe.rs:
