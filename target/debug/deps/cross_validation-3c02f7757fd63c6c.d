/root/repo/target/debug/deps/cross_validation-3c02f7757fd63c6c.d: tests/cross_validation.rs

/root/repo/target/debug/deps/cross_validation-3c02f7757fd63c6c: tests/cross_validation.rs

tests/cross_validation.rs:
