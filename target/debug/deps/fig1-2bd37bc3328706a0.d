/root/repo/target/debug/deps/fig1-2bd37bc3328706a0.d: crates/repro/src/bin/fig1.rs Cargo.toml

/root/repo/target/debug/deps/libfig1-2bd37bc3328706a0.rmeta: crates/repro/src/bin/fig1.rs Cargo.toml

crates/repro/src/bin/fig1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
