/root/repo/target/debug/deps/table1-50aade05571c80f3.d: crates/repro/src/bin/table1.rs Cargo.toml

/root/repo/target/debug/deps/libtable1-50aade05571c80f3.rmeta: crates/repro/src/bin/table1.rs Cargo.toml

crates/repro/src/bin/table1.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
