/root/repo/target/debug/deps/geofm_fsdp-9856009b53ca2ced.d: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

/root/repo/target/debug/deps/libgeofm_fsdp-9856009b53ca2ced.rmeta: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

crates/fsdp/src/lib.rs:
crates/fsdp/src/flat.rs:
crates/fsdp/src/rank.rs:
crates/fsdp/src/strategy.rs:
crates/fsdp/src/trainer.rs:
