/root/repo/target/debug/deps/fig1-ade28d4aa23c9587.d: crates/repro/src/bin/fig1.rs

/root/repo/target/debug/deps/fig1-ade28d4aa23c9587: crates/repro/src/bin/fig1.rs

crates/repro/src/bin/fig1.rs:
