/root/repo/target/debug/deps/resilience-54bc77cb5a36309c.d: tests/resilience.rs

/root/repo/target/debug/deps/resilience-54bc77cb5a36309c: tests/resilience.rs

tests/resilience.rs:
