/root/repo/target/debug/deps/telemetry_determinism-01972f94d97cd7ab.d: tests/telemetry_determinism.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_determinism-01972f94d97cd7ab.rmeta: tests/telemetry_determinism.rs Cargo.toml

tests/telemetry_determinism.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
