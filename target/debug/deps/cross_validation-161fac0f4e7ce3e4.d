/root/repo/target/debug/deps/cross_validation-161fac0f4e7ce3e4.d: tests/cross_validation.rs

/root/repo/target/debug/deps/cross_validation-161fac0f4e7ce3e4: tests/cross_validation.rs

tests/cross_validation.rs:
