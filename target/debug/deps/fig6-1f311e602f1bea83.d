/root/repo/target/debug/deps/fig6-1f311e602f1bea83.d: crates/repro/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-1f311e602f1bea83: crates/repro/src/bin/fig6.rs

crates/repro/src/bin/fig6.rs:
