/root/repo/target/debug/deps/fig6-70b045857e5f5735.d: crates/repro/src/bin/fig6.rs

/root/repo/target/debug/deps/libfig6-70b045857e5f5735.rmeta: crates/repro/src/bin/fig6.rs

crates/repro/src/bin/fig6.rs:
