/root/repo/target/debug/deps/proptest-83059fd3049a7657.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-83059fd3049a7657.rlib: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/libproptest-83059fd3049a7657.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
