/root/repo/target/debug/deps/simulator-d4bf3a2fabe50ed1.d: crates/bench/benches/simulator.rs Cargo.toml

/root/repo/target/debug/deps/libsimulator-d4bf3a2fabe50ed1.rmeta: crates/bench/benches/simulator.rs Cargo.toml

crates/bench/benches/simulator.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
