/root/repo/target/debug/deps/table2-a61427dd181559c3.d: crates/repro/src/bin/table2.rs

/root/repo/target/debug/deps/table2-a61427dd181559c3: crates/repro/src/bin/table2.rs

crates/repro/src/bin/table2.rs:
