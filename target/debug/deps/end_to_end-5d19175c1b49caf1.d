/root/repo/target/debug/deps/end_to_end-5d19175c1b49caf1.d: tests/end_to_end.rs

/root/repo/target/debug/deps/end_to_end-5d19175c1b49caf1: tests/end_to_end.rs

tests/end_to_end.rs:
