/root/repo/target/debug/deps/geofm_data-6ca1975289c5f267.d: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

/root/repo/target/debug/deps/geofm_data-6ca1975289c5f267: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

crates/data/src/lib.rs:
crates/data/src/datasets.rs:
crates/data/src/loader.rs:
crates/data/src/scene.rs:
