/root/repo/target/debug/deps/geofm-3c98beeb1ed58559.d: src/lib.rs

/root/repo/target/debug/deps/libgeofm-3c98beeb1ed58559.rmeta: src/lib.rs

src/lib.rs:
