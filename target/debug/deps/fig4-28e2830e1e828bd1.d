/root/repo/target/debug/deps/fig4-28e2830e1e828bd1.d: crates/repro/src/bin/fig4.rs Cargo.toml

/root/repo/target/debug/deps/libfig4-28e2830e1e828bd1.rmeta: crates/repro/src/bin/fig4.rs Cargo.toml

crates/repro/src/bin/fig4.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
