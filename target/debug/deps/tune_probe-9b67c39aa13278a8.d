/root/repo/target/debug/deps/tune_probe-9b67c39aa13278a8.d: crates/repro/src/bin/tune_probe.rs Cargo.toml

/root/repo/target/debug/deps/libtune_probe-9b67c39aa13278a8.rmeta: crates/repro/src/bin/tune_probe.rs Cargo.toml

crates/repro/src/bin/tune_probe.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
