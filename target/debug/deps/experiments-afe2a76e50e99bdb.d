/root/repo/target/debug/deps/experiments-afe2a76e50e99bdb.d: tests/experiments.rs

/root/repo/target/debug/deps/experiments-afe2a76e50e99bdb: tests/experiments.rs

tests/experiments.rs:
