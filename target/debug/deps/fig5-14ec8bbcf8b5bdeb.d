/root/repo/target/debug/deps/fig5-14ec8bbcf8b5bdeb.d: crates/repro/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-14ec8bbcf8b5bdeb: crates/repro/src/bin/fig5.rs

crates/repro/src/bin/fig5.rs:
