/root/repo/target/debug/deps/geofm_repro-863ba2f41f821bc9.d: crates/repro/src/lib.rs

/root/repo/target/debug/deps/libgeofm_repro-863ba2f41f821bc9.rmeta: crates/repro/src/lib.rs

crates/repro/src/lib.rs:
