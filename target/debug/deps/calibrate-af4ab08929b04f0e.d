/root/repo/target/debug/deps/calibrate-af4ab08929b04f0e.d: crates/repro/src/bin/calibrate.rs

/root/repo/target/debug/deps/calibrate-af4ab08929b04f0e: crates/repro/src/bin/calibrate.rs

crates/repro/src/bin/calibrate.rs:
