/root/repo/target/debug/deps/table3-fb070f230b0dd638.d: crates/repro/src/bin/table3.rs Cargo.toml

/root/repo/target/debug/deps/libtable3-fb070f230b0dd638.rmeta: crates/repro/src/bin/table3.rs Cargo.toml

crates/repro/src/bin/table3.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
