/root/repo/target/debug/deps/fig5-a013ef2070030d31.d: crates/repro/src/bin/fig5.rs

/root/repo/target/debug/deps/fig5-a013ef2070030d31: crates/repro/src/bin/fig5.rs

crates/repro/src/bin/fig5.rs:
