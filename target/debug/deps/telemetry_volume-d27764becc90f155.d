/root/repo/target/debug/deps/telemetry_volume-d27764becc90f155.d: tests/telemetry_volume.rs Cargo.toml

/root/repo/target/debug/deps/libtelemetry_volume-d27764becc90f155.rmeta: tests/telemetry_volume.rs Cargo.toml

tests/telemetry_volume.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
