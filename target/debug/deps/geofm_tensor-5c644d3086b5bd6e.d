/root/repo/target/debug/deps/geofm_tensor-5c644d3086b5bd6e.d: crates/tensor/src/lib.rs crates/tensor/src/matmul.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/tensor.rs

/root/repo/target/debug/deps/geofm_tensor-5c644d3086b5bd6e: crates/tensor/src/lib.rs crates/tensor/src/matmul.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/random.rs:
crates/tensor/src/tensor.rs:
