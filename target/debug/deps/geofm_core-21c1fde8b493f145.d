/root/repo/target/debug/deps/geofm_core-21c1fde8b493f145.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/debug/deps/geofm_core-21c1fde8b493f145: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/pipeline.rs:
crates/core/src/recipe.rs:
