/root/repo/target/debug/deps/geofm_vit-a22755262f807971.d: crates/vit/src/lib.rs crates/vit/src/config.rs crates/vit/src/flops.rs crates/vit/src/model.rs

/root/repo/target/debug/deps/libgeofm_vit-a22755262f807971.rmeta: crates/vit/src/lib.rs crates/vit/src/config.rs crates/vit/src/flops.rs crates/vit/src/model.rs

crates/vit/src/lib.rs:
crates/vit/src/config.rs:
crates/vit/src/flops.rs:
crates/vit/src/model.rs:
