/root/repo/target/debug/deps/proptests-a9894aea15a9b10e.d: crates/tensor/tests/proptests.rs

/root/repo/target/debug/deps/libproptests-a9894aea15a9b10e.rmeta: crates/tensor/tests/proptests.rs

crates/tensor/tests/proptests.rs:
