/root/repo/target/debug/deps/fig5-812f4e968a1b7fd5.d: crates/repro/src/bin/fig5.rs Cargo.toml

/root/repo/target/debug/deps/libfig5-812f4e968a1b7fd5.rmeta: crates/repro/src/bin/fig5.rs Cargo.toml

crates/repro/src/bin/fig5.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
