/root/repo/target/debug/deps/telemetry_volume-a64700efd635705d.d: tests/telemetry_volume.rs

/root/repo/target/debug/deps/libtelemetry_volume-a64700efd635705d.rmeta: tests/telemetry_volume.rs

tests/telemetry_volume.rs:
