/root/repo/target/debug/deps/criterion-e3c126b010076f39.d: shims/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-e3c126b010076f39.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
