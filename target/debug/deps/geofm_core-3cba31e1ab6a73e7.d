/root/repo/target/debug/deps/geofm_core-3cba31e1ab6a73e7.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/debug/deps/libgeofm_core-3cba31e1ab6a73e7.rlib: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/debug/deps/libgeofm_core-3cba31e1ab6a73e7.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/pipeline.rs:
crates/core/src/recipe.rs:
