/root/repo/target/debug/deps/geofm_bench-5b4191f09aac46c1.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libgeofm_bench-5b4191f09aac46c1.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
