/root/repo/target/debug/deps/proptest-f30080f8b22552f3.d: shims/proptest/src/lib.rs

/root/repo/target/debug/deps/proptest-f30080f8b22552f3: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
