/root/repo/target/debug/deps/proptests-094d02cc7363add7.d: crates/frontier/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-094d02cc7363add7.rmeta: crates/frontier/tests/proptests.rs Cargo.toml

crates/frontier/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
