/root/repo/target/debug/deps/fig2-2e1e3134d7fc6b13.d: crates/repro/src/bin/fig2.rs

/root/repo/target/debug/deps/fig2-2e1e3134d7fc6b13: crates/repro/src/bin/fig2.rs

crates/repro/src/bin/fig2.rs:
