/root/repo/target/debug/deps/geofm_data-1189a01def4e4603.d: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_data-1189a01def4e4603.rmeta: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs Cargo.toml

crates/data/src/lib.rs:
crates/data/src/datasets.rs:
crates/data/src/loader.rs:
crates/data/src/scene.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
