/root/repo/target/debug/deps/fig1-bde4a8662cfc6937.d: crates/repro/src/bin/fig1.rs

/root/repo/target/debug/deps/libfig1-bde4a8662cfc6937.rmeta: crates/repro/src/bin/fig1.rs

crates/repro/src/bin/fig1.rs:
