/root/repo/target/debug/deps/geofm_bench-b748945b0308c5c2.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_bench-b748945b0308c5c2.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
