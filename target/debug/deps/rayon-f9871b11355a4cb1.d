/root/repo/target/debug/deps/rayon-f9871b11355a4cb1.d: shims/rayon/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librayon-f9871b11355a4cb1.rmeta: shims/rayon/src/lib.rs Cargo.toml

shims/rayon/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
