/root/repo/target/debug/deps/proptests-9349f618a5e600bb.d: crates/nn/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-9349f618a5e600bb.rmeta: crates/nn/tests/proptests.rs Cargo.toml

crates/nn/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
