/root/repo/target/debug/deps/geofm-4af1aca1b90f20cf.d: src/lib.rs

/root/repo/target/debug/deps/geofm-4af1aca1b90f20cf: src/lib.rs

src/lib.rs:
