/root/repo/target/debug/deps/geofm_collectives-666a5cfa7d62e719.d: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/group.rs crates/collectives/src/hierarchy.rs crates/collectives/src/ring.rs crates/collectives/src/traffic.rs Cargo.toml

/root/repo/target/debug/deps/libgeofm_collectives-666a5cfa7d62e719.rmeta: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/group.rs crates/collectives/src/hierarchy.rs crates/collectives/src/ring.rs crates/collectives/src/traffic.rs Cargo.toml

crates/collectives/src/lib.rs:
crates/collectives/src/barrier.rs:
crates/collectives/src/group.rs:
crates/collectives/src/hierarchy.rs:
crates/collectives/src/ring.rs:
crates/collectives/src/traffic.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
