/root/repo/target/debug/deps/geofm_collectives-8e4e61bc986d2551.d: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/group.rs crates/collectives/src/hierarchy.rs crates/collectives/src/ring.rs crates/collectives/src/traffic.rs

/root/repo/target/debug/deps/libgeofm_collectives-8e4e61bc986d2551.rmeta: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/group.rs crates/collectives/src/hierarchy.rs crates/collectives/src/ring.rs crates/collectives/src/traffic.rs

crates/collectives/src/lib.rs:
crates/collectives/src/barrier.rs:
crates/collectives/src/group.rs:
crates/collectives/src/hierarchy.rs:
crates/collectives/src/ring.rs:
crates/collectives/src/traffic.rs:
