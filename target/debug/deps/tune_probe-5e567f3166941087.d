/root/repo/target/debug/deps/tune_probe-5e567f3166941087.d: crates/repro/src/bin/tune_probe.rs

/root/repo/target/debug/deps/libtune_probe-5e567f3166941087.rmeta: crates/repro/src/bin/tune_probe.rs

crates/repro/src/bin/tune_probe.rs:
