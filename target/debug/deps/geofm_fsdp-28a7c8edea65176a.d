/root/repo/target/debug/deps/geofm_fsdp-28a7c8edea65176a.d: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

/root/repo/target/debug/deps/libgeofm_fsdp-28a7c8edea65176a.rlib: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

/root/repo/target/debug/deps/libgeofm_fsdp-28a7c8edea65176a.rmeta: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

crates/fsdp/src/lib.rs:
crates/fsdp/src/flat.rs:
crates/fsdp/src/rank.rs:
crates/fsdp/src/strategy.rs:
crates/fsdp/src/trainer.rs:
