/root/repo/target/debug/deps/proptests-d2cda8f7828333a4.d: crates/fsdp/tests/proptests.rs

/root/repo/target/debug/deps/proptests-d2cda8f7828333a4: crates/fsdp/tests/proptests.rs

crates/fsdp/tests/proptests.rs:
