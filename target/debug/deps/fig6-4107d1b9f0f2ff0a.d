/root/repo/target/debug/deps/fig6-4107d1b9f0f2ff0a.d: crates/repro/src/bin/fig6.rs

/root/repo/target/debug/deps/fig6-4107d1b9f0f2ff0a: crates/repro/src/bin/fig6.rs

crates/repro/src/bin/fig6.rs:
