/root/repo/target/debug/deps/geofm_data-cf9269074f3791ef.d: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

/root/repo/target/debug/deps/libgeofm_data-cf9269074f3791ef.rmeta: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

crates/data/src/lib.rs:
crates/data/src/datasets.rs:
crates/data/src/loader.rs:
crates/data/src/scene.rs:
