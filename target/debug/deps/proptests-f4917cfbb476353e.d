/root/repo/target/debug/deps/proptests-f4917cfbb476353e.d: crates/collectives/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-f4917cfbb476353e.rmeta: crates/collectives/tests/proptests.rs Cargo.toml

crates/collectives/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
