/root/repo/target/debug/deps/proptests-1e26f68842d2956d.d: crates/fsdp/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-1e26f68842d2956d.rmeta: crates/fsdp/tests/proptests.rs Cargo.toml

crates/fsdp/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
