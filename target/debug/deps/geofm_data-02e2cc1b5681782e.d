/root/repo/target/debug/deps/geofm_data-02e2cc1b5681782e.d: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

/root/repo/target/debug/deps/geofm_data-02e2cc1b5681782e: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

crates/data/src/lib.rs:
crates/data/src/datasets.rs:
crates/data/src/loader.rs:
crates/data/src/scene.rs:
