/root/repo/target/debug/deps/telemetry_volume-8895b2f22c232181.d: tests/telemetry_volume.rs

/root/repo/target/debug/deps/telemetry_volume-8895b2f22c232181: tests/telemetry_volume.rs

tests/telemetry_volume.rs:
