/root/repo/target/debug/deps/geofm_collectives-eb5207fee4087ce0.d: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/group.rs crates/collectives/src/hierarchy.rs crates/collectives/src/ring.rs crates/collectives/src/traffic.rs

/root/repo/target/debug/deps/geofm_collectives-eb5207fee4087ce0: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/group.rs crates/collectives/src/hierarchy.rs crates/collectives/src/ring.rs crates/collectives/src/traffic.rs

crates/collectives/src/lib.rs:
crates/collectives/src/barrier.rs:
crates/collectives/src/group.rs:
crates/collectives/src/hierarchy.rs:
crates/collectives/src/ring.rs:
crates/collectives/src/traffic.rs:
