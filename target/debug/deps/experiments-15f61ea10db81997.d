/root/repo/target/debug/deps/experiments-15f61ea10db81997.d: tests/experiments.rs

/root/repo/target/debug/deps/experiments-15f61ea10db81997: tests/experiments.rs

tests/experiments.rs:
