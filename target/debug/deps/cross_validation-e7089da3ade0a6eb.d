/root/repo/target/debug/deps/cross_validation-e7089da3ade0a6eb.d: tests/cross_validation.rs Cargo.toml

/root/repo/target/debug/deps/libcross_validation-e7089da3ade0a6eb.rmeta: tests/cross_validation.rs Cargo.toml

tests/cross_validation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
