/root/repo/target/debug/deps/geofm_repro-2481f2edfce5c67f.d: crates/repro/src/lib.rs

/root/repo/target/debug/deps/libgeofm_repro-2481f2edfce5c67f.rlib: crates/repro/src/lib.rs

/root/repo/target/debug/deps/libgeofm_repro-2481f2edfce5c67f.rmeta: crates/repro/src/lib.rs

crates/repro/src/lib.rs:
