/root/repo/target/debug/deps/geofm_fsdp-71abf9254c0c5c35.d: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

/root/repo/target/debug/deps/libgeofm_fsdp-71abf9254c0c5c35.rmeta: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

crates/fsdp/src/lib.rs:
crates/fsdp/src/flat.rs:
crates/fsdp/src/rank.rs:
crates/fsdp/src/strategy.rs:
crates/fsdp/src/trainer.rs:
