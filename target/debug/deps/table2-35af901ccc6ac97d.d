/root/repo/target/debug/deps/table2-35af901ccc6ac97d.d: crates/repro/src/bin/table2.rs Cargo.toml

/root/repo/target/debug/deps/libtable2-35af901ccc6ac97d.rmeta: crates/repro/src/bin/table2.rs Cargo.toml

crates/repro/src/bin/table2.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
