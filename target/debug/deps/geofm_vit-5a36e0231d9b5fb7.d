/root/repo/target/debug/deps/geofm_vit-5a36e0231d9b5fb7.d: crates/vit/src/lib.rs crates/vit/src/config.rs crates/vit/src/flops.rs crates/vit/src/model.rs

/root/repo/target/debug/deps/libgeofm_vit-5a36e0231d9b5fb7.rlib: crates/vit/src/lib.rs crates/vit/src/config.rs crates/vit/src/flops.rs crates/vit/src/model.rs

/root/repo/target/debug/deps/libgeofm_vit-5a36e0231d9b5fb7.rmeta: crates/vit/src/lib.rs crates/vit/src/config.rs crates/vit/src/flops.rs crates/vit/src/model.rs

crates/vit/src/lib.rs:
crates/vit/src/config.rs:
crates/vit/src/flops.rs:
crates/vit/src/model.rs:
