/root/repo/target/debug/deps/table2-61444dbf85f297b0.d: crates/repro/src/bin/table2.rs

/root/repo/target/debug/deps/table2-61444dbf85f297b0: crates/repro/src/bin/table2.rs

crates/repro/src/bin/table2.rs:
