/root/repo/target/debug/deps/geofm_fsdp-18b651787ab8f881.d: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

/root/repo/target/debug/deps/geofm_fsdp-18b651787ab8f881: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

crates/fsdp/src/lib.rs:
crates/fsdp/src/flat.rs:
crates/fsdp/src/rank.rs:
crates/fsdp/src/strategy.rs:
crates/fsdp/src/trainer.rs:
