/root/repo/target/debug/deps/fsdp_step-890bde3ba89deff6.d: crates/bench/benches/fsdp_step.rs

/root/repo/target/debug/deps/libfsdp_step-890bde3ba89deff6.rmeta: crates/bench/benches/fsdp_step.rs

crates/bench/benches/fsdp_step.rs:
