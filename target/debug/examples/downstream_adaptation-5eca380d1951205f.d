/root/repo/target/debug/examples/downstream_adaptation-5eca380d1951205f.d: examples/downstream_adaptation.rs Cargo.toml

/root/repo/target/debug/examples/libdownstream_adaptation-5eca380d1951205f.rmeta: examples/downstream_adaptation.rs Cargo.toml

examples/downstream_adaptation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
