/root/repo/target/debug/examples/frontier_scaling-01ac6f895724fa57.d: examples/frontier_scaling.rs

/root/repo/target/debug/examples/frontier_scaling-01ac6f895724fa57: examples/frontier_scaling.rs

examples/frontier_scaling.rs:
