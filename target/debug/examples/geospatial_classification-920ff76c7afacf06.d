/root/repo/target/debug/examples/geospatial_classification-920ff76c7afacf06.d: examples/geospatial_classification.rs Cargo.toml

/root/repo/target/debug/examples/libgeospatial_classification-920ff76c7afacf06.rmeta: examples/geospatial_classification.rs Cargo.toml

examples/geospatial_classification.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
