/root/repo/target/debug/examples/frontier_scaling-e619ef476a7c97df.d: examples/frontier_scaling.rs

/root/repo/target/debug/examples/frontier_scaling-e619ef476a7c97df: examples/frontier_scaling.rs

examples/frontier_scaling.rs:
