/root/repo/target/debug/examples/frontier_scaling-234a30bd4b32cb94.d: examples/frontier_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libfrontier_scaling-234a30bd4b32cb94.rmeta: examples/frontier_scaling.rs Cargo.toml

examples/frontier_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
