/root/repo/target/debug/examples/frontier_scaling-b89e510ed9df55c1.d: examples/frontier_scaling.rs Cargo.toml

/root/repo/target/debug/examples/libfrontier_scaling-b89e510ed9df55c1.rmeta: examples/frontier_scaling.rs Cargo.toml

examples/frontier_scaling.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
