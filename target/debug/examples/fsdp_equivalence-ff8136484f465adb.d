/root/repo/target/debug/examples/fsdp_equivalence-ff8136484f465adb.d: examples/fsdp_equivalence.rs Cargo.toml

/root/repo/target/debug/examples/libfsdp_equivalence-ff8136484f465adb.rmeta: examples/fsdp_equivalence.rs Cargo.toml

examples/fsdp_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
