/root/repo/target/debug/examples/downstream_adaptation-cbe621b574d6b2f6.d: examples/downstream_adaptation.rs

/root/repo/target/debug/examples/downstream_adaptation-cbe621b574d6b2f6: examples/downstream_adaptation.rs

examples/downstream_adaptation.rs:
