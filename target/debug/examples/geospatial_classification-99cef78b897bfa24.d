/root/repo/target/debug/examples/geospatial_classification-99cef78b897bfa24.d: examples/geospatial_classification.rs

/root/repo/target/debug/examples/geospatial_classification-99cef78b897bfa24: examples/geospatial_classification.rs

examples/geospatial_classification.rs:
