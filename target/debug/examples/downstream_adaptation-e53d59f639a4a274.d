/root/repo/target/debug/examples/downstream_adaptation-e53d59f639a4a274.d: examples/downstream_adaptation.rs

/root/repo/target/debug/examples/libdownstream_adaptation-e53d59f639a4a274.rmeta: examples/downstream_adaptation.rs

examples/downstream_adaptation.rs:
