/root/repo/target/debug/examples/geospatial_classification-9d2c6c5051185ea0.d: examples/geospatial_classification.rs

/root/repo/target/debug/examples/geospatial_classification-9d2c6c5051185ea0: examples/geospatial_classification.rs

examples/geospatial_classification.rs:
