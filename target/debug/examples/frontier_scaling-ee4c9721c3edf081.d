/root/repo/target/debug/examples/frontier_scaling-ee4c9721c3edf081.d: examples/frontier_scaling.rs

/root/repo/target/debug/examples/frontier_scaling-ee4c9721c3edf081: examples/frontier_scaling.rs

examples/frontier_scaling.rs:
