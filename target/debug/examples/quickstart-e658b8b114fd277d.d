/root/repo/target/debug/examples/quickstart-e658b8b114fd277d.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-e658b8b114fd277d.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
