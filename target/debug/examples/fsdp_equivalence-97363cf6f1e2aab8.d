/root/repo/target/debug/examples/fsdp_equivalence-97363cf6f1e2aab8.d: examples/fsdp_equivalence.rs

/root/repo/target/debug/examples/fsdp_equivalence-97363cf6f1e2aab8: examples/fsdp_equivalence.rs

examples/fsdp_equivalence.rs:
