/root/repo/target/debug/examples/downstream_adaptation-2764fab2a4f8b72e.d: examples/downstream_adaptation.rs

/root/repo/target/debug/examples/downstream_adaptation-2764fab2a4f8b72e: examples/downstream_adaptation.rs

examples/downstream_adaptation.rs:
