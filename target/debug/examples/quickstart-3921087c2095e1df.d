/root/repo/target/debug/examples/quickstart-3921087c2095e1df.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-3921087c2095e1df: examples/quickstart.rs

examples/quickstart.rs:
