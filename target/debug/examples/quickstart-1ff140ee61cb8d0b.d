/root/repo/target/debug/examples/quickstart-1ff140ee61cb8d0b.d: examples/quickstart.rs

/root/repo/target/debug/examples/libquickstart-1ff140ee61cb8d0b.rmeta: examples/quickstart.rs

examples/quickstart.rs:
