/root/repo/target/debug/examples/downstream_adaptation-8a68f2a380817109.d: examples/downstream_adaptation.rs

/root/repo/target/debug/examples/downstream_adaptation-8a68f2a380817109: examples/downstream_adaptation.rs

examples/downstream_adaptation.rs:
