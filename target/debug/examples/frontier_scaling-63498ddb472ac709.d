/root/repo/target/debug/examples/frontier_scaling-63498ddb472ac709.d: examples/frontier_scaling.rs

/root/repo/target/debug/examples/libfrontier_scaling-63498ddb472ac709.rmeta: examples/frontier_scaling.rs

examples/frontier_scaling.rs:
