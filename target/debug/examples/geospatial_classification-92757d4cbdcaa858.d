/root/repo/target/debug/examples/geospatial_classification-92757d4cbdcaa858.d: examples/geospatial_classification.rs

/root/repo/target/debug/examples/geospatial_classification-92757d4cbdcaa858: examples/geospatial_classification.rs

examples/geospatial_classification.rs:
