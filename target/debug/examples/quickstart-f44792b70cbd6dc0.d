/root/repo/target/debug/examples/quickstart-f44792b70cbd6dc0.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-f44792b70cbd6dc0: examples/quickstart.rs

examples/quickstart.rs:
