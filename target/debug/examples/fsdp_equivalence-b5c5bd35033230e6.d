/root/repo/target/debug/examples/fsdp_equivalence-b5c5bd35033230e6.d: examples/fsdp_equivalence.rs

/root/repo/target/debug/examples/fsdp_equivalence-b5c5bd35033230e6: examples/fsdp_equivalence.rs

examples/fsdp_equivalence.rs:
