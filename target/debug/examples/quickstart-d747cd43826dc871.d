/root/repo/target/debug/examples/quickstart-d747cd43826dc871.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-d747cd43826dc871: examples/quickstart.rs

examples/quickstart.rs:
