/root/repo/target/debug/examples/geospatial_classification-477e5832ece7c0a5.d: examples/geospatial_classification.rs

/root/repo/target/debug/examples/libgeospatial_classification-477e5832ece7c0a5.rmeta: examples/geospatial_classification.rs

examples/geospatial_classification.rs:
