/root/repo/target/debug/examples/fsdp_equivalence-33a13becf266d9d9.d: examples/fsdp_equivalence.rs Cargo.toml

/root/repo/target/debug/examples/libfsdp_equivalence-33a13becf266d9d9.rmeta: examples/fsdp_equivalence.rs Cargo.toml

examples/fsdp_equivalence.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
