/root/repo/target/debug/examples/fsdp_equivalence-c512b8187a8b356d.d: examples/fsdp_equivalence.rs

/root/repo/target/debug/examples/libfsdp_equivalence-c512b8187a8b356d.rmeta: examples/fsdp_equivalence.rs

examples/fsdp_equivalence.rs:
