/root/repo/target/debug/examples/fsdp_equivalence-5367a4adf7417205.d: examples/fsdp_equivalence.rs

/root/repo/target/debug/examples/fsdp_equivalence-5367a4adf7417205: examples/fsdp_equivalence.rs

examples/fsdp_equivalence.rs:
