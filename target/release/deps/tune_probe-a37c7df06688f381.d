/root/repo/target/release/deps/tune_probe-a37c7df06688f381.d: crates/repro/src/bin/tune_probe.rs

/root/repo/target/release/deps/tune_probe-a37c7df06688f381: crates/repro/src/bin/tune_probe.rs

crates/repro/src/bin/tune_probe.rs:
