/root/repo/target/release/deps/fig4-1cded5a3d804cb4a.d: crates/repro/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-1cded5a3d804cb4a: crates/repro/src/bin/fig4.rs

crates/repro/src/bin/fig4.rs:
