/root/repo/target/release/deps/geofm_core-8352d9ffe9e24498.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/release/deps/libgeofm_core-8352d9ffe9e24498.rlib: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/release/deps/libgeofm_core-8352d9ffe9e24498.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/pipeline.rs:
crates/core/src/recipe.rs:
