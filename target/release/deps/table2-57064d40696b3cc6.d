/root/repo/target/release/deps/table2-57064d40696b3cc6.d: crates/repro/src/bin/table2.rs

/root/repo/target/release/deps/table2-57064d40696b3cc6: crates/repro/src/bin/table2.rs

crates/repro/src/bin/table2.rs:
