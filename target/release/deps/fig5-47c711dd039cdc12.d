/root/repo/target/release/deps/fig5-47c711dd039cdc12.d: crates/repro/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-47c711dd039cdc12: crates/repro/src/bin/fig5.rs

crates/repro/src/bin/fig5.rs:
