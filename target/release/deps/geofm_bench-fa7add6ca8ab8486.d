/root/repo/target/release/deps/geofm_bench-fa7add6ca8ab8486.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgeofm_bench-fa7add6ca8ab8486.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgeofm_bench-fa7add6ca8ab8486.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
