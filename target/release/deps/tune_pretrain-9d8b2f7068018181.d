/root/repo/target/release/deps/tune_pretrain-9d8b2f7068018181.d: crates/repro/src/bin/tune_pretrain.rs

/root/repo/target/release/deps/tune_pretrain-9d8b2f7068018181: crates/repro/src/bin/tune_pretrain.rs

crates/repro/src/bin/tune_pretrain.rs:
