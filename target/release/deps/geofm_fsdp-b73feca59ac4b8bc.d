/root/repo/target/release/deps/geofm_fsdp-b73feca59ac4b8bc.d: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

/root/repo/target/release/deps/libgeofm_fsdp-b73feca59ac4b8bc.rlib: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

/root/repo/target/release/deps/libgeofm_fsdp-b73feca59ac4b8bc.rmeta: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

crates/fsdp/src/lib.rs:
crates/fsdp/src/flat.rs:
crates/fsdp/src/rank.rs:
crates/fsdp/src/strategy.rs:
crates/fsdp/src/trainer.rs:
