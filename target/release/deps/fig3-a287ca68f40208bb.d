/root/repo/target/release/deps/fig3-a287ca68f40208bb.d: crates/repro/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-a287ca68f40208bb: crates/repro/src/bin/fig3.rs

crates/repro/src/bin/fig3.rs:
