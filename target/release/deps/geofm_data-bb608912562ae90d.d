/root/repo/target/release/deps/geofm_data-bb608912562ae90d.d: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

/root/repo/target/release/deps/libgeofm_data-bb608912562ae90d.rlib: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

/root/repo/target/release/deps/libgeofm_data-bb608912562ae90d.rmeta: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

crates/data/src/lib.rs:
crates/data/src/datasets.rs:
crates/data/src/loader.rs:
crates/data/src/scene.rs:
