/root/repo/target/release/deps/geofm_repro-b6d3ddb7f9a0d9d8.d: crates/repro/src/lib.rs

/root/repo/target/release/deps/libgeofm_repro-b6d3ddb7f9a0d9d8.rlib: crates/repro/src/lib.rs

/root/repo/target/release/deps/libgeofm_repro-b6d3ddb7f9a0d9d8.rmeta: crates/repro/src/lib.rs

crates/repro/src/lib.rs:
