/root/repo/target/release/deps/fig1-66b5d5204d23d534.d: crates/repro/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-66b5d5204d23d534: crates/repro/src/bin/fig1.rs

crates/repro/src/bin/fig1.rs:
