/root/repo/target/release/deps/tune_pretrain-de606117187d57e2.d: crates/repro/src/bin/tune_pretrain.rs

/root/repo/target/release/deps/tune_pretrain-de606117187d57e2: crates/repro/src/bin/tune_pretrain.rs

crates/repro/src/bin/tune_pretrain.rs:
