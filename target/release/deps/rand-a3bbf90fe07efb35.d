/root/repo/target/release/deps/rand-a3bbf90fe07efb35.d: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-a3bbf90fe07efb35.rlib: shims/rand/src/lib.rs

/root/repo/target/release/deps/librand-a3bbf90fe07efb35.rmeta: shims/rand/src/lib.rs

shims/rand/src/lib.rs:
