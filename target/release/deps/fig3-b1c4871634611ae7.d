/root/repo/target/release/deps/fig3-b1c4871634611ae7.d: crates/repro/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-b1c4871634611ae7: crates/repro/src/bin/fig3.rs

crates/repro/src/bin/fig3.rs:
