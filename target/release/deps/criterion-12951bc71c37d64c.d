/root/repo/target/release/deps/criterion-12951bc71c37d64c.d: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-12951bc71c37d64c.rlib: shims/criterion/src/lib.rs

/root/repo/target/release/deps/libcriterion-12951bc71c37d64c.rmeta: shims/criterion/src/lib.rs

shims/criterion/src/lib.rs:
