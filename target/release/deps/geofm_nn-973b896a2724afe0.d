/root/repo/target/release/deps/geofm_nn-973b896a2724afe0.d: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/attention.rs crates/nn/src/block.rs crates/nn/src/embed.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/norm.rs crates/nn/src/optim.rs crates/nn/src/param.rs crates/nn/src/schedule.rs

/root/repo/target/release/deps/libgeofm_nn-973b896a2724afe0.rlib: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/attention.rs crates/nn/src/block.rs crates/nn/src/embed.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/norm.rs crates/nn/src/optim.rs crates/nn/src/param.rs crates/nn/src/schedule.rs

/root/repo/target/release/deps/libgeofm_nn-973b896a2724afe0.rmeta: crates/nn/src/lib.rs crates/nn/src/activation.rs crates/nn/src/attention.rs crates/nn/src/block.rs crates/nn/src/embed.rs crates/nn/src/linear.rs crates/nn/src/loss.rs crates/nn/src/norm.rs crates/nn/src/optim.rs crates/nn/src/param.rs crates/nn/src/schedule.rs

crates/nn/src/lib.rs:
crates/nn/src/activation.rs:
crates/nn/src/attention.rs:
crates/nn/src/block.rs:
crates/nn/src/embed.rs:
crates/nn/src/linear.rs:
crates/nn/src/loss.rs:
crates/nn/src/norm.rs:
crates/nn/src/optim.rs:
crates/nn/src/param.rs:
crates/nn/src/schedule.rs:
