/root/repo/target/release/deps/table3-03dfb31c2657529f.d: crates/repro/src/bin/table3.rs

/root/repo/target/release/deps/table3-03dfb31c2657529f: crates/repro/src/bin/table3.rs

crates/repro/src/bin/table3.rs:
