/root/repo/target/release/deps/geofm_data-fade0a3a55555379.d: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

/root/repo/target/release/deps/libgeofm_data-fade0a3a55555379.rlib: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

/root/repo/target/release/deps/libgeofm_data-fade0a3a55555379.rmeta: crates/data/src/lib.rs crates/data/src/datasets.rs crates/data/src/loader.rs crates/data/src/scene.rs

crates/data/src/lib.rs:
crates/data/src/datasets.rs:
crates/data/src/loader.rs:
crates/data/src/scene.rs:
