/root/repo/target/release/deps/fig2-54463f59569e125d.d: crates/repro/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-54463f59569e125d: crates/repro/src/bin/fig2.rs

crates/repro/src/bin/fig2.rs:
