/root/repo/target/release/deps/geofm_collectives-fa474602c1f2818c.d: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/group.rs crates/collectives/src/hierarchy.rs crates/collectives/src/ring.rs crates/collectives/src/traffic.rs

/root/repo/target/release/deps/libgeofm_collectives-fa474602c1f2818c.rlib: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/group.rs crates/collectives/src/hierarchy.rs crates/collectives/src/ring.rs crates/collectives/src/traffic.rs

/root/repo/target/release/deps/libgeofm_collectives-fa474602c1f2818c.rmeta: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/group.rs crates/collectives/src/hierarchy.rs crates/collectives/src/ring.rs crates/collectives/src/traffic.rs

crates/collectives/src/lib.rs:
crates/collectives/src/barrier.rs:
crates/collectives/src/group.rs:
crates/collectives/src/hierarchy.rs:
crates/collectives/src/ring.rs:
crates/collectives/src/traffic.rs:
