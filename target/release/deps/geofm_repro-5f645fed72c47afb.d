/root/repo/target/release/deps/geofm_repro-5f645fed72c47afb.d: crates/repro/src/lib.rs

/root/repo/target/release/deps/libgeofm_repro-5f645fed72c47afb.rlib: crates/repro/src/lib.rs

/root/repo/target/release/deps/libgeofm_repro-5f645fed72c47afb.rmeta: crates/repro/src/lib.rs

crates/repro/src/lib.rs:
