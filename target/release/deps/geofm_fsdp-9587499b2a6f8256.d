/root/repo/target/release/deps/geofm_fsdp-9587499b2a6f8256.d: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

/root/repo/target/release/deps/libgeofm_fsdp-9587499b2a6f8256.rlib: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

/root/repo/target/release/deps/libgeofm_fsdp-9587499b2a6f8256.rmeta: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

crates/fsdp/src/lib.rs:
crates/fsdp/src/flat.rs:
crates/fsdp/src/rank.rs:
crates/fsdp/src/strategy.rs:
crates/fsdp/src/trainer.rs:
