/root/repo/target/release/deps/geofm_mae-65c14215a9a7eabc.d: crates/mae/src/lib.rs crates/mae/src/fewshot.rs crates/mae/src/finetune.rs crates/mae/src/mask.rs crates/mae/src/model.rs crates/mae/src/pretrain.rs crates/mae/src/probe.rs crates/mae/src/segmentation.rs

/root/repo/target/release/deps/libgeofm_mae-65c14215a9a7eabc.rlib: crates/mae/src/lib.rs crates/mae/src/fewshot.rs crates/mae/src/finetune.rs crates/mae/src/mask.rs crates/mae/src/model.rs crates/mae/src/pretrain.rs crates/mae/src/probe.rs crates/mae/src/segmentation.rs

/root/repo/target/release/deps/libgeofm_mae-65c14215a9a7eabc.rmeta: crates/mae/src/lib.rs crates/mae/src/fewshot.rs crates/mae/src/finetune.rs crates/mae/src/mask.rs crates/mae/src/model.rs crates/mae/src/pretrain.rs crates/mae/src/probe.rs crates/mae/src/segmentation.rs

crates/mae/src/lib.rs:
crates/mae/src/fewshot.rs:
crates/mae/src/finetune.rs:
crates/mae/src/mask.rs:
crates/mae/src/model.rs:
crates/mae/src/pretrain.rs:
crates/mae/src/probe.rs:
crates/mae/src/segmentation.rs:
