/root/repo/target/release/deps/geofm_fsdp-adc33c22910c8084.d: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

/root/repo/target/release/deps/geofm_fsdp-adc33c22910c8084: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

crates/fsdp/src/lib.rs:
crates/fsdp/src/flat.rs:
crates/fsdp/src/rank.rs:
crates/fsdp/src/strategy.rs:
crates/fsdp/src/trainer.rs:
