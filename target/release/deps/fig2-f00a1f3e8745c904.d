/root/repo/target/release/deps/fig2-f00a1f3e8745c904.d: crates/repro/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-f00a1f3e8745c904: crates/repro/src/bin/fig2.rs

crates/repro/src/bin/fig2.rs:
