/root/repo/target/release/deps/checkpoint_corruption-d81d30a8713876df.d: tests/checkpoint_corruption.rs

/root/repo/target/release/deps/checkpoint_corruption-d81d30a8713876df: tests/checkpoint_corruption.rs

tests/checkpoint_corruption.rs:
