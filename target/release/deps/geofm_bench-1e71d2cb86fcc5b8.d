/root/repo/target/release/deps/geofm_bench-1e71d2cb86fcc5b8.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgeofm_bench-1e71d2cb86fcc5b8.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgeofm_bench-1e71d2cb86fcc5b8.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
