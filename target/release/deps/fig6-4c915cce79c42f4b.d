/root/repo/target/release/deps/fig6-4c915cce79c42f4b.d: crates/repro/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-4c915cce79c42f4b: crates/repro/src/bin/fig6.rs

crates/repro/src/bin/fig6.rs:
