/root/repo/target/release/deps/fig6-5b9d2ccf5ac637f4.d: crates/repro/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-5b9d2ccf5ac637f4: crates/repro/src/bin/fig6.rs

crates/repro/src/bin/fig6.rs:
