/root/repo/target/release/deps/table1-40946e615b8e21af.d: crates/repro/src/bin/table1.rs

/root/repo/target/release/deps/table1-40946e615b8e21af: crates/repro/src/bin/table1.rs

crates/repro/src/bin/table1.rs:
