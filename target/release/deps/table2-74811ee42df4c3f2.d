/root/repo/target/release/deps/table2-74811ee42df4c3f2.d: crates/repro/src/bin/table2.rs

/root/repo/target/release/deps/table2-74811ee42df4c3f2: crates/repro/src/bin/table2.rs

crates/repro/src/bin/table2.rs:
