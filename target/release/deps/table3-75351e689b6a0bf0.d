/root/repo/target/release/deps/table3-75351e689b6a0bf0.d: crates/repro/src/bin/table3.rs

/root/repo/target/release/deps/table3-75351e689b6a0bf0: crates/repro/src/bin/table3.rs

crates/repro/src/bin/table3.rs:
