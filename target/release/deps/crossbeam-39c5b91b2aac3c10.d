/root/repo/target/release/deps/crossbeam-39c5b91b2aac3c10.d: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-39c5b91b2aac3c10.rlib: shims/crossbeam/src/lib.rs

/root/repo/target/release/deps/libcrossbeam-39c5b91b2aac3c10.rmeta: shims/crossbeam/src/lib.rs

shims/crossbeam/src/lib.rs:
