/root/repo/target/release/deps/table2-48bdcf8b2e039d13.d: crates/repro/src/bin/table2.rs

/root/repo/target/release/deps/table2-48bdcf8b2e039d13: crates/repro/src/bin/table2.rs

crates/repro/src/bin/table2.rs:
