/root/repo/target/release/deps/parking_lot-e08f23eda7a792df.d: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e08f23eda7a792df.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-e08f23eda7a792df.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
