/root/repo/target/release/deps/rayon-82d5074b0eda0be6.d: shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-82d5074b0eda0be6.rlib: shims/rayon/src/lib.rs

/root/repo/target/release/deps/librayon-82d5074b0eda0be6.rmeta: shims/rayon/src/lib.rs

shims/rayon/src/lib.rs:
