/root/repo/target/release/deps/geofm_core-e37000153afdb78f.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/release/deps/libgeofm_core-e37000153afdb78f.rlib: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/release/deps/libgeofm_core-e37000153afdb78f.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/pipeline.rs:
crates/core/src/recipe.rs:
