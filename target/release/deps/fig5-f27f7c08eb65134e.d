/root/repo/target/release/deps/fig5-f27f7c08eb65134e.d: crates/repro/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-f27f7c08eb65134e: crates/repro/src/bin/fig5.rs

crates/repro/src/bin/fig5.rs:
