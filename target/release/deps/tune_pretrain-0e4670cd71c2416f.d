/root/repo/target/release/deps/tune_pretrain-0e4670cd71c2416f.d: crates/repro/src/bin/tune_pretrain.rs

/root/repo/target/release/deps/tune_pretrain-0e4670cd71c2416f: crates/repro/src/bin/tune_pretrain.rs

crates/repro/src/bin/tune_pretrain.rs:
