/root/repo/target/release/deps/table1-2f268e531dea4e59.d: crates/repro/src/bin/table1.rs

/root/repo/target/release/deps/table1-2f268e531dea4e59: crates/repro/src/bin/table1.rs

crates/repro/src/bin/table1.rs:
