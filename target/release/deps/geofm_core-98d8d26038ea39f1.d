/root/repo/target/release/deps/geofm_core-98d8d26038ea39f1.d: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/release/deps/libgeofm_core-98d8d26038ea39f1.rlib: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

/root/repo/target/release/deps/libgeofm_core-98d8d26038ea39f1.rmeta: crates/core/src/lib.rs crates/core/src/checkpoint.rs crates/core/src/pipeline.rs crates/core/src/recipe.rs

crates/core/src/lib.rs:
crates/core/src/checkpoint.rs:
crates/core/src/pipeline.rs:
crates/core/src/recipe.rs:
