/root/repo/target/release/deps/fig1-4136098266f67c46.d: crates/repro/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-4136098266f67c46: crates/repro/src/bin/fig1.rs

crates/repro/src/bin/fig1.rs:
