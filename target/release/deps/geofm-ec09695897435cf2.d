/root/repo/target/release/deps/geofm-ec09695897435cf2.d: src/lib.rs

/root/repo/target/release/deps/libgeofm-ec09695897435cf2.rlib: src/lib.rs

/root/repo/target/release/deps/libgeofm-ec09695897435cf2.rmeta: src/lib.rs

src/lib.rs:
