/root/repo/target/release/deps/fig4-46e8d4e2f8a8fa9a.d: crates/repro/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-46e8d4e2f8a8fa9a: crates/repro/src/bin/fig4.rs

crates/repro/src/bin/fig4.rs:
