/root/repo/target/release/deps/geofm_collectives-74144df038bb9500.d: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/group.rs crates/collectives/src/hierarchy.rs crates/collectives/src/ring.rs crates/collectives/src/traffic.rs

/root/repo/target/release/deps/libgeofm_collectives-74144df038bb9500.rlib: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/group.rs crates/collectives/src/hierarchy.rs crates/collectives/src/ring.rs crates/collectives/src/traffic.rs

/root/repo/target/release/deps/libgeofm_collectives-74144df038bb9500.rmeta: crates/collectives/src/lib.rs crates/collectives/src/barrier.rs crates/collectives/src/group.rs crates/collectives/src/hierarchy.rs crates/collectives/src/ring.rs crates/collectives/src/traffic.rs

crates/collectives/src/lib.rs:
crates/collectives/src/barrier.rs:
crates/collectives/src/group.rs:
crates/collectives/src/hierarchy.rs:
crates/collectives/src/ring.rs:
crates/collectives/src/traffic.rs:
