/root/repo/target/release/deps/geofm-1a5ebd8a7640c8c6.d: src/lib.rs

/root/repo/target/release/deps/libgeofm-1a5ebd8a7640c8c6.rlib: src/lib.rs

/root/repo/target/release/deps/libgeofm-1a5ebd8a7640c8c6.rmeta: src/lib.rs

src/lib.rs:
