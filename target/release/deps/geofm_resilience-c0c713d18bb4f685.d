/root/repo/target/release/deps/geofm_resilience-c0c713d18bb4f685.d: crates/resilience/src/lib.rs crates/resilience/src/ckpt.rs crates/resilience/src/fault.rs crates/resilience/src/mtbf.rs

/root/repo/target/release/deps/libgeofm_resilience-c0c713d18bb4f685.rlib: crates/resilience/src/lib.rs crates/resilience/src/ckpt.rs crates/resilience/src/fault.rs crates/resilience/src/mtbf.rs

/root/repo/target/release/deps/libgeofm_resilience-c0c713d18bb4f685.rmeta: crates/resilience/src/lib.rs crates/resilience/src/ckpt.rs crates/resilience/src/fault.rs crates/resilience/src/mtbf.rs

crates/resilience/src/lib.rs:
crates/resilience/src/ckpt.rs:
crates/resilience/src/fault.rs:
crates/resilience/src/mtbf.rs:
