/root/repo/target/release/deps/geofm_frontier-d65b10f9c0b26edf.d: crates/frontier/src/lib.rs crates/frontier/src/analytic.rs crates/frontier/src/engine.rs crates/frontier/src/io.rs crates/frontier/src/machine.rs crates/frontier/src/memory.rs crates/frontier/src/power.rs crates/frontier/src/schedule.rs crates/frontier/src/sim.rs crates/frontier/src/workload.rs

/root/repo/target/release/deps/libgeofm_frontier-d65b10f9c0b26edf.rlib: crates/frontier/src/lib.rs crates/frontier/src/analytic.rs crates/frontier/src/engine.rs crates/frontier/src/io.rs crates/frontier/src/machine.rs crates/frontier/src/memory.rs crates/frontier/src/power.rs crates/frontier/src/schedule.rs crates/frontier/src/sim.rs crates/frontier/src/workload.rs

/root/repo/target/release/deps/libgeofm_frontier-d65b10f9c0b26edf.rmeta: crates/frontier/src/lib.rs crates/frontier/src/analytic.rs crates/frontier/src/engine.rs crates/frontier/src/io.rs crates/frontier/src/machine.rs crates/frontier/src/memory.rs crates/frontier/src/power.rs crates/frontier/src/schedule.rs crates/frontier/src/sim.rs crates/frontier/src/workload.rs

crates/frontier/src/lib.rs:
crates/frontier/src/analytic.rs:
crates/frontier/src/engine.rs:
crates/frontier/src/io.rs:
crates/frontier/src/machine.rs:
crates/frontier/src/memory.rs:
crates/frontier/src/power.rs:
crates/frontier/src/schedule.rs:
crates/frontier/src/sim.rs:
crates/frontier/src/workload.rs:
