/root/repo/target/release/deps/geofm_repro-1d5302d4efb74ce4.d: crates/repro/src/lib.rs

/root/repo/target/release/deps/libgeofm_repro-1d5302d4efb74ce4.rlib: crates/repro/src/lib.rs

/root/repo/target/release/deps/libgeofm_repro-1d5302d4efb74ce4.rmeta: crates/repro/src/lib.rs

crates/repro/src/lib.rs:
