/root/repo/target/release/deps/tune_probe-5e97e098ec8e4258.d: crates/repro/src/bin/tune_probe.rs

/root/repo/target/release/deps/tune_probe-5e97e098ec8e4258: crates/repro/src/bin/tune_probe.rs

crates/repro/src/bin/tune_probe.rs:
