/root/repo/target/release/deps/geofm_tensor-665f685179851693.d: crates/tensor/src/lib.rs crates/tensor/src/matmul.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libgeofm_tensor-665f685179851693.rlib: crates/tensor/src/lib.rs crates/tensor/src/matmul.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/tensor.rs

/root/repo/target/release/deps/libgeofm_tensor-665f685179851693.rmeta: crates/tensor/src/lib.rs crates/tensor/src/matmul.rs crates/tensor/src/ops.rs crates/tensor/src/random.rs crates/tensor/src/tensor.rs

crates/tensor/src/lib.rs:
crates/tensor/src/matmul.rs:
crates/tensor/src/ops.rs:
crates/tensor/src/random.rs:
crates/tensor/src/tensor.rs:
