/root/repo/target/release/deps/tune_probe-9655ee3cf735cd19.d: crates/repro/src/bin/tune_probe.rs

/root/repo/target/release/deps/tune_probe-9655ee3cf735cd19: crates/repro/src/bin/tune_probe.rs

crates/repro/src/bin/tune_probe.rs:
