/root/repo/target/release/deps/proptest-551dc40e42035905.d: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-551dc40e42035905.rlib: shims/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-551dc40e42035905.rmeta: shims/proptest/src/lib.rs

shims/proptest/src/lib.rs:
