/root/repo/target/release/deps/fig5-fa71d2d8a621bf1b.d: crates/repro/src/bin/fig5.rs

/root/repo/target/release/deps/fig5-fa71d2d8a621bf1b: crates/repro/src/bin/fig5.rs

crates/repro/src/bin/fig5.rs:
