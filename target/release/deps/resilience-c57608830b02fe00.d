/root/repo/target/release/deps/resilience-c57608830b02fe00.d: tests/resilience.rs

/root/repo/target/release/deps/resilience-c57608830b02fe00: tests/resilience.rs

tests/resilience.rs:
