/root/repo/target/release/deps/fig2-804238e5494f4550.d: crates/repro/src/bin/fig2.rs

/root/repo/target/release/deps/fig2-804238e5494f4550: crates/repro/src/bin/fig2.rs

crates/repro/src/bin/fig2.rs:
