/root/repo/target/release/deps/calibrate-fda4fd3a20978896.d: crates/repro/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-fda4fd3a20978896: crates/repro/src/bin/calibrate.rs

crates/repro/src/bin/calibrate.rs:
