/root/repo/target/release/deps/table3-10a6cfc9101f953e.d: crates/repro/src/bin/table3.rs

/root/repo/target/release/deps/table3-10a6cfc9101f953e: crates/repro/src/bin/table3.rs

crates/repro/src/bin/table3.rs:
