/root/repo/target/release/deps/geofm_bench-459484e1b9cdc437.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgeofm_bench-459484e1b9cdc437.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libgeofm_bench-459484e1b9cdc437.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
