/root/repo/target/release/deps/proptests-3495bb80581b06ce.d: crates/fsdp/tests/proptests.rs

/root/repo/target/release/deps/proptests-3495bb80581b06ce: crates/fsdp/tests/proptests.rs

crates/fsdp/tests/proptests.rs:
