/root/repo/target/release/deps/calibrate-50ff28706e9cc58d.d: crates/repro/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-50ff28706e9cc58d: crates/repro/src/bin/calibrate.rs

crates/repro/src/bin/calibrate.rs:
