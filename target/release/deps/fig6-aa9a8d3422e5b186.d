/root/repo/target/release/deps/fig6-aa9a8d3422e5b186.d: crates/repro/src/bin/fig6.rs

/root/repo/target/release/deps/fig6-aa9a8d3422e5b186: crates/repro/src/bin/fig6.rs

crates/repro/src/bin/fig6.rs:
