/root/repo/target/release/deps/figR-93fa667143412bbc.d: crates/repro/src/bin/figR.rs

/root/repo/target/release/deps/figR-93fa667143412bbc: crates/repro/src/bin/figR.rs

crates/repro/src/bin/figR.rs:
