/root/repo/target/release/deps/fig3-6ad69dff2c8044fc.d: crates/repro/src/bin/fig3.rs

/root/repo/target/release/deps/fig3-6ad69dff2c8044fc: crates/repro/src/bin/fig3.rs

crates/repro/src/bin/fig3.rs:
