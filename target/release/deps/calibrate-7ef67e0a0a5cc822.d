/root/repo/target/release/deps/calibrate-7ef67e0a0a5cc822.d: crates/repro/src/bin/calibrate.rs

/root/repo/target/release/deps/calibrate-7ef67e0a0a5cc822: crates/repro/src/bin/calibrate.rs

crates/repro/src/bin/calibrate.rs:
