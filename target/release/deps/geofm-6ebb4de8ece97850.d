/root/repo/target/release/deps/geofm-6ebb4de8ece97850.d: src/lib.rs

/root/repo/target/release/deps/libgeofm-6ebb4de8ece97850.rlib: src/lib.rs

/root/repo/target/release/deps/libgeofm-6ebb4de8ece97850.rmeta: src/lib.rs

src/lib.rs:
