/root/repo/target/release/deps/fig4-07805ff4b08b967c.d: crates/repro/src/bin/fig4.rs

/root/repo/target/release/deps/fig4-07805ff4b08b967c: crates/repro/src/bin/fig4.rs

crates/repro/src/bin/fig4.rs:
