/root/repo/target/release/deps/geofm_vit-b5d280c10937ba40.d: crates/vit/src/lib.rs crates/vit/src/config.rs crates/vit/src/flops.rs crates/vit/src/model.rs

/root/repo/target/release/deps/libgeofm_vit-b5d280c10937ba40.rlib: crates/vit/src/lib.rs crates/vit/src/config.rs crates/vit/src/flops.rs crates/vit/src/model.rs

/root/repo/target/release/deps/libgeofm_vit-b5d280c10937ba40.rmeta: crates/vit/src/lib.rs crates/vit/src/config.rs crates/vit/src/flops.rs crates/vit/src/model.rs

crates/vit/src/lib.rs:
crates/vit/src/config.rs:
crates/vit/src/flops.rs:
crates/vit/src/model.rs:
