/root/repo/target/release/deps/geofm_fsdp-c58a16391aa16da3.d: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

/root/repo/target/release/deps/libgeofm_fsdp-c58a16391aa16da3.rlib: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

/root/repo/target/release/deps/libgeofm_fsdp-c58a16391aa16da3.rmeta: crates/fsdp/src/lib.rs crates/fsdp/src/flat.rs crates/fsdp/src/rank.rs crates/fsdp/src/strategy.rs crates/fsdp/src/trainer.rs

crates/fsdp/src/lib.rs:
crates/fsdp/src/flat.rs:
crates/fsdp/src/rank.rs:
crates/fsdp/src/strategy.rs:
crates/fsdp/src/trainer.rs:
