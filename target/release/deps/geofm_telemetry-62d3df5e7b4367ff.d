/root/repo/target/release/deps/geofm_telemetry-62d3df5e7b4367ff.d: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/timer.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/libgeofm_telemetry-62d3df5e7b4367ff.rlib: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/timer.rs crates/telemetry/src/trace.rs

/root/repo/target/release/deps/libgeofm_telemetry-62d3df5e7b4367ff.rmeta: crates/telemetry/src/lib.rs crates/telemetry/src/registry.rs crates/telemetry/src/timer.rs crates/telemetry/src/trace.rs

crates/telemetry/src/lib.rs:
crates/telemetry/src/registry.rs:
crates/telemetry/src/timer.rs:
crates/telemetry/src/trace.rs:
