/root/repo/target/release/deps/fig1-86756a2f2cc008e9.d: crates/repro/src/bin/fig1.rs

/root/repo/target/release/deps/fig1-86756a2f2cc008e9: crates/repro/src/bin/fig1.rs

crates/repro/src/bin/fig1.rs:
