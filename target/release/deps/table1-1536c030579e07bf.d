/root/repo/target/release/deps/table1-1536c030579e07bf.d: crates/repro/src/bin/table1.rs

/root/repo/target/release/deps/table1-1536c030579e07bf: crates/repro/src/bin/table1.rs

crates/repro/src/bin/table1.rs:
