/root/repo/target/release/librayon.rlib: /root/repo/shims/rayon/src/lib.rs
