/root/repo/target/release/examples/fsdp_equivalence-1aca739ec83fd869.d: examples/fsdp_equivalence.rs

/root/repo/target/release/examples/fsdp_equivalence-1aca739ec83fd869: examples/fsdp_equivalence.rs

examples/fsdp_equivalence.rs:
